// XQuery evaluation engine over the storage system (paper Section 5.2).
//
// Intermediate results are sequences of items; node items reference stored
// nodes by direct pointer. Path steps are evaluated axis-by-axis with an
// explicit distinct-document-order (DDO) operation after each step — unless
// the optimizing rewriter proved it redundant (Section 5.1.1). Structural
// path fragments marked by the rewriter are executed directly over the
// in-memory descriptive schema (Section 5.1.4). Element constructors avoid
// deep copies when marked virtual (Section 5.2.1).

#ifndef SEDNA_XQUERY_EXECUTOR_H_
#define SEDNA_XQUERY_EXECUTOR_H_

#include <functional>
#include <map>
#include <string>

#include "storage/storage_engine.h"
#include "xquery/ast.h"
#include "xquery/item.h"
#include "xquery/node_ops.h"

namespace sedna {

class ValueIndexManager;

/// Execution counters consumed by tests and the benchmark harness.
struct ExecStats {
  uint64_t ddo_ops = 0;          // DDO operations executed
  uint64_t ddo_items = 0;        // items passed through DDO sorting
  uint64_t axis_nodes = 0;       // nodes enumerated by axis evaluation
  uint64_t deep_copy_nodes = 0;  // nodes deep-copied by constructors
  uint64_t virtual_elements = 0; // constructors answered virtually
  uint64_t schema_scans = 0;     // structural paths served from the schema
};

/// Dynamic evaluation context.
struct ExecContext {
  StorageEngine* storage = nullptr;
  OpCtx op;
  const Prolog* prolog = nullptr;  // user-defined functions / variables

  /// Invoked whenever the query touches a named document (doc(), DDL); the
  /// session layer acquires the S2PL document lock here. `exclusive` is
  /// true when the enclosing statement is an update.
  std::function<Status(const std::string& name, bool exclusive)>
      on_doc_access;
  bool doc_access_exclusive = false;

  /// Value indexes (may be null when the host has none configured).
  ValueIndexManager* indexes = nullptr;

  std::map<std::string, Sequence> vars;

  // Focus (context item, position, size).
  const Item* context_item = nullptr;
  int64_t context_pos = 0;
  int64_t context_size = 0;

  // Feature toggles used by benchmarks to compare optimizations on/off.
  bool enable_virtual_constructors = true;
  bool enable_schema_paths = true;

  ExecStats* stats = nullptr;
  int udf_depth = 0;  // recursion guard

  void Count(uint64_t ExecStats::*field, uint64_t delta = 1) {
    if (stats != nullptr) (stats->*field) += delta;
  }
};

/// Evaluates an expression to a sequence.
StatusOr<Sequence> Eval(const Expr& expr, ExecContext& ctx);

/// Effective boolean value of a sequence.
StatusOr<bool> EffectiveBooleanValue(const OpCtx& ctx, const Sequence& seq);

/// Atomizes a sequence (nodes -> their untyped string values).
StatusOr<Sequence> Atomize(const OpCtx& ctx, const Sequence& seq);

/// Serializes a result sequence the way a query shell would print it.
/// Handles virtual elements without materializing them.
StatusOr<std::string> SerializeSequence(const OpCtx& ctx,
                                        const Sequence& seq);

/// Item -> serialized form (markup for nodes, lexical form for atomics).
StatusOr<std::string> SerializeItem(const OpCtx& ctx, const Item& item);

}  // namespace sedna

#endif  // SEDNA_XQUERY_EXECUTOR_H_
