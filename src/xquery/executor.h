// XQuery evaluation engine over the storage system (paper Section 5.2).
//
// Intermediate results are sequences of items; node items reference stored
// nodes by direct pointer. Since the pull-based pipeline refactor the
// primary evaluation entry point is EvalStream(): physical operations are
// open/next/close iterators (xquery/stream.h) that pull from their inputs
// one item at a time, so positional predicates, exists()/empty(), effective
// boolean value tests and quantified expressions stop the upstream pipeline
// after O(1) items. Eval() drains the stream for callers that need a
// materialized Sequence. Path steps are evaluated axis-by-axis with an
// explicit distinct-document-order (DDO) operation after each step — unless
// the optimizing rewriter proved it redundant (Section 5.1.1); an executed
// DDO is the pipeline's materialization barrier. Structural path fragments
// marked by the rewriter are executed directly over the in-memory
// descriptive schema (Section 5.1.4). Element constructors avoid deep
// copies when marked virtual (Section 5.2.1).

#ifndef SEDNA_XQUERY_EXECUTOR_H_
#define SEDNA_XQUERY_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>

#include "storage/storage_engine.h"
#include "xquery/ast.h"
#include "xquery/item.h"
#include "xquery/node_ops.h"
#include "xquery/stream.h"

namespace sedna {

class ValueIndexManager;
class QueryContext;  // common/query_context.h
struct ProfileNode;  // xquery/profile.h

/// Execution counters consumed by tests and the benchmark harness.
///
/// The fields are atomics: ExecContext::Count used to write through a raw
/// pointer with a plain +=, which races as soon as two threads share one
/// statement's stats block (e.g. a parallelized pipeline stage, or a
/// monitoring thread snapshotting a long query). Updates and reads are
/// relaxed — each counter is an independent tally, no ordering is implied —
/// and the struct stays copyable (results are returned by value) via
/// explicit copy operations that load/store each field.
struct ExecStats {
  std::atomic<uint64_t> ddo_ops{0};          // DDO operations executed
  std::atomic<uint64_t> ddo_items{0};        // items passed through DDO sort
  std::atomic<uint64_t> axis_nodes{0};       // nodes enumerated by axes
  std::atomic<uint64_t> deep_copy_nodes{0};  // nodes deep-copied
  std::atomic<uint64_t> virtual_elements{0}; // constructors answered virtually
  std::atomic<uint64_t> schema_scans{0};     // paths served from the schema
  std::atomic<uint64_t> index_scans{0};      // predicates served by an index
  // Pull-pipeline counters: these let tests assert *laziness*, not just
  // results (e.g. (//x)[1] on a 10k-match document pulls O(1) items).
  std::atomic<uint64_t> items_pulled{0};         // items delivered by batches
  std::atomic<uint64_t> early_exits{0};          // pipelines cut off early
  std::atomic<uint64_t> streams_materialized{0}; // drained at a barrier
  // Morsel-exchange counters (parallel path scans).
  std::atomic<uint64_t> morsels_dispatched{0};   // morsels run by workers
  std::atomic<uint64_t> exchange_workers{0};     // worker threads launched

  ExecStats() = default;
  ExecStats(const ExecStats& other) { *this = other; }

  /// Adds every counter of `other` into this block; exchange workers use
  /// it to fold their private stats into the statement's at join time.
  void MergeFrom(const ExecStats& other) {
    auto add = [&](std::atomic<uint64_t> ExecStats::*f) {
      (this->*f).fetch_add((other.*f).load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    };
    add(&ExecStats::ddo_ops);
    add(&ExecStats::ddo_items);
    add(&ExecStats::axis_nodes);
    add(&ExecStats::deep_copy_nodes);
    add(&ExecStats::virtual_elements);
    add(&ExecStats::schema_scans);
    add(&ExecStats::index_scans);
    add(&ExecStats::items_pulled);
    add(&ExecStats::early_exits);
    add(&ExecStats::streams_materialized);
    add(&ExecStats::morsels_dispatched);
    add(&ExecStats::exchange_workers);
  }

  ExecStats& operator=(const ExecStats& other) {
    if (this != &other) {
      ddo_ops.store(other.ddo_ops.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      ddo_items.store(other.ddo_items.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      axis_nodes.store(other.axis_nodes.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      deep_copy_nodes.store(
          other.deep_copy_nodes.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      virtual_elements.store(
          other.virtual_elements.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      schema_scans.store(other.schema_scans.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      index_scans.store(other.index_scans.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      items_pulled.store(other.items_pulled.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      early_exits.store(other.early_exits.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      streams_materialized.store(
          other.streams_materialized.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      morsels_dispatched.store(
          other.morsels_dispatched.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      exchange_workers.store(
          other.exchange_workers.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    return *this;
  }
};

/// Dynamic evaluation context.
struct ExecContext {
  StorageEngine* storage = nullptr;
  OpCtx op;
  const Prolog* prolog = nullptr;  // user-defined functions / variables

  /// Invoked whenever the query touches a named document (doc(), DDL); the
  /// session layer acquires the S2PL document lock here. `exclusive` is
  /// true when the enclosing statement is an update.
  std::function<Status(const std::string& name, bool exclusive)>
      on_doc_access;
  bool doc_access_exclusive = false;

  /// Value indexes (may be null when the host has none configured).
  ValueIndexManager* indexes = nullptr;

  std::map<std::string, Sequence> vars;

  // Focus (context item, position, size). context_size is negative inside a
  // streamed predicate, where the size is unknown by construction; the
  // rewriter forces materialization for predicates that consult last().
  const Item* context_item = nullptr;
  int64_t context_pos = 0;
  int64_t context_size = 0;

  // Feature toggles used by benchmarks to compare optimizations on/off.
  bool enable_virtual_constructors = true;
  bool enable_schema_paths = true;
  bool enable_streaming = true;  // pull-based pipeline vs. eager evaluation
  bool enable_index_scan = true;  // cost-based value-index plan selection

  /// Items per NextBatch() on full-drain paths (early-exit consumers
  /// always use 1). Session knob / SEDNA_BATCH_SIZE.
  size_t batch_size = kDefaultBatchSize;

  /// Worker threads a morsel exchange may use for eligible path scans;
  /// <= 1 keeps everything serial. Session knob / SEDNA_PARALLEL_WORKERS.
  uint32_t parallel_workers = 1;

  ExecStats* stats = nullptr;
  int udf_depth = 0;  // recursion guard

  /// Per-statement resource governance (deadline, cancellation, memory
  /// budget). Null for ungoverned callers (unit tests, internal drains);
  /// every governed pull and materialization barrier consults it.
  QueryContext* query = nullptr;

  /// Non-null while a profiled (EXPLAIN) statement runs: the profile-tree
  /// node operators built *now* should attach under. EvalStream() wraps
  /// every operator it creates in a ProfilingStream and points this at the
  /// operator's node while the operator builds or pulls its inputs.
  ProfileNode* profile = nullptr;

  void Count(std::atomic<uint64_t> ExecStats::*field, uint64_t delta = 1) {
    if (stats != nullptr) {
      (stats->*field).fetch_add(delta, std::memory_order_relaxed);
    }
  }
};

/// Evaluates an expression to a materialized sequence. With streaming
/// enabled this drains EvalStream(); binding sites (let, UDF parameters,
/// update sources) use it deliberately — a lazy stream must never outlive
/// the variable scope it reads.
StatusOr<Sequence> Eval(const Expr& expr, ExecContext& ctx);

/// Evaluates an expression to a pull-based stream — the primary evaluation
/// path. With ctx.enable_streaming false the expression is evaluated
/// eagerly and the result wrapped, which benchmarks use as the baseline.
StatusOr<StreamPtr> EvalStream(const Expr& expr, ExecContext& ctx);

/// Effective boolean value of a sequence.
StatusOr<bool> EffectiveBooleanValue(const OpCtx& ctx, const Sequence& seq);

/// Short-circuiting effective boolean value over a stream: pulls at most
/// two items (one when it is a node — the common document case).
StatusOr<bool> EffectiveBooleanValueStream(ExecContext& ctx, ItemStream* in);

/// Atomizes a sequence (nodes -> their untyped string values).
StatusOr<Sequence> Atomize(const OpCtx& ctx, const Sequence& seq);

/// Serializes items one at a time with the same whitespace rules as
/// SerializeSequence (adjacent atomic values are space-separated). The
/// session layer appends each chunk to its output as the result stream is
/// pulled, so the full result text is never required in memory at once.
class IncrementalSerializer {
 public:
  explicit IncrementalSerializer(const OpCtx& ctx) : ctx_(ctx) {}

  /// Appends the serialized form of `item` to *out.
  Status Append(const Item& item, std::string* out);

 private:
  OpCtx ctx_;
  bool prev_atomic_ = false;
};

/// Serializes a result sequence the way a query shell would print it.
/// Handles virtual elements without materializing them.
StatusOr<std::string> SerializeSequence(const OpCtx& ctx,
                                        const Sequence& seq);

/// Item -> serialized form (markup for nodes, lexical form for atomics).
StatusOr<std::string> SerializeItem(const OpCtx& ctx, const Item& item);

}  // namespace sedna

#endif  // SEDNA_XQUERY_EXECUTOR_H_
