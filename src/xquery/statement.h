// Statement execution: ties together parser -> static analyzer ->
// optimizing rewriter -> executor (paper Section 5), and implements the
// XUpdate-style statements as two-part plans: part one selects the target
// nodes (direct pointers), part two mutates them through node handles
// (Section 5.2: "the updated nodes are referred to by node handles").

#ifndef SEDNA_XQUERY_STATEMENT_H_
#define SEDNA_XQUERY_STATEMENT_H_

#include <functional>
#include <string>
#include <string_view>

#include <memory>

#include "storage/storage_engine.h"
#include "xquery/executor.h"
#include "xquery/profile.h"
#include "xquery/rewriter.h"
#include "xquery/value_index.h"

namespace sedna {

struct StatementResult {
  StatementKind kind = StatementKind::kQuery;
  Sequence items;          // query results
  std::string serialized;  // serialized query results
  uint64_t affected = 0;   // nodes inserted/deleted/replaced, docs created
  ExecStats stats;
  // Set when the statement ran in profile mode (EXPLAIN prefix or
  // set_profile_enabled): the per-operator plan tree and its rendering.
  // shared_ptr keeps the result copyable.
  std::shared_ptr<ProfileNode> profile;
  std::string profile_text;
  bool is_update() const { return kind != StatementKind::kQuery; }
};

class StatementExecutor {
 public:
  /// The SEDNA_PARALLEL_WORKERS and SEDNA_BATCH_SIZE environment variables
  /// seed the corresponding knobs, so whole test/bench suites can run a
  /// configuration matrix without touching call sites.
  explicit StatementExecutor(StorageEngine* storage);

  /// Called with the statement text just before an update statement's
  /// mutations are applied — the transaction layer logs it to the WAL.
  void set_update_listener(std::function<Status(const std::string&)> fn) {
    update_listener_ = std::move(fn);
  }

  /// Called for every named document the statement touches; the session
  /// layer acquires the document lock here.
  void set_doc_access_hook(
      std::function<Status(const std::string&, bool exclusive)> fn) {
    doc_access_hook_ = std::move(fn);
  }

  /// Wires the value-index manager (index DDL and index-lookup()).
  void set_index_manager(ValueIndexManager* indexes) { indexes_ = indexes; }

  /// Incremental result delivery: when set, each query result item is
  /// serialized and handed to the sink as the pull pipeline produces it,
  /// and StatementResult.items/serialized stay empty — the full result is
  /// never held in memory. A non-OK status from the sink aborts the query.
  void set_result_sink(std::function<Status(std::string_view)> fn) {
    result_sink_ = std::move(fn);
  }

  /// Toggles the pull-based pipeline (on by default); benchmarks switch it
  /// off to measure the eager baseline.
  void set_streaming_enabled(bool on) { streaming_enabled_ = on; }

  /// Profiles every statement (per-operator pulls/rows/time recorded into
  /// StatementResult::profile). A statement can also opt in individually
  /// with a leading `explain ` keyword, which additionally returns the
  /// rendered plan tree as the statement's serialized result.
  void set_profile_enabled(bool on) { profile_enabled_ = on; }

  /// Per-statement resource governance (deadline / cancellation / memory
  /// budget). The session layer points this at the current statement's
  /// QueryContext before executing and clears it afterwards; null runs the
  /// statement ungoverned. Not owned.
  void set_query_context(QueryContext* query) { query_ = query; }

  /// Worker threads a morsel exchange may use for eligible path scans
  /// (<= 1 = serial, the default unless SEDNA_PARALLEL_WORKERS is set).
  void set_parallel_workers(uint32_t n) { parallel_workers_ = n; }
  uint32_t parallel_workers() const { return parallel_workers_; }

  /// Items per pipeline batch on full-drain paths (0 = the built-in
  /// default; early-exit consumers always use 1 regardless).
  void set_batch_size(size_t n) {
    batch_size_ = n == 0 ? kDefaultBatchSize : n;
  }
  size_t batch_size() const { return batch_size_; }

  /// Parses, analyzes, rewrites and executes one statement. A leading
  /// `explain ` (case-insensitive) runs the remaining statement in profile
  /// mode and returns the annotated plan tree.
  StatusOr<StatementResult> Execute(const std::string& text, const OpCtx& op,
                                    const RewriteOptions& options = {});

  /// Executes an already-parsed statement (used by recovery replay and by
  /// benchmarks that pre-parse). `profile` forces profile mode for this
  /// statement.
  StatusOr<StatementResult> ExecuteParsed(Statement* stmt, const OpCtx& op,
                                          const std::string& original_text,
                                          bool profile = false);

 private:
  StatusOr<StatementResult> RunParsed(Statement* stmt, ExecContext& ctx,
                                      const std::string& text);
  StatusOr<StatementResult> RunQuery(const Statement& stmt, ExecContext& ctx);
  StatusOr<StatementResult> RunInsert(const Statement& stmt, ExecContext& ctx,
                                      const std::string& text);
  StatusOr<StatementResult> RunDelete(const Statement& stmt, ExecContext& ctx,
                                      const std::string& text);
  StatusOr<StatementResult> RunReplace(const Statement& stmt,
                                       ExecContext& ctx,
                                       const std::string& text);
  Status NotifyUpdate(const std::string& text);

  StorageEngine* storage_;
  std::function<Status(const std::string&)> update_listener_;
  std::function<Status(const std::string&, bool)> doc_access_hook_;
  std::function<Status(std::string_view)> result_sink_;
  ValueIndexManager* indexes_ = nullptr;
  bool streaming_enabled_ = true;
  bool profile_enabled_ = false;
  QueryContext* query_ = nullptr;
  uint32_t parallel_workers_ = 1;
  size_t batch_size_ = kDefaultBatchSize;
};

/// Recursively inserts a transient XML tree as a node under
/// `parent_handle`, between `left` and `right` (handles, may be null).
/// Returns the handle of the inserted root and counts inserted nodes.
StatusOr<Xptr> InsertXmlTree(DocumentStore* doc, const OpCtx& op,
                             Xptr parent_handle, Xptr left, Xptr right,
                             const XmlNode& node, uint64_t* inserted);

}  // namespace sedna

#endif  // SEDNA_XQUERY_STATEMENT_H_
