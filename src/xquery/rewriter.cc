#include "xquery/rewriter.h"
#include <functional>

#include <map>
#include <set>
#include <string>

#include "common/logging.h"
#include "xquery/analyzer.h"

namespace sedna {

namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Collects free variable names of an expression.
void FreeVars(const Expr& expr, std::set<std::string> bound,
              std::set<std::string>* out) {
  switch (expr.kind) {
    case ExprKind::kVarRef:
      if (bound.count(expr.str_val) == 0) out->insert(expr.str_val);
      return;
    case ExprKind::kFlwor: {
      for (const FlworClause& c : expr.clauses) {
        FreeVars(*c.expr, bound, out);
        bound.insert(c.var);
        if (!c.pos_var.empty()) bound.insert(c.pos_var);
      }
      if (expr.where) FreeVars(*expr.where, bound, out);
      for (const OrderSpec& o : expr.order_specs) {
        FreeVars(*o.expr, bound, out);
      }
      FreeVars(*expr.children[0], bound, out);
      return;
    }
    case ExprKind::kQuantified: {
      FreeVars(*expr.children[0], bound, out);
      bound.insert(expr.var);
      FreeVars(*expr.children[1], bound, out);
      return;
    }
    default:
      break;
  }
  for (const auto& c : expr.children) FreeVars(*c, bound, out);
  for (const Step& s : expr.steps) {
    for (const auto& p : s.predicates) FreeVars(*p, bound, out);
  }
  for (const auto& a : expr.ctor_attrs) FreeVars(*a, bound, out);
  if (expr.name_expr) FreeVars(*expr.name_expr, bound, out);
  if (expr.where) FreeVars(*expr.where, bound, out);
  for (const OrderSpec& o : expr.order_specs) FreeVars(*o.expr, bound, out);
}

/// True if the expression anywhere calls position() or last().
bool UsesPositionOrLast(const Expr& expr) {
  if (expr.kind == ExprKind::kFunctionCall &&
      (expr.str_val == "position" || expr.str_val == "last")) {
    return true;
  }
  for (const auto& c : expr.children) {
    if (UsesPositionOrLast(*c)) return true;
  }
  for (const Step& s : expr.steps) {
    for (const auto& p : s.predicates) {
      if (UsesPositionOrLast(*p)) return true;
    }
  }
  for (const auto& a : expr.ctor_attrs) {
    if (UsesPositionOrLast(*a)) return true;
  }
  if (expr.name_expr && UsesPositionOrLast(*expr.name_expr)) return true;
  if (expr.where && UsesPositionOrLast(*expr.where)) return true;
  for (const OrderSpec& o : expr.order_specs) {
    if (UsesPositionOrLast(*o.expr)) return true;
  }
  return false;
}

/// A predicate is position-independent when it cannot evaluate to a number
/// (numeric predicates select by position) and never consults the context
/// position or size. This is the condition of Section 5.1.2 for combining
/// the abbreviated descendant-or-self step with the next step.
bool IsPositionFreePredicate(const Expr& pred) {
  if (UsesPositionOrLast(pred)) return false;
  switch (pred.kind) {
    case ExprKind::kComparison:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kQuantified:
    case ExprKind::kPath:
    case ExprKind::kLiteralString:
      return true;
    case ExprKind::kFunctionCall:
      // Boolean-valued builtins.
      return pred.str_val == "not" || pred.str_val == "exists" ||
             pred.str_val == "empty" || pred.str_val == "boolean" ||
             pred.str_val == "contains" || pred.str_val == "starts-with" ||
             pred.str_val == "ends-with" || pred.str_val == "true" ||
             pred.str_val == "false" || pred.str_val == "deep-equal";
    default:
      return false;  // could be numeric: keep the step split
  }
}

/// True when `e` is a context-relative structural path a value index key
/// can mirror: the bare context item, or a path rooted at the context item
/// whose steps are all predicate-free child/attribute name steps (the
/// fixed-depth shapes CREATE INDEX accepts relative to the indexed nodes).
bool IsIndexableKeyPath(const Expr& e) {
  if (e.kind == ExprKind::kContextItem) return true;
  if (e.kind != ExprKind::kPath || e.children.size() != 1 ||
      e.children[0]->kind != ExprKind::kContextItem || e.steps.empty()) {
    return false;
  }
  for (const Step& s : e.steps) {
    if ((s.axis != Axis::kChild && s.axis != Axis::kAttribute) ||
        !s.predicates.empty()) {
      return false;
    }
  }
  return true;
}

/// The predicate shape a persistent value index can serve byte-identically:
/// a general "=" comparison between a string literal and an indexable key
/// path. String-vs-string general comparison is a byte compare with
/// existential semantics, exactly what a composite (value, node) B+tree
/// probe delivers; numeric or dynamic comparands would need coercion the
/// index key order does not model, so they stay on the scan plan.
bool IsIndexServablePredicate(const Expr& pred) {
  if (pred.kind != ExprKind::kComparison || pred.str_val != "=" ||
      pred.children.size() != 2) {
    return false;
  }
  const Expr& lhs = *pred.children[0];
  const Expr& rhs = *pred.children[1];
  if (lhs.kind == ExprKind::kLiteralString) return IsIndexableKeyPath(rhs);
  if (rhs.kind == ExprKind::kLiteralString) return IsIndexableKeyPath(lhs);
  return false;
}

/// A predicate a morsel-exchange worker may evaluate: no expression that
/// reaches process-shared mutable state. doc()/collection() open documents
/// (and take locks) through session hooks that are absent in workers;
/// index-lookup() goes through the index manager; a call that is still a
/// call after inlining may be a recursive UDF with any of those inside;
/// constructors build transient trees in stores that are not thread-safe.
/// Everything else — comparisons, arithmetic, boolean builtins, relative
/// paths, variable references — only reads pinned pages and copied context.
bool ExchangeSafeExpr(const Expr& expr, const Prolog* prolog) {
  switch (expr.kind) {
    case ExprKind::kElementCtor:
    case ExprKind::kAttributeCtor:
    case ExprKind::kTextCtor:
      return false;
    case ExprKind::kFunctionCall: {
      if (expr.str_val == "doc" || expr.str_val == "collection" ||
          expr.str_val == "index-lookup") {
        return false;
      }
      if (prolog != nullptr) {
        for (const FunctionDecl& f : prolog->functions) {
          if (f.name == expr.str_val) return false;
        }
      }
      break;
    }
    default:
      break;
  }
  for (const auto& c : expr.children) {
    if (!ExchangeSafeExpr(*c, prolog)) return false;
  }
  for (const Step& s : expr.steps) {
    for (const auto& p : s.predicates) {
      if (!ExchangeSafeExpr(*p, prolog)) return false;
    }
  }
  for (const auto& a : expr.ctor_attrs) {
    if (!ExchangeSafeExpr(*a, prolog)) return false;
  }
  if (expr.name_expr && !ExchangeSafeExpr(*expr.name_expr, prolog)) {
    return false;
  }
  if (expr.where && !ExchangeSafeExpr(*expr.where, prolog)) return false;
  for (const OrderSpec& o : expr.order_specs) {
    if (!ExchangeSafeExpr(*o.expr, prolog)) return false;
  }
  for (const FlworClause& c : expr.clauses) {
    if (!ExchangeSafeExpr(*c.expr, prolog)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Pass: user-defined function inlining
// ---------------------------------------------------------------------------

/// Functions that (transitively) call themselves are not inlinable.
std::set<std::string> RecursiveFunctions(const Prolog& prolog) {
  std::map<std::string, std::set<std::string>> calls;
  std::function<void(const Expr&, std::set<std::string>*)> collect =
      [&](const Expr& e, std::set<std::string>* out) {
        if (e.kind == ExprKind::kFunctionCall) out->insert(e.str_val);
        for (const auto& c : e.children) collect(*c, out);
        for (const Step& s : e.steps) {
          for (const auto& p : s.predicates) collect(*p, out);
        }
        for (const auto& a : e.ctor_attrs) collect(*a, out);
        if (e.name_expr) collect(*e.name_expr, out);
        if (e.where) collect(*e.where, out);
        for (const OrderSpec& o : e.order_specs) collect(*o.expr, out);
        for (const FlworClause& c : e.clauses) collect(*c.expr, out);
      };
  for (const FunctionDecl& f : prolog.functions) {
    collect(*f.body, &calls[f.name]);
  }
  // Transitive closure.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [name, callees] : calls) {
      std::set<std::string> extra;
      for (const std::string& callee : callees) {
        auto it = calls.find(callee);
        if (it == calls.end()) continue;
        for (const std::string& c2 : it->second) {
          if (callees.count(c2) == 0) extra.insert(c2);
        }
      }
      if (!extra.empty()) {
        callees.insert(extra.begin(), extra.end());
        changed = true;
      }
    }
  }
  std::set<std::string> recursive;
  for (const auto& [name, callees] : calls) {
    if (callees.count(name) > 0) recursive.insert(name);
  }
  return recursive;
}

class Rewriter {
 public:
  Rewriter(const Prolog* prolog, const RewriteOptions& options)
      : prolog_(prolog), options_(options) {
    if (prolog_ != nullptr) recursive_ = RecursiveFunctions(*prolog_);
  }

  Status Run(Expr* expr, bool output_position) {
    if (options_.inline_functions && prolog_ != nullptr) {
      for (int round = 0; round < 8; ++round) {
        bool changed = false;
        InlineFunctions(expr, &changed);
        if (!changed) break;
      }
    }
    std::map<std::string, Props> scope;
    RewritePass(expr, &scope, output_position);
    return Status::OK();
  }

 private:
  /// Static sequence properties of Section 5.1.1: already in distinct
  /// document order, at most one item, all nodes on one tree level.
  struct Props {
    bool ddo = false;
    bool max1 = false;
    bool same_level = false;
  };

  // --- inlining -------------------------------------------------------------

  void InlineFunctions(Expr* expr, bool* changed) {
    ForEachChild(expr, [&](Expr* c) { InlineFunctions(c, changed); });
    if (expr->kind != ExprKind::kFunctionCall) return;
    if (recursive_.count(expr->str_val) > 0) return;
    const FunctionDecl* decl = nullptr;
    for (const FunctionDecl& f : prolog_->functions) {
      if (f.name == expr->str_val &&
          f.params.size() == expr->children.size()) {
        decl = &f;
        break;
      }
    }
    if (decl == nullptr) return;
    // f($a1..$an) => (flwor (let $p1 := a1) ... (return body))
    auto flwor = MakeExpr(ExprKind::kFlwor);
    for (size_t i = 0; i < decl->params.size(); ++i) {
      FlworClause clause;
      clause.kind = FlworClause::Kind::kLet;
      clause.var = decl->params[i];
      clause.expr = std::move(expr->children[i]);
      flwor->clauses.push_back(std::move(clause));
    }
    flwor->children.push_back(decl->body->Clone());
    *expr = std::move(*flwor);
    *changed = true;
  }

  // --- main pass -------------------------------------------------------------

  Props RewritePass(Expr* expr, std::map<std::string, Props>* scope,
                    bool output_position) {
    switch (expr->kind) {
      case ExprKind::kLiteralInt:
      case ExprKind::kLiteralDouble:
      case ExprKind::kLiteralString:
        return Props{true, true, true};
      case ExprKind::kVarRef: {
        auto it = scope->find(expr->str_val);
        if (it != scope->end()) return it->second;
        return Props{};
      }
      case ExprKind::kContextItem:
        // The context item is a single item by definition.
        return Props{true, true, true};
      case ExprKind::kContextRoot:
        return Props{true, true, true};
      case ExprKind::kFunctionCall: {
        for (auto& c : expr->children) {
          RewritePass(c.get(), scope, false);
        }
        if (expr->str_val == "doc") {
          return Props{true, true, true};
        }
        if (expr->str_val == "op:union") {
          return Props{true, false, false};  // union output is DDO
        }
        return Props{};
      }
      case ExprKind::kPath:
        return RewritePath(expr, scope, output_position);
      case ExprKind::kFlwor:
        return RewriteFlwor(expr, scope, output_position);
      case ExprKind::kQuantified: {
        RewritePass(expr->children[0].get(), scope, false);
        std::map<std::string, Props> inner = *scope;
        inner[expr->var] = Props{true, true, true};
        RewritePass(expr->children[1].get(), &inner, false);
        return Props{true, true, true};  // boolean single
      }
      case ExprKind::kIf: {
        RewritePass(expr->children[0].get(), scope, false);
        Props a = RewritePass(expr->children[1].get(), scope, output_position);
        Props b = RewritePass(expr->children[2].get(), scope, output_position);
        return Props{a.ddo && b.ddo, a.max1 && b.max1,
                     a.same_level && b.same_level};
      }
      case ExprKind::kElementCtor: {
        if (options_.virtual_constructors && output_position) {
          // Section 5.2.1: result is only serialized, never traversed.
          expr->virtual_ok = true;
        }
        for (auto& a : expr->ctor_attrs) RewritePass(a.get(), scope, false);
        if (expr->name_expr) RewritePass(expr->name_expr.get(), scope, false);
        for (auto& c : expr->children) {
          // Content of a virtual constructor is itself only serialized.
          RewritePass(c.get(), scope, expr->virtual_ok);
        }
        return Props{true, true, true};
      }
      case ExprKind::kComparison:
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        for (auto& c : expr->children) RewritePass(c.get(), scope, false);
        return Props{true, true, true};  // single boolean
      }
      case ExprKind::kArith:
      case ExprKind::kUnaryMinus: {
        for (auto& c : expr->children) RewritePass(c.get(), scope, false);
        return Props{true, true, true};
      }
      case ExprKind::kSequence: {
        Props all{true, false, true};
        for (auto& c : expr->children) {
          Props p = RewritePass(c.get(), scope, output_position);
          all.ddo = false;  // concatenation rarely stays ordered
          all.same_level = all.same_level && p.same_level;
        }
        return all;
      }
      default: {
        ForEachChild(expr, [&](Expr* c) { RewritePass(c, scope, false); });
        return Props{};
      }
    }
  }

  Props RewriteFlwor(Expr* flwor, std::map<std::string, Props>* scope,
                     bool output_position) {
    std::map<std::string, Props> inner = *scope;
    std::set<std::string> loop_vars;  // for/let vars bound so far
    bool any_outer_for = false;
    for (FlworClause& clause : flwor->clauses) {
      Props p = RewritePass(clause.expr.get(), &inner, false);
      if (clause.kind == FlworClause::Kind::kFor) {
        // Section 5.1.3: an inner for-clause whose binding sequence does not
        // depend on any previously bound clause variable is evaluated once.
        if (options_.lazy_for_clauses && any_outer_for) {
          std::set<std::string> free;
          FreeVars(*clause.expr, {}, &free);
          bool independent = true;
          for (const std::string& v : loop_vars) {
            if (free.count(v) > 0) independent = false;
          }
          clause.lazy = independent;
        }
        any_outer_for = true;
        inner[clause.var] = Props{true, true, true};
        if (!clause.pos_var.empty()) {
          inner[clause.pos_var] = Props{true, true, true};
        }
      } else {
        inner[clause.var] = p;
      }
      loop_vars.insert(clause.var);
      if (!clause.pos_var.empty()) loop_vars.insert(clause.pos_var);
    }
    if (flwor->where) RewritePass(flwor->where.get(), &inner, false);
    for (OrderSpec& o : flwor->order_specs) {
      RewritePass(o.expr.get(), &inner, false);
    }
    RewritePass(flwor->children[0].get(), &inner, output_position);
    return Props{};
  }

  Props RewritePath(Expr* path, std::map<std::string, Props>* scope,
                    bool output_position) {
    Props props = RewritePass(path->children[0].get(), scope, false);

    if (path->str_val == "filter") {
      for (auto& p : path->steps[0].predicates) {
        RewritePass(p.get(), scope, false);
        AnnotateStreaming(p.get());
      }
      return Props{props.ddo, false, props.same_level};
    }

    // --- Section 5.1.2: combine descendant-or-self::node()/child::X ------
    if (options_.combine_descendant) {
      for (size_t i = 0; i + 1 < path->steps.size();) {
        Step& dos = path->steps[i];
        Step& next = path->steps[i + 1];
        bool combinable =
            dos.axis == Axis::kDescendantOrSelf &&
            dos.test.kind == NodeTest::Kind::kAnyNode &&
            dos.predicates.empty() && next.axis == Axis::kChild;
        if (combinable) {
          for (const auto& pred : next.predicates) {
            if (!IsPositionFreePredicate(*pred)) {
              combinable = false;
              break;
            }
          }
        }
        if (combinable) {
          next.axis = Axis::kDescendant;
          path->steps.erase(path->steps.begin() + static_cast<long>(i));
          continue;  // re-check at the same index
        }
        ++i;
      }
    }

    // --- Section 5.1.4: structural fragment over the schema ---------------
    bool doc_input =
        path->children[0]->kind == ExprKind::kFunctionCall &&
        path->children[0]->str_val == "doc" &&
        path->children[0]->children.size() == 1 &&
        path->children[0]->children[0]->kind == ExprKind::kLiteralString;
    if (options_.schema_paths && doc_input) {
      for (Step& step : path->steps) {
        bool structural_axis = step.axis == Axis::kChild ||
                               step.axis == Axis::kDescendant ||
                               step.axis == Axis::kAttribute;
        if (!structural_axis) break;
        if (step.predicates.empty()) {
          step.schema_resolved = true;
          step.needs_ddo = false;  // schema enumeration is already DDO
          continue;
        }
        // One trailing predicated step joins the fragment when every
        // predicate is position-free: the executor applies them as a flat
        // filter over the scan, which equals the per-parent application of
        // the step-by-step path exactly because such predicates cannot
        // consult position()/last() and cannot be numeric. Filtering also
        // preserves the scan's document order, so needs_ddo stays false.
        bool extend = true;
        for (const auto& pred : step.predicates) {
          if (!IsPositionFreePredicate(*pred)) {
            extend = false;
            break;
          }
        }
        if (extend) {
          step.schema_resolved = true;
          step.needs_ddo = false;
          // A single equality predicate against a string literal may be
          // answered by a persistent value index; mark it so the executor
          // can make the cost-based scan-vs-probe decision at run time.
          if (options_.use_value_indexes && step.predicates.size() == 1 &&
              IsIndexServablePredicate(*step.predicates[0])) {
            step.index_candidate = true;
          }
        }
        break;  // the fragment ends at the first predicated step either way
      }
    }

    // --- Section 5.1.1: remove unnecessary DDO operations ------------------
    for (Step& step : path->steps) {
      // Predicates are rewritten with a single-item context in scope.
      for (auto& pred : step.predicates) {
        RewritePass(pred.get(), scope, false);
        AnnotateStreaming(pred.get());
      }
      // Morsel-exchange eligibility: a worker may run this step when its
      // results cannot escape the origin's subtree (downward axis) and its
      // predicates touch no shared state. The executor engages an exchange
      // only when every step after the schema fragment carries the mark.
      step.exchange_safe =
          (step.axis == Axis::kChild || step.axis == Axis::kDescendant ||
           step.axis == Axis::kDescendantOrSelf ||
           step.axis == Axis::kAttribute || step.axis == Axis::kSelf);
      for (const auto& pred : step.predicates) {
        if (!ExchangeSafeExpr(*pred, prolog_)) {
          step.exchange_safe = false;
          break;
        }
      }
      if (step.schema_resolved) {
        props = Props{true, false,
                      props.same_level && step.axis != Axis::kDescendant};
        continue;
      }
      Props out;
      switch (step.axis) {
        case Axis::kSelf:
          out = props;
          break;
        case Axis::kChild:
        case Axis::kAttribute:
          // Children of distinct same-level nodes in document order are in
          // document order; distinct parents give disjoint child sets.
          out.ddo = props.ddo && props.same_level;
          out.same_level = props.same_level;
          out.max1 = false;
          break;
        case Axis::kDescendant:
        case Axis::kDescendantOrSelf:
          // Subtrees of distinct same-level nodes are disjoint and ordered,
          // but the results always span multiple levels.
          out.ddo = props.ddo && props.same_level;
          out.same_level = false;
          out.max1 = false;
          break;
        case Axis::kParent:
          out.ddo = props.max1;
          out.max1 = props.max1;
          out.same_level = props.same_level;
          break;
        case Axis::kAncestor:
        case Axis::kAncestorOrSelf:
          out.ddo = props.max1;
          out.max1 = false;
          out.same_level = false;
          break;
        case Axis::kFollowingSibling:
        case Axis::kPrecedingSibling:
          out.ddo = props.max1;
          out.max1 = false;
          out.same_level = props.same_level || props.max1;
          break;
      }
      if (options_.eliminate_ddo && out.ddo) {
        step.needs_ddo = false;  // result provably in DDO already
      } else {
        step.needs_ddo = true;
        out.ddo = true;  // the executed DDO op establishes the property
      }
      props = out;
    }
    (void)output_position;
    return props;
  }

  /// Classifies a predicate as stream-safe vs. materializing: a predicate
  /// that may consult last() forces the pull-based executor to materialize
  /// its input sequence (the only way to know the context size).
  void AnnotateStreaming(Expr* pred) {
    pred->stream_annotated = true;
    pred->pred_needs_last = ExprConsultsLast(*pred);
  }

  template <typename F>
  void ForEachChild(Expr* expr, F f) {
    for (auto& c : expr->children) f(c.get());
    for (Step& s : expr->steps) {
      for (auto& p : s.predicates) f(p.get());
    }
    for (auto& a : expr->ctor_attrs) f(a.get());
    if (expr->name_expr) f(expr->name_expr.get());
    if (expr->where) f(expr->where.get());
    for (OrderSpec& o : expr->order_specs) f(o.expr.get());
    for (FlworClause& c : expr->clauses) f(c.expr.get());
  }

  const Prolog* prolog_;
  RewriteOptions options_;
  std::set<std::string> recursive_;
};

}  // namespace

Status RewriteExpr(Expr* expr, const Prolog* prolog,
                   const RewriteOptions& options) {
  Rewriter rewriter(prolog, options);
  return rewriter.Run(expr, /*output_position=*/true);
}

Status Rewrite(Statement* stmt, const RewriteOptions& options) {
  Rewriter rewriter(&stmt->prolog, options);
  if (stmt->expr != nullptr) {
    bool output =
        stmt->kind == StatementKind::kQuery;  // updates traverse results
    SEDNA_RETURN_IF_ERROR(rewriter.Run(stmt->expr.get(), output));
  }
  if (stmt->target != nullptr) {
    SEDNA_RETURN_IF_ERROR(rewriter.Run(stmt->target.get(), false));
  }
  return Status::OK();
}

}  // namespace sedna
