// Baseline numbering scheme in the style of XISS (Li & Moon, VLDB'01),
// which the paper singles out (Section 4.1.1): interval-based (order, size)
// labels whose "main drawback ... is that inserting nodes into an XML
// document periodically requires reconstruction of labels for the entire
// XML document".
//
// Each node carries an integer pair (order, size): descendants of x satisfy
// order_x < order_y <= order_x + size_x. Intervals are allocated with gaps;
// when an insertion finds no free integer, the WHOLE document is relabeled
// (and the relabel counters that benchmark E3 reports are incremented).

#ifndef SEDNA_BASELINES_XISS_NUMBERING_H_
#define SEDNA_BASELINES_XISS_NUMBERING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace sedna::baselines {

struct XissLabel {
  uint64_t order = 0;
  uint64_t size = 0;

  /// Interval containment test (XISS ancestor check).
  bool IsAncestorOf(const XissLabel& other) const {
    return order < other.order && other.order <= order + size;
  }
  bool PrecedesInDocOrder(const XissLabel& other) const {
    return order < other.order;
  }
};

/// A tree of XISS-labeled nodes supporting point insertion. Node identity is
/// a stable integer id; labels change under relabeling (that is the point).
class XissTree {
 public:
  /// Creates a tree with a root. `gap` controls initial spacing between
  /// sibling intervals (larger gap = fewer relabels, bigger ids).
  explicit XissTree(uint64_t gap = 16) : gap_(gap) {
    nodes_.push_back(Node{0, kNoNode, {}, XissLabel{}});
    RelabelAll();
    relabels_ = 0;  // the initial labeling does not count
    relabeled_nodes_ = 0;
  }

  using NodeId = size_t;
  static constexpr NodeId kNoNode = static_cast<NodeId>(-1);

  NodeId root() const { return 0; }
  size_t size() const { return nodes_.size(); }

  const XissLabel& label(NodeId id) const { return nodes_[id].label; }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  const std::vector<NodeId>& children(NodeId id) const {
    return nodes_[id].children;
  }

  /// Inserts a child of `parent` at `pos` (0..children). If no free integer
  /// remains between the neighbours, the entire document is relabeled first.
  NodeId InsertChild(NodeId parent, size_t pos);

  /// True if a is an ancestor of b per the labels.
  bool IsAncestor(NodeId a, NodeId b) const {
    return nodes_[a].label.IsAncestorOf(nodes_[b].label);
  }

  /// Benchmark counters: full-document relabel events and total node labels
  /// rewritten by them.
  uint64_t relabels() const { return relabels_; }
  uint64_t relabeled_nodes() const { return relabeled_nodes_; }

 private:
  struct Node {
    NodeId id;
    NodeId parent;
    std::vector<NodeId> children;
    XissLabel label;
  };

  /// Attempts to pick (order,size) for a new node between its neighbours
  /// inside the parent's interval; false if the gap is exhausted.
  bool TryPlace(NodeId parent, size_t pos, XissLabel* out) const;

  /// Reassigns every label with fresh gaps (the reconstruction the paper
  /// criticizes).
  void RelabelAll();
  uint64_t RelabelSubtree(NodeId id, uint64_t order);

  std::vector<Node> nodes_;
  uint64_t gap_;
  uint64_t relabels_ = 0;
  uint64_t relabeled_nodes_ = 0;
};

}  // namespace sedna::baselines

#endif  // SEDNA_BASELINES_XISS_NUMBERING_H_
