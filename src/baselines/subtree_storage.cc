#include "baselines/subtree_storage.h"

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace sedna::baselines {

namespace {

struct RecordView {
  XmlKind kind;
  uint32_t subtree_end;
  std::string_view name;
  std::string_view text;
  size_t bytes;  // full record length
};

RecordView ParseRecord(const uint8_t* p) {
  RecordView r;
  r.kind = static_cast<XmlKind>(p[0]);
  std::memcpy(&r.subtree_end, p + 1, 4);
  uint16_t name_len, text_len;
  std::memcpy(&name_len, p + 5, 2);
  std::memcpy(&text_len, p + 7, 2);
  r.name = std::string_view(reinterpret_cast<const char*>(p + 9), name_len);
  r.text = std::string_view(reinterpret_cast<const char*>(p + 9 + name_len),
                            text_len);
  r.bytes = 9 + name_len + text_len;
  return r;
}

}  // namespace

void SubtreeStore::EnsureRoom(size_t bytes) {
  if (tail_used_ + bytes > kPageBytes) {
    pages_.push_back(std::make_unique<uint8_t[]>(kPageBytes));
    tail_used_ = 0;
  }
}

void SubtreeStore::AppendNode(const XmlNode& node) {
  size_t index = count_;
  std::string_view text =
      node.kind == XmlKind::kElement || node.kind == XmlKind::kDocument
          ? std::string_view()
          : std::string_view(node.value);
  // Long text is clamped into one record for this baseline; enough for the
  // generated workloads, which keep values below a page.
  uint16_t name_len = static_cast<uint16_t>(std::min<size_t>(
      node.name.size(), 4096));
  uint16_t text_len =
      static_cast<uint16_t>(std::min<size_t>(text.size(), 8192));
  size_t bytes = 9 + name_len + text_len;
  SEDNA_CHECK(bytes <= kPageBytes) << "record larger than a page";
  EnsureRoom(bytes);
  uint8_t* p = pages_.back().get() + tail_used_;
  p[0] = static_cast<uint8_t>(node.kind);
  uint32_t end_placeholder = 0;
  std::memcpy(p + 1, &end_placeholder, 4);
  std::memcpy(p + 5, &name_len, 2);
  std::memcpy(p + 7, &text_len, 2);
  std::memcpy(p + 9, node.name.data(), name_len);
  std::memcpy(p + 9 + name_len, text.data(), text_len);
  index_.push_back(Cursor{pages_.size() - 1, tail_used_});
  subtree_end_.push_back(0);
  tail_used_ += bytes;
  count_++;

  for (const auto& child : node.children) AppendNode(*child);

  uint32_t end = static_cast<uint32_t>(count_);
  subtree_end_[index] = end;
  uint8_t* rec = pages_[index_[index].page].get() + index_[index].offset;
  std::memcpy(rec + 1, &end, 4);
}

Status SubtreeStore::Load(const XmlNode& doc) {
  if (doc.kind != XmlKind::kDocument) {
    return Status::InvalidArgument("Load expects a document node");
  }
  pages_.clear();
  index_.clear();
  subtree_end_.clear();
  count_ = 0;
  tail_used_ = kPageBytes;
  AppendNode(doc);
  return Status::OK();
}

SubtreeStore::ScanResult SubtreeStore::ScanByName(
    std::string_view name) const {
  ScanResult result;
  size_t last_page = static_cast<size_t>(-1);
  for (size_t i = 0; i < count_; ++i) {
    const Cursor& c = index_[i];
    if (c.page != last_page) {
      result.pages_touched++;
      last_page = c.page;
    }
    RecordView r = ParseRecord(pages_[c.page].get() + c.offset);
    result.nodes_visited++;
    if (r.kind == XmlKind::kElement && r.name == name) result.matches++;
  }
  return result;
}

SubtreeStore::ScanResult SubtreeStore::PredicateScan(std::string_view name,
                                                     double value) const {
  ScanResult result;
  size_t last_page = static_cast<size_t>(-1);
  for (size_t i = 0; i < count_; ++i) {
    const Cursor& c = index_[i];
    if (c.page != last_page) {
      result.pages_touched++;
      last_page = c.page;
    }
    RecordView r = ParseRecord(pages_[c.page].get() + c.offset);
    result.nodes_visited++;
    if (r.kind != XmlKind::kElement || r.name != name) continue;
    // Concatenate the direct text children (they follow immediately in DFS
    // order until the first non-text child).
    std::string text;
    for (size_t j = i + 1; j < subtree_end_[i]; ++j) {
      const Cursor& cj = index_[j];
      if (cj.page != last_page) {
        result.pages_touched++;
        last_page = cj.page;
      }
      RecordView rj = ParseRecord(pages_[cj.page].get() + cj.offset);
      result.nodes_visited++;
      if (rj.kind == XmlKind::kText) text.append(rj.text);
    }
    double v;
    if (ParseDouble(text, &v) && v > value) result.matches++;
  }
  return result;
}

StatusOr<SubtreeStore::SubtreeResult> SubtreeStore::ReadSubtree(
    std::string_view name, size_t target_index) const {
  size_t seen = 0;
  for (size_t i = 0; i < count_; ++i) {
    const Cursor& c = index_[i];
    RecordView r = ParseRecord(pages_[c.page].get() + c.offset);
    if (r.kind != XmlKind::kElement || r.name != name) continue;
    if (seen++ != target_index) continue;
    // Materialize records [i, subtree_end) back into a tree.
    SubtreeResult result;
    size_t last_page = static_cast<size_t>(-1);
    std::vector<std::pair<XmlNode*, uint32_t>> stack;  // node, subtree end
    std::unique_ptr<XmlNode> root;
    for (size_t j = i; j < subtree_end_[i]; ++j) {
      const Cursor& cj = index_[j];
      if (cj.page != last_page) {
        result.pages_touched++;
        last_page = cj.page;
      }
      RecordView rj = ParseRecord(pages_[cj.page].get() + cj.offset);
      while (!stack.empty() && j >= stack.back().second) stack.pop_back();
      auto node = std::make_unique<XmlNode>(rj.kind, std::string(rj.name),
                                            std::string(rj.text));
      XmlNode* raw = node.get();
      if (stack.empty()) {
        root = std::move(node);
      } else {
        stack.back().first->Add(std::move(node));
      }
      if (rj.kind == XmlKind::kElement || rj.kind == XmlKind::kDocument) {
        stack.emplace_back(raw, subtree_end_[j]);
      }
    }
    result.tree = std::move(root);
    return result;
  }
  return Status::NotFound("no such element");
}

}  // namespace sedna::baselines
