// Baseline storage strategy: subtree-based clustering (paper Section 2,
// citing Natix/Timber): "an XML element is frequently queried together with
// its sub-elements, so these should be clustered together", i.e. the
// document tree is laid out in depth-first order across pages.
//
// The paper's claim (E2): schema-driven clustering is "efficient for
// retrieving only subelements of particular types" and "more
// computationally efficient for selecting nodes with respect to a
// predicate, because unnecessary nodes are not fetched from disk". This
// store makes the comparison concrete: selecting all elements of one name
// must sweep every page, and the benchmark counts the pages each strategy
// touches.

#ifndef SEDNA_BASELINES_SUBTREE_STORAGE_H_
#define SEDNA_BASELINES_SUBTREE_STORAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/xml_tree.h"

namespace sedna::baselines {

/// Paged depth-first storage of one document. Node records are
/// variable-length and packed into fixed-size pages in document order.
class SubtreeStore {
 public:
  /// Page size matches the Sedna engine for a fair comparison.
  static constexpr size_t kPageBytes = 16384;

  /// Bulk-loads the document in depth-first order.
  Status Load(const XmlNode& doc);

  size_t node_count() const { return count_; }
  size_t page_count() const { return pages_.size(); }

  struct ScanResult {
    uint64_t matches = 0;
    uint64_t pages_touched = 0;
    uint64_t nodes_visited = 0;
  };

  /// All elements with the given name (full sweep: subtree clustering has
  /// no name index).
  ScanResult ScanByName(std::string_view name) const;

  /// Elements with the given name whose concatenated child text compares
  /// greater than `value` numerically (a simple predicate scan).
  ScanResult PredicateScan(std::string_view name, double value) const;

  /// Reconstructs the subtree rooted at the `index`-th element named
  /// `name` — the access pattern subtree clustering is good at: the whole
  /// subtree sits on one or few adjacent pages.
  struct SubtreeResult {
    std::unique_ptr<XmlNode> tree;
    uint64_t pages_touched = 0;
  };
  StatusOr<SubtreeResult> ReadSubtree(std::string_view name,
                                      size_t index) const;

 private:
  // Record layout (packed, little-endian):
  //   uint8 kind | uint32 subtree_end (node index after this subtree)
  //   | uint16 name_len | uint16 text_len | name | text
  struct Cursor {
    size_t page;
    size_t offset;
  };

  void AppendNode(const XmlNode& node);
  void EnsureRoom(size_t bytes);

  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  size_t tail_used_ = kPageBytes;  // bytes used in the last page
  // Node index -> (page, offset); kept in memory like a clustered index.
  std::vector<Cursor> index_;
  std::vector<uint32_t> subtree_end_;  // node index one past the subtree
  size_t count_ = 0;
};

}  // namespace sedna::baselines

#endif  // SEDNA_BASELINES_SUBTREE_STORAGE_H_
