// Baseline memory management: pointer swizzling in the style of ObjectStore
// / QuickStore (paper Section 2): persistent pointers are (page, slot)
// object identifiers whose representation differs from virtual addresses,
// so every dereference pays a translation through a resident-object table
// — "the pointer representations in DAS and VAS are different that makes
// the conversion expensive".
//
// The Sedna side of benchmark E1 dereferences an Xptr through the SAS
// layer-table (two array loads); this baseline dereferences through a hash
// lookup per pointer, modeling the swizzle/unswizzle conversion.

#ifndef SEDNA_BASELINES_SWIZZLING_STORE_H_
#define SEDNA_BASELINES_SWIZZLING_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace sedna::baselines {

/// Persistent object reference: different representation from a VAS pointer.
struct PersistentRef {
  uint32_t page = 0;
  uint32_t slot = 0;
  bool is_null() const { return page == 0 && slot == 0; }
};

/// Fixed-size objects holding one persistent "next" reference plus payload,
/// enough for the pointer-chasing benchmark.
struct SwizzleObject {
  PersistentRef next;
  uint64_t payload = 0;
};

class SwizzlingStore {
 public:
  static constexpr size_t kObjectsPerPage = 512;

  SwizzlingStore() = default;

  /// Allocates a new object; returns its persistent reference.
  PersistentRef Allocate();

  /// Dereferences through the swizzle table (hash lookup per call — the
  /// conversion cost the paper's design avoids).
  SwizzleObject* Deref(PersistentRef ref) {
    derefs_++;
    auto it = resident_.find(Key(ref.page));
    if (it == resident_.end()) {
      faults_++;
      it = resident_.emplace(Key(ref.page), LoadPage(ref.page)).first;
    }
    return it->second + (ref.slot - 1);
  }

  uint64_t derefs() const { return derefs_; }
  uint64_t faults() const { return faults_; }
  size_t page_count() const { return pages_.size(); }

 private:
  static uint64_t Key(uint32_t page) { return page; }
  SwizzleObject* LoadPage(uint32_t page) {
    return pages_[page - 1].get();
  }

  std::vector<std::unique_ptr<SwizzleObject[]>> pages_;
  size_t tail_used_ = kObjectsPerPage;
  std::unordered_map<uint64_t, SwizzleObject*> resident_;
  uint64_t derefs_ = 0;
  uint64_t faults_ = 0;
};

}  // namespace sedna::baselines

#endif  // SEDNA_BASELINES_SWIZZLING_STORE_H_
