#include "baselines/xiss_numbering.h"

#include "common/logging.h"

namespace sedna::baselines {

bool XissTree::TryPlace(NodeId parent, size_t pos, XissLabel* out) const {
  const Node& p = nodes_[parent];
  // Integer range available between the left neighbour's interval end and
  // the right neighbour's interval start, inside the parent interval.
  uint64_t prev_end = pos > 0 ? nodes_[p.children[pos - 1]].label.order +
                                    nodes_[p.children[pos - 1]].label.size
                              : p.label.order;
  uint64_t next_start = pos < p.children.size()
                            ? nodes_[p.children[pos]].label.order
                            : p.label.order + p.label.size + 1;
  if (next_start <= prev_end + 1) return false;  // gap exhausted
  uint64_t avail = next_start - prev_end - 1;
  // Leave roughly a quarter of the gap on the left, keep up to half the gap
  // as the new node's own descendant space.
  uint64_t order = prev_end + 1 + avail / 4;
  uint64_t size = avail / 2;
  if (order + size >= next_start) {
    size = next_start - 1 - order;
  }
  out->order = order;
  out->size = size;
  return true;
}

XissTree::NodeId XissTree::InsertChild(NodeId parent, size_t pos) {
  SEDNA_CHECK(pos <= nodes_[parent].children.size());
  XissLabel label;
  if (!TryPlace(parent, pos, &label)) {
    // The paper's drawback in action: reconstruct every label.
    RelabelAll();
    bool ok = TryPlace(parent, pos, &label);
    SEDNA_CHECK(ok) << "fresh gaps must admit the insertion";
  }
  NodeId id = nodes_.size();
  nodes_.push_back(Node{id, parent, {}, label});
  Node& p = nodes_[parent];
  p.children.insert(p.children.begin() + static_cast<long>(pos), id);
  return id;
}

void XissTree::RelabelAll() {
  relabels_++;
  relabeled_nodes_ += nodes_.size();
  RelabelSubtree(0, 1);
}

uint64_t XissTree::RelabelSubtree(NodeId id, uint64_t order) {
  Node& node = nodes_[id];
  node.label.order = order;
  uint64_t cur = order;
  for (NodeId child : node.children) {
    cur = RelabelSubtree(child, cur + gap_);
  }
  node.label.size = cur + gap_ - order;
  return node.label.order + node.label.size;
}

}  // namespace sedna::baselines
