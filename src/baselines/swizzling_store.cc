#include "baselines/swizzling_store.h"

namespace sedna::baselines {

PersistentRef SwizzlingStore::Allocate() {
  if (tail_used_ >= kObjectsPerPage) {
    pages_.push_back(std::make_unique<SwizzleObject[]>(kObjectsPerPage));
    tail_used_ = 0;
  }
  PersistentRef ref;
  ref.page = static_cast<uint32_t>(pages_.size());  // 1-based
  ref.slot = static_cast<uint32_t>(++tail_used_);   // 1-based
  return ref;
}

}  // namespace sedna::baselines
