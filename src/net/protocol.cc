#include "net/protocol.h"

#include <cstring>

#include "common/coding.h"

namespace sedna::net {

bool IsClientMessageType(uint8_t type) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kHello:
    case MessageType::kExecute:
    case MessageType::kExplain:
    case MessageType::kSetOption:
    case MessageType::kCancel:
    case MessageType::kClose:
    case MessageType::kBegin:
    case MessageType::kCommitTxn:
    case MessageType::kAbortTxn:
      return true;
    default:
      return false;
  }
}

void AppendFrame(std::string* dst, MessageType type,
                 std::string_view payload) {
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  dst->push_back(static_cast<char>(type));
  dst->append(payload.data(), payload.size());
}

DecodeResult DecodeFrame(std::string_view buf, Frame* out, size_t* consumed,
                         Status* error) {
  if (buf.size() < kFrameHeaderBytes) return DecodeResult::kNeedMore;
  uint32_t len = DecodeFixed32(buf.data());
  if (len > kMaxPayloadBytes) {
    *error = Status::ProtocolError("frame payload length " +
                                   std::to_string(len) + " exceeds the " +
                                   std::to_string(kMaxPayloadBytes) +
                                   "-byte cap");
    return DecodeResult::kBad;
  }
  if (buf.size() < kFrameHeaderBytes + len) return DecodeResult::kNeedMore;
  out->type = static_cast<MessageType>(static_cast<uint8_t>(buf[4]));
  out->payload.assign(buf.data() + kFrameHeaderBytes, len);
  *consumed = kFrameHeaderBytes + len;
  return DecodeResult::kFrame;
}

std::string EncodeHello() {
  std::string payload(kHelloMagic, kHelloMagicLen);
  payload.push_back(static_cast<char>(kProtocolVersion));
  return payload;
}

Status DecodeHello(std::string_view payload) {
  if (payload.size() != kHelloMagicLen + 1 ||
      std::memcmp(payload.data(), kHelloMagic, kHelloMagicLen) != 0) {
    return Status::ProtocolError("malformed Hello frame");
  }
  uint8_t version = static_cast<uint8_t>(payload[kHelloMagicLen]);
  if (version != kProtocolVersion) {
    return Status::ProtocolError("unsupported protocol version " +
                                 std::to_string(version) + " (server speaks " +
                                 std::to_string(kProtocolVersion) + ")");
  }
  return Status::OK();
}

std::string EncodeHelloOk(uint64_t session_id, std::string_view banner) {
  std::string payload;
  PutFixed64(&payload, session_id);
  PutLengthPrefixed(&payload, banner);
  return payload;
}

Status DecodeHelloOk(std::string_view payload, uint64_t* session_id,
                     std::string* banner) {
  Decoder dec(payload);
  std::string_view b;
  if (!dec.GetFixed64(session_id) || !dec.GetLengthPrefixed(&b) ||
      dec.remaining() != 0) {
    return Status::ProtocolError("malformed HelloOk frame");
  }
  banner->assign(b);
  return Status::OK();
}

std::string EncodeResultDone(StatementKind kind, uint64_t affected,
                             uint64_t peak_memory_bytes) {
  std::string payload;
  payload.push_back(static_cast<char>(kind));
  PutFixed64(&payload, affected);
  PutFixed64(&payload, peak_memory_bytes);
  return payload;
}

Status DecodeResultDone(std::string_view payload, StatementKind* kind,
                        uint64_t* affected, uint64_t* peak_memory_bytes) {
  Decoder dec(payload);
  uint8_t kind_byte = 0;
  if (!dec.GetRaw(&kind_byte, 1) || !dec.GetFixed64(affected) ||
      !dec.GetFixed64(peak_memory_bytes) || dec.remaining() != 0 ||
      kind_byte > static_cast<uint8_t>(StatementKind::kDropIndex)) {
    return Status::ProtocolError("malformed ResultDone frame");
  }
  *kind = static_cast<StatementKind>(kind_byte);
  return Status::OK();
}

std::string EncodeError(const Status& status) {
  std::string payload;
  PutFixed32(&payload, WireCodeFromStatus(status.code()));
  PutLengthPrefixed(&payload, status.message());
  return payload;
}

Status DecodeError(std::string_view payload) {
  Decoder dec(payload);
  uint32_t wire = 0;
  std::string_view message;
  if (!dec.GetFixed32(&wire) || !dec.GetLengthPrefixed(&message) ||
      dec.remaining() != 0) {
    return Status::ProtocolError("malformed Error frame");
  }
  StatusCode code = StatusCodeFromWire(wire);
  if (code == StatusCode::kOk) {
    return Status::ProtocolError("Error frame carried an OK code");
  }
  return Status(code, std::string(message));
}

std::string EncodeSetOption(std::string_view key, std::string_view value) {
  std::string payload;
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, value);
  return payload;
}

Status DecodeSetOption(std::string_view payload, std::string* key,
                       std::string* value) {
  Decoder dec(payload);
  std::string_view k, v;
  if (!dec.GetLengthPrefixed(&k) || !dec.GetLengthPrefixed(&v) ||
      dec.remaining() != 0) {
    return Status::ProtocolError("malformed SetOption frame");
  }
  key->assign(k);
  value->assign(v);
  return Status::OK();
}

std::string EncodeBegin(bool read_only) {
  std::string payload;
  payload.push_back(read_only ? 1 : 0);
  return payload;
}

Status DecodeBegin(std::string_view payload, bool* read_only) {
  if (payload.size() != 1 ||
      static_cast<uint8_t>(payload[0]) > 1) {
    return Status::ProtocolError("malformed Begin frame");
  }
  *read_only = payload[0] != 0;
  return Status::OK();
}

std::string EncodeTxnOk(bool in_txn) {
  std::string payload;
  payload.push_back(in_txn ? 1 : 0);
  return payload;
}

Status DecodeTxnOk(std::string_view payload, bool* in_txn) {
  if (payload.size() != 1 ||
      static_cast<uint8_t>(payload[0]) > 1) {
    return Status::ProtocolError("malformed TxnOk frame");
  }
  *in_txn = payload[0] != 0;
  return Status::OK();
}

uint32_t WireCodeFromStatus(StatusCode code) {
  return static_cast<uint32_t>(code);
}

StatusCode StatusCodeFromWire(uint32_t wire) {
  if (wire > static_cast<uint32_t>(StatusCode::kProtocolError)) {
    return StatusCode::kInternal;
  }
  return static_cast<StatusCode>(wire);
}

}  // namespace sedna::net
