#include "net/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/random.h"

namespace sedna::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

class TcpSocket : public TransportSocket {
 public:
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() override { Close(); }

  ssize_t Read(char* buf, size_t len, int* err) override {
    ssize_t n = ::recv(fd_, buf, len, 0);
    if (n < 0) *err = errno;
    return n;
  }

  ssize_t Write(const char* buf, size_t len, int* err) override {
    ssize_t n = ::send(fd_, buf, len, MSG_NOSIGNAL);
    if (n < 0) *err = errno;
    return n;
  }

  int fd() const override { return fd_; }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

class TcpTransport : public Transport {
 public:
  StatusOr<std::unique_ptr<TransportSocket>> Connect(const std::string& host,
                                                     uint16_t port) override {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return Errno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return Status::InvalidArgument("bad server address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      Status st = Errno("connect " + host + ":" + std::to_string(port));
      ::close(fd);
      return st;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::unique_ptr<TransportSocket>(new TcpSocket(fd));
  }

  std::unique_ptr<TransportSocket> Adopt(int fd) override {
    return std::unique_ptr<TransportSocket>(new TcpSocket(fd));
  }
};

}  // namespace

Transport* Transport::Default() {
  static TcpTransport* transport = new TcpTransport();
  return transport;
}

// ---------------------------------------------------------------------------
// FaultInjectingTransport
// ---------------------------------------------------------------------------

class FaultInjectingTransport::FaultSocket : public TransportSocket {
 public:
  FaultSocket(FaultInjectingTransport* owner,
              std::unique_ptr<TransportSocket> inner, uint64_t index)
      : owner_(owner),
        inner_(std::move(inner)),
        rng_(owner->options_.seed * 1000003 + index) {}

  // The fault bookkeeping (rng draws, op/byte counters, kill state) is
  // mutex-guarded because a client may Cancel() — a write — from another
  // thread while its main thread sits in a read. The inner I/O call runs
  // OUTSIDE the lock: holding it across a blocking read would deadlock the
  // cancel path the lock exists to allow.

  ssize_t Read(char* buf, size_t len, int* err) override {
    const TransportFaultOptions& o = owner_->options_;
    size_t allowed = len;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (Doomed(err, /*writing=*/false)) return -1;
      if (o.delay_p > 0 && rng_.Bernoulli(o.delay_p)) {
        owner_->CountFault();
        *err = EAGAIN;
        return -1;
      }
      if (o.short_read_p > 0 && len > 1 && rng_.Bernoulli(o.short_read_p)) {
        owner_->CountFault();
        allowed = 1 + rng_.Uniform(len - 1);
      }
      allowed = CapToKillBytes(allowed);
    }
    ssize_t n = inner_->Read(buf, allowed, err);
    if (n > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      AccountBytes(static_cast<uint64_t>(n));
    }
    return n;
  }

  ssize_t Write(const char* buf, size_t len, int* err) override {
    const TransportFaultOptions& o = owner_->options_;
    size_t allowed = len;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (Doomed(err, /*writing=*/true)) return -1;
      if (o.delay_p > 0 && rng_.Bernoulli(o.delay_p)) {
        owner_->CountFault();
        *err = EAGAIN;
        return -1;
      }
      if (o.short_write_p > 0 && len > 1 && rng_.Bernoulli(o.short_write_p)) {
        owner_->CountFault();
        allowed = 1 + rng_.Uniform(len - 1);
      }
      allowed = CapToKillBytes(allowed);
    }
    ssize_t n = inner_->Write(buf, allowed, err);
    if (n > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      AccountBytes(static_cast<uint64_t>(n));
    }
    return n;
  }

  int fd() const override { return inner_->fd(); }
  void Close() override { inner_->Close(); }

 private:
  /// Op-count and post-kill handling. Returns true when the op must fail:
  /// the stream was already killed (reset surfaces on every later op) or
  /// this op is the configured kill point.
  bool Doomed(int* err, bool writing) {
    if (killed_) {
      *err = writing ? EPIPE : ECONNRESET;
      return true;
    }
    uint64_t op = ++ops_;
    uint64_t kill_at = owner_->kill_at_op_.load(std::memory_order_relaxed);
    if (kill_at != 0 && op >= kill_at) {
      Kill();
      *err = writing ? EPIPE : ECONNRESET;
      return true;
    }
    return false;
  }

  /// Never move bytes past the kill-after-bytes boundary in one op, so the
  /// kill lands exactly mid-frame when the boundary splits a frame.
  size_t CapToKillBytes(size_t allowed) const {
    uint64_t kill_bytes = owner_->options_.kill_after_bytes;
    if (kill_bytes == 0 || bytes_ >= kill_bytes) return allowed;
    return static_cast<size_t>(
        std::min<uint64_t>(allowed, kill_bytes - bytes_));
  }

  void AccountBytes(uint64_t n) {
    bytes_ += n;
    uint64_t kill_bytes = owner_->options_.kill_after_bytes;
    if (kill_bytes != 0 && bytes_ >= kill_bytes && !killed_) Kill();
  }

  /// Simulates this endpoint crashing: shut the stream down both ways (the
  /// peer sees EOF, we see reset) but keep the fd open until Close() so the
  /// descriptor number cannot be reused while still registered in a poll
  /// set.
  void Kill() {
    killed_ = true;
    owner_->CountKill();
    if (inner_->fd() >= 0) ::shutdown(inner_->fd(), SHUT_RDWR);
  }

  FaultInjectingTransport* owner_;
  std::unique_ptr<TransportSocket> inner_;
  std::mutex mu_;  // guards the fault state below (see the comment above)
  Random rng_;
  uint64_t ops_ = 0;
  uint64_t bytes_ = 0;
  bool killed_ = false;
};

FaultInjectingTransport::FaultInjectingTransport(
    const TransportFaultOptions& options, Transport* base)
    : options_(options),
      base_(base != nullptr ? base : Transport::Default()),
      kill_at_op_(options.kill_at_op),
      connects_to_fail_(options.fail_connects) {}

StatusOr<std::unique_ptr<TransportSocket>> FaultInjectingTransport::Connect(
    const std::string& host, uint16_t port) {
  uint32_t left = connects_to_fail_.load(std::memory_order_relaxed);
  while (left > 0) {
    if (connects_to_fail_.compare_exchange_weak(left, left - 1)) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("injected connect failure (" +
                                 std::to_string(left) + " left)");
    }
  }
  SEDNA_ASSIGN_OR_RETURN(std::unique_ptr<TransportSocket> inner,
                         base_->Connect(host, port));
  uint64_t index = next_socket_index_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<TransportSocket>(
      new FaultSocket(this, std::move(inner), index));
}

std::unique_ptr<TransportSocket> FaultInjectingTransport::Adopt(int fd) {
  uint64_t index = next_socket_index_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<TransportSocket>(
      new FaultSocket(this, base_->Adopt(fd), index));
}

void FaultInjectingTransport::CountFault() {
  faults_injected_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjectingTransport::CountKill() {
  kills_.fetch_add(1, std::memory_order_relaxed);
  faults_injected_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace sedna::net
