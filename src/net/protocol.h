// Wire protocol for the multi-session network front end (the paper's
// Figure 1: many client connections multiplexed by a governor process).
//
// Transport: a TCP byte stream carrying length-prefixed frames:
//
//     [u32 payload_len, little-endian][u8 message_type][payload bytes]
//
// payload_len counts only the payload (the 5-byte header is excluded) and
// is capped at kMaxPayloadBytes; a larger prefix is a protocol violation
// and the server answers with one Error frame and drops the connection.
//
// Conversation: the client opens with Hello (magic + protocol version) and
// receives HelloOk. From then on Execute / Explain / SetOption / Close
// requests are answered strictly in request order (pipelining is allowed,
// bounded by the server's per-connection queue). A query's reply is zero or
// more ResultChunk frames — the serialized result, split at arbitrary byte
// boundaries, produced by the server's streaming result sink so the full
// result never materializes server-side — terminated by one ResultDone (or
// one Error, possibly after chunks the client must then discard). Cancel is
// the one out-of-band message: it is not queued and never answered; it
// trips the CancellationToken of the statement currently executing, which
// then fails its own pending reply with kCancelled.

#ifndef SEDNA_NET_PROTOCOL_H_
#define SEDNA_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "xquery/rewriter.h"

namespace sedna::net {

// Bumped when the frame layout or a payload encoding changes
// incompatibly; the server rejects a Hello carrying any other version.
// v2: explicit transactions (Begin/CommitTxn/AbortTxn <-> TxnOk).
inline constexpr uint8_t kProtocolVersion = 2;
inline constexpr char kHelloMagic[] = "SEDNA";  // 5 bytes, no NUL on the wire
inline constexpr size_t kHelloMagicLen = 5;

// Hard cap on a frame payload in either direction. Inbound it bounds
// statement text; outbound the server splits result chunks far below it.
inline constexpr uint32_t kMaxPayloadBytes = 16u * 1024 * 1024;

inline constexpr size_t kFrameHeaderBytes = 5;  // u32 length + u8 type

enum class MessageType : uint8_t {
  // client -> server
  kHello = 0x01,      // magic + version handshake, first frame on the wire
  kExecute = 0x02,    // payload = statement text
  kExplain = 0x03,    // payload = statement text, runs in profile mode
  kSetOption = 0x04,  // payload = length-prefixed key, value
  kCancel = 0x05,     // out of band: cancel the executing statement
  kClose = 0x06,      // orderly goodbye (queued behind earlier statements)
  kBegin = 0x07,      // open an explicit transaction; payload = u8 read_only
  kCommitTxn = 0x08,  // commit the open transaction (empty payload)
  kAbortTxn = 0x09,   // abort the open transaction (empty payload)
  // server -> client
  kHelloOk = 0x81,      // u64 session id + length-prefixed server banner
  kResultChunk = 0x82,  // raw bytes of the serialized result
  kResultDone = 0x83,   // u8 kind + u64 affected + u64 peak_memory_bytes
  kError = 0x84,        // u32 status code + length-prefixed message
  kOptionOk = 0x85,     // SetOption acknowledged
  kGoodbye = 0x86,      // server is closing the connection after this frame
  kTxnOk = 0x87,        // Begin/CommitTxn/AbortTxn done; u8 in_txn after it
};

/// True for the types a client may legally send.
bool IsClientMessageType(uint8_t type);

struct Frame {
  MessageType type = MessageType::kHello;
  std::string payload;
};

/// Appends one encoded frame to `dst`.
void AppendFrame(std::string* dst, MessageType type, std::string_view payload);

enum class DecodeResult {
  kFrame,     // one frame decoded and consumed from the front of the buffer
  kNeedMore,  // the buffer holds a prefix of a frame; read more bytes
  kBad,       // protocol violation (oversized length prefix)
};

/// Decodes the frame at the front of `buf`. On kFrame fills `out` and sets
/// `*consumed` to the bytes to drop from the front of the buffer; on kBad
/// fills `error` with a kProtocolError status.
DecodeResult DecodeFrame(std::string_view buf, Frame* out, size_t* consumed,
                         Status* error);

// --- payload codecs ---------------------------------------------------------

std::string EncodeHello();
Status DecodeHello(std::string_view payload);

std::string EncodeHelloOk(uint64_t session_id, std::string_view banner);
Status DecodeHelloOk(std::string_view payload, uint64_t* session_id,
                     std::string* banner);

std::string EncodeResultDone(StatementKind kind, uint64_t affected,
                             uint64_t peak_memory_bytes);
Status DecodeResultDone(std::string_view payload, StatementKind* kind,
                        uint64_t* affected, uint64_t* peak_memory_bytes);

std::string EncodeError(const Status& status);
/// Reconstructs the wire status (never OK; a malformed payload decodes to
/// kProtocolError so the caller still surfaces an error).
Status DecodeError(std::string_view payload);

std::string EncodeSetOption(std::string_view key, std::string_view value);
Status DecodeSetOption(std::string_view payload, std::string* key,
                       std::string* value);

std::string EncodeBegin(bool read_only);
Status DecodeBegin(std::string_view payload, bool* read_only);

/// `in_txn` reports the session's transaction state after the control
/// operation (true after Begin, false after Commit/Abort) so a client can
/// cross-check its own view of the lifecycle.
std::string EncodeTxnOk(bool in_txn);
Status DecodeTxnOk(std::string_view payload, bool* in_txn);

/// StatusCode <-> wire integer. Unknown wire values map to kInternal so a
/// newer server's codes still surface as errors on an older client.
uint32_t WireCodeFromStatus(StatusCode code);
StatusCode StatusCodeFromWire(uint32_t wire);

}  // namespace sedna::net

#endif  // SEDNA_NET_PROTOCOL_H_
