// TCP front end: the paper's Figure 1 governor process, for real — many
// client connections multiplexed onto a bounded worker pool.
//
// Architecture (DESIGN.md §13):
//
//   * one EVENT-LOOP thread owns every socket: non-blocking accept, reads,
//     frame parsing and writes via poll(2). It never executes statements,
//     so thousands of idle connections cost one pollfd each.
//   * a bounded WORKER POOL executes statements. The scheduler is a FIFO
//     of runnable connections; each dispatch runs exactly ONE queued item
//     (statement / SetOption / Close) and then requeues the connection if
//     more are pending — round-robin fairness across any number of
//     connections on a handful of threads.
//   * per-connection Session state carries the governance knobs (timeout,
//     memory budget, parallel workers, ...) set via SetOption; every
//     statement is admitted through the process-wide Governor, so the
//     server inherits admission control (reject or bounded-FIFO queue).
//   * results STREAM: the session's result sink slices the serialized
//     result into ResultChunk frames and hands them to the event loop,
//     blocking (governed) when the connection's write buffer is full —
//     a large result never materializes server-side and a stalled client
//     throttles only its own statement.
//   * Cancel frames are handled out of band by the event loop: they trip
//     the CancellationToken of the statement the connection is executing.
//   * explicit transactions: Begin/CommitTxn/AbortTxn frames ride the same
//     per-connection FIFO (so they order correctly against statements) and
//     map onto Session::Begin/Commit/Abort. The lifecycle is crash-honest:
//     a disconnect aborts the open transaction, a transaction idle past
//     txn_idle_timeout is aborted server-side (subsequent statements fail
//     with kAborted until the client acknowledges via Begin/AbortTxn), and
//     drain/shutdown aborts — never silently commits — open transactions.
//   * connection reaping: a poll-loop timer closes connections idle past
//     idle_timeout (half-open peers that never RST would otherwise hold a
//     Session forever), counting net.idle_closed.
//   * graceful drain (Shutdown): stop accepting, answer new statements
//     with kUnavailable, give in-flight statements a grace period, then
//     hard-abort the stragglers through governance (Session::Cancel), say
//     Goodbye on every connection and tear down.
//   * all socket I/O flows through the Transport seam (net/transport.h);
//     tests inject a FaultInjectingTransport to drive short reads/writes,
//     delays and mid-frame resets through every path above.
//
// Thread-safety map: socket fds and read buffers are touched only by the
// event loop; per-connection queues (pending work, outbound frames) are
// mutex-guarded; Session objects execute at most one item at a time
// (enforced by the `running` flag) with only the thread-safe Cancel()
// called concurrently.

#ifndef SEDNA_NET_SERVER_H_
#define SEDNA_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "db/database.h"
#include "net/protocol.h"
#include "net/transport.h"

namespace sedna::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; the bound port is Server::port()
  uint32_t worker_threads = 4;
  uint32_t max_connections = 8192;  // beyond: accept + immediately close
  // Statements a connection may pipeline before the server treats it as
  // misbehaving (protocol error, connection dropped).
  size_t max_pipelined_statements = 64;
  // Result-chunk frame payload size; also the granularity of streaming.
  size_t result_chunk_bytes = 32 * 1024;
  // Outbound soft cap per connection: above it the producing statement
  // blocks (flow control) instead of buffering the result server-side.
  size_t write_buffer_soft_cap = 1 << 20;
  // A statement blocked on a client that stops reading for this long is
  // aborted and its connection dropped (worker-starvation guard).
  std::chrono::milliseconds write_stall_timeout{10000};
  // SO_SNDBUF for accepted sockets (0 = kernel default with autotuning).
  // Setting it pins the kernel-side buffer, making back-pressure — and the
  // write-stall guard above — deterministic instead of racing autotune.
  int so_sndbuf = 0;
  // Default grace for Shutdown(): how long in-flight statements may run
  // before the drain hard-aborts them through governance.
  std::chrono::milliseconds drain_grace{2000};
  // An explicit transaction idle (no frame received, nothing queued or
  // running) for this long is aborted server-side; the connection stays
  // up but statements fail with kAborted until the client acknowledges
  // with Begin or AbortTxn. Zero disables.
  std::chrono::milliseconds txn_idle_timeout{30000};
  // A connection idle for this long is closed outright (aborting any open
  // transaction) — reaps half-open peers that never RST. Zero disables.
  std::chrono::milliseconds idle_timeout{0};
  // Socket factory; null = Transport::Default(). Tests inject a
  // FaultInjectingTransport here (accepted sockets only — the listener
  // itself stays raw).
  Transport* transport = nullptr;
};

class Server {
 public:
  /// Binds, listens and spawns the event loop + worker threads. `db` is
  /// not owned and must outlive the server.
  static StatusOr<std::unique_ptr<Server>> Start(Database* db,
                                                 const ServerOptions& options);

  /// Drains and joins everything (with the options' default grace) if
  /// Shutdown was not already called.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port.
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, reject statements arriving from now
  /// on with kUnavailable, let in-flight statements finish for `grace`,
  /// then hard-abort the rest via their cancellation tokens, send Goodbye
  /// everywhere and join all threads. Idempotent; only the first call
  /// drains.
  Status Shutdown(std::chrono::milliseconds grace);
  Status Shutdown() { return Shutdown(options_.drain_grace); }

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Live connections (post-accept, pre-close). For tests and monitoring.
  size_t active_connections() const;

  /// Statements accepted but not yet answered (queued + executing).
  uint64_t inflight_statements() const {
    return inflight_statements_.load(std::memory_order_acquire);
  }

 private:
  struct WorkItem {
    MessageType type = MessageType::kExecute;
    std::string text;   // statement text / option key
    std::string value;  // option value
    bool begin_read_only = false;   // decoded Begin payload
    bool drain_reject = false;  // arrived after the drain began
    std::chrono::steady_clock::time_point enqueued;
    bool is_statement() const {
      return type == MessageType::kExecute || type == MessageType::kExplain;
    }
    bool is_txn_control() const {
      return type == MessageType::kBegin ||
             type == MessageType::kCommitTxn ||
             type == MessageType::kAbortTxn;
    }
    // Items the drain must wait for (or hard-abort) before workers join.
    bool counts_inflight() const { return is_statement() || is_txn_control(); }
  };

  struct Conn {
    // Immutable after accept.
    std::unique_ptr<TransportSocket> sock;
    uint64_t id = 0;
    std::unique_ptr<Session> session;

    // Event-loop-only state.
    bool hello_done = false;
    bool reading_disabled = false;  // after a protocol error
    std::string inbuf;
    size_t out_offset = 0;  // partial-write offset into out.front()

    // Shared state (guarded by mu).
    std::mutex mu;
    std::condition_variable write_cv;
    std::deque<std::string> out;  // encoded frames awaiting the socket
    size_t out_bytes = 0;
    bool close_after_flush = false;
    bool closed = false;  // logically dead; loop reaps it
    bool doomed = false;  // a worker asked the loop to close it
    std::deque<WorkItem> pending;
    bool running = false;    // a worker is executing an item right now
    bool scheduled = false;  // sitting in the ready queue
    // Last inbound byte or completed work item; drives the idle sweeps.
    std::chrono::steady_clock::time_point last_activity;
    // The server aborted this connection's transaction (idle timeout).
    // Statements fail with kAborted until Begin/AbortTxn clears it, so a
    // client that thinks it is still in the transaction can never fall
    // through to silent autocommit.
    bool txn_idle_aborted = false;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  Server(Database* db, const ServerOptions& options)
      : db_(db), options_(options) {}
  Status Init();

  // --- event loop (loop thread only unless noted) ---------------------------
  void EventLoop();
  void AcceptNew();
  void HandleReadable(const ConnPtr& c);
  void HandleFrame(const ConnPtr& c, Frame frame);
  void FlushWrites(const ConnPtr& c);
  void CloseConn(const ConnPtr& c);
  void ReapDoomed();
  /// Aborts connections' transactions idle past txn_idle_timeout and
  /// closes connections idle past idle_timeout (loop thread).
  void SweepIdle(std::chrono::steady_clock::time_point now);
  /// Loop-thread reply (HelloOk / protocol Error): no flow control.
  void EnqueueFromLoop(const ConnPtr& c, MessageType type,
                       std::string_view payload);
  void ProtocolErrorClose(const ConnPtr& c, const Status& error);
  void ScheduleConn(const ConnPtr& c);

  // --- worker pool ----------------------------------------------------------
  void WorkerMain();
  void ProcessOne(const ConnPtr& c);
  void ExecuteStatement(const ConnPtr& c, const WorkItem& item);
  void ApplyOption(const ConnPtr& c, const WorkItem& item);
  /// Begin/CommitTxn/AbortTxn mapped onto the connection's Session.
  void HandleTxnControl(const ConnPtr& c, const WorkItem& item);
  /// Aborts the open transaction of a connection that died or is being
  /// drained (counted under the matching metric). Caller must hold the
  /// running/closed handoff: the session must be quiescent.
  void AbortAbandonedTxn(const ConnPtr& c);
  /// Flow-controlled enqueue from a worker; aborts when the connection
  /// dies, the statement is cancelled, the drain goes hard, or the client
  /// stalls past write_stall_timeout.
  Status BlockingEnqueue(const ConnPtr& c, std::string frame);

  void WakeLoop();

  Database* db_;
  ServerOptions options_;
  Transport* transport_ = nullptr;  // options_.transport or the default
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Scheduler: FIFO of connections with runnable work.
  std::mutex sched_mu_;
  std::condition_variable work_cv_;
  std::deque<ConnPtr> ready_;
  bool workers_stop_ = false;

  // Connection table: mutated by the loop, read by Shutdown/monitoring.
  mutable std::mutex conns_mu_;
  std::map<uint64_t, ConnPtr> conns_;
  uint64_t next_conn_id_ = 1;

  // Workers hand connections the loop must close to this list.
  std::mutex doomed_mu_;
  std::vector<ConnPtr> doomed_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> draining_{false};
  std::atomic<bool> draining_hard_{false};
  std::atomic<bool> loop_stop_{false};
  std::atomic<bool> shutdown_started_{false};
  std::atomic<uint64_t> inflight_statements_{0};

  struct NetMetrics;
  const NetMetrics* metrics_ = nullptr;  // cached registry pointers
};

}  // namespace sedna::net

#endif  // SEDNA_NET_SERVER_H_
