// Resilient blocking client for the wire protocol in net/protocol.h. One
// socket, one outstanding request at a time (no pipelining) — the shape
// embedded users already know: Execute returns when the final
// ResultDone/Error arrives, with the streamed chunks reassembled.
//
// Failure model. Every transport-level failure (connect refused, send or
// recv error, read timeout, EOF mid-frame, malformed frame) POISONS the
// connection: the socket is dropped on the spot and the reply stream can
// never desynchronize — the next request repairs the connection (fresh
// socket, Hello handshake, replay of the session options this client set)
// instead of reading some earlier request's leftover bytes. A clean Error
// frame from the server never poisons; it is a well-framed reply.
//
// Retries. With max_retries > 0 the client automatically re-sends
// IDEMPOTENT requests after a transport failure, reconnecting first with
// exponential backoff + jitter: Explain, SetOption, BeginTxn (an unacked
// Begin's transaction died with the connection) and ExecuteRead — the
// caller's declaration that the statement is read-only. Execute is never
// auto-retried (it may have committed), nothing is retried while a
// transaction is open (the disconnect aborted it server-side; re-running a
// fragment silently would split the transaction), and a CommitTxn whose
// acknowledgement was lost reports "outcome unknown" rather than guessing.
//
// Thread-safety: a NetClient is single-threaded EXCEPT Cancel() and
// Abort(), which may be called from any thread while another thread is
// blocked inside Execute/Explain.

#ifndef SEDNA_NET_CLIENT_H_
#define SEDNA_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "net/protocol.h"
#include "net/transport.h"

namespace sedna::net {

struct ClientOptions {
  // Bounds the TCP connect + Hello handshake of each (re)connect.
  std::chrono::milliseconds connect_timeout{5000};
  // Bounds every socket read inside a request (raise it for deliberately
  // slow statements). A timeout poisons the connection.
  std::chrono::milliseconds read_timeout{30000};
  // Automatic retries of idempotent requests after a transport failure
  // (0 = fail fast, never re-send). Each retry reconnects first.
  uint32_t max_retries = 0;
  // Reconnect backoff: base * 2^attempt, capped, then jittered into
  // [0.5, 1.0) of the computed delay.
  std::chrono::milliseconds backoff_base{50};
  std::chrono::milliseconds backoff_cap{2000};
  uint64_t backoff_seed = 1;  // deterministic jitter for tests
  // Socket factory; null = Transport::Default(). Tests inject a
  // FaultInjectingTransport here.
  Transport* transport = nullptr;
};

/// Counters for observing the resilience machinery (tests assert these).
struct ClientStats {
  uint64_t reconnects = 0;   // successful repair handshakes after the first
  uint64_t retries = 0;      // requests re-sent after a transport failure
  uint64_t backoff_ms = 0;   // total milliseconds slept in backoff
  uint64_t poisonings = 0;   // transport failures that dropped the socket
};

struct ClientResult {
  StatementKind kind = StatementKind::kQuery;
  std::string serialized;          // reassembled ResultChunk payloads
  uint64_t affected = 0;           // update/DDL counts
  uint64_t peak_memory_bytes = 0;  // server-side budget high-water mark
  size_t chunks = 0;               // ResultChunk frames received
};

class NetClient {
 public:
  /// Connects and completes the Hello handshake.
  static StatusOr<std::unique_ptr<NetClient>> Connect(
      const std::string& host, uint16_t port, const ClientOptions& options);
  /// Legacy shape: `timeout` bounds the connect + handshake; no retries.
  static StatusOr<std::unique_ptr<NetClient>> Connect(
      const std::string& host, uint16_t port,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  uint64_t session_id() const { return session_id_; }
  const std::string& banner() const { return banner_; }

  /// Executes one statement, reassembling the chunked reply. Never
  /// auto-retried: the statement may write.
  StatusOr<ClientResult> Execute(const std::string& statement);
  /// Execute for a statement the CALLER declares read-only/idempotent;
  /// auto-retried after transport failures when no transaction is open.
  StatusOr<ClientResult> ExecuteRead(const std::string& statement);
  /// Like Execute but the server runs the statement in profile mode; the
  /// serialized result is the profile text. Idempotent, auto-retried.
  StatusOr<ClientResult> Explain(const std::string& statement);

  /// Sets a session option on the server (timeout_ms, memory_budget,
  /// check_interval, parallel_workers, batch_size, cancel_at_tick).
  /// Idempotent, auto-retried; accepted values are cached and replayed
  /// onto the fresh session after every reconnect.
  Status SetOption(const std::string& key, const std::string& value);

  /// Opens an explicit transaction (auto-retried: an unacknowledged
  /// Begin's transaction was aborted when its connection died).
  Status BeginTxn(bool read_only = false);
  /// Commits the open transaction. NEVER auto-retried — if the connection
  /// fails before the acknowledgement the outcome is unknown and the
  /// returned status says so; reconnect and query to find out.
  Status CommitTxn();
  /// Aborts the open transaction. Not retried: a transport failure already
  /// aborted it server-side (abort-on-disconnect).
  Status AbortTxn();
  /// This client's view of the transaction state (kept in sync with the
  /// TxnOk `in_txn` flag and cleared on every poisoning/reconnect).
  bool in_txn() const { return in_txn_; }

  /// Out of band, thread-safe: asks the server to cancel the statement this
  /// session is executing right now. The blocked Execute then returns the
  /// server's kCancelled error. Best-effort; never poisons.
  Status Cancel();

  /// Orderly shutdown: sends Close, waits for Goodbye, closes the socket.
  Status CloseGracefully();

  /// Drops the connection on the floor (what a crashing client does).
  /// Thread-safe; an in-flight request fails with a transport error.
  void Abort();

  /// Manual repair: fresh socket, handshake, option replay. Clears the
  /// poisoned state. (Requests do this themselves; exposed for tests and
  /// callers that want to pay the reconnect cost eagerly.)
  Status Reconnect();

  void set_read_timeout(std::chrono::milliseconds t) {
    options_.read_timeout = t;
  }

  bool connected() const;
  /// True after a transport failure until the next successful reconnect.
  bool poisoned() const { return poisoned_; }
  const ClientStats& stats() const { return stats_; }

 private:
  NetClient() = default;

  /// Drops the socket and marks the connection unusable (transport-level
  /// failure). The open transaction, if any, died with the connection.
  void Poison();
  void DropSocket();
  /// Reconnects unless a healthy socket is already up.
  Status EnsureConnected();
  Status Handshake();
  std::chrono::milliseconds BackoffDelay(uint32_t attempt);
  void SleepBackoff(uint32_t attempt);

  /// Writes one frame, retrying short writes and injected EAGAIN. On
  /// `poison` (the default), a hard failure poisons the connection —
  /// Cancel passes false so a cross-thread cancel never mutates state.
  Status SendFrame(MessageType type, std::string_view payload,
                   bool poison = true);
  /// Blocks until one whole frame arrives or `timeout` elapses. Timeout,
  /// EOF and decode failures poison.
  Status ReadFrame(Frame* out, std::chrono::milliseconds timeout);

  /// One send + reply cycle on the current socket (no retry logic).
  StatusOr<ClientResult> DoStatement(MessageType type,
                                     const std::string& statement);
  Status DoSetOption(const std::string& key, const std::string& value);
  /// Shared retry loop for Execute/ExecuteRead/Explain.
  StatusOr<ClientResult> RunStatement(MessageType type,
                                      const std::string& statement,
                                      bool idempotent);
  Status TxnControl(MessageType type, std::string_view payload);

  std::string host_;
  uint16_t port_ = 0;
  ClientOptions options_;
  Transport* transport_ = nullptr;

  // The socket is shared-ptr'd so a cross-thread Abort/Cancel can hold it
  // while the main thread swaps it; the pointer itself is guarded by
  // write_mu_, the bytes by the one-request-at-a-time discipline.
  std::shared_ptr<TransportSocket> sock_;
  uint64_t session_id_ = 0;
  std::string banner_;
  std::string inbuf_;
  bool poisoned_ = false;
  bool in_txn_ = false;
  std::map<std::string, std::string> option_cache_;  // replayed on reconnect
  ClientStats stats_;
  Random backoff_rng_{1};
  std::mutex write_mu_;  // serializes SendFrame vs cross-thread Cancel/Abort
};

}  // namespace sedna::net

#endif  // SEDNA_NET_CLIENT_H_
