// Blocking client for the wire protocol in net/protocol.h. One socket, one
// outstanding request at a time (no pipelining) — the shape embedded users
// already know: Execute returns when the final ResultDone/Error arrives,
// with the streamed chunks reassembled.
//
// Thread-safety: a NetClient is single-threaded EXCEPT Cancel(), which may
// be called from any thread while another thread is blocked inside
// Execute/Explain — the cancel frame goes out on the (full-duplex) socket
// under a write mutex and the in-flight call then fails with kCancelled.

#ifndef SEDNA_NET_CLIENT_H_
#define SEDNA_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "net/protocol.h"

namespace sedna::net {

struct ClientResult {
  StatementKind kind = StatementKind::kQuery;
  std::string serialized;          // reassembled ResultChunk payloads
  uint64_t affected = 0;           // update/DDL counts
  uint64_t peak_memory_bytes = 0;  // server-side budget high-water mark
  size_t chunks = 0;               // ResultChunk frames received
};

class NetClient {
 public:
  /// Connects and completes the Hello handshake.
  static StatusOr<std::unique_ptr<NetClient>> Connect(
      const std::string& host, uint16_t port,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  uint64_t session_id() const { return session_id_; }
  const std::string& banner() const { return banner_; }

  /// Executes one statement, reassembling the chunked reply.
  StatusOr<ClientResult> Execute(const std::string& statement);
  /// Like Execute but the server runs the statement in profile mode; the
  /// serialized result is the profile text.
  StatusOr<ClientResult> Explain(const std::string& statement);

  /// Sets a session option on the server (timeout_ms, memory_budget,
  /// check_interval, parallel_workers, batch_size, cancel_at_tick).
  Status SetOption(const std::string& key, const std::string& value);

  /// Out of band, thread-safe: asks the server to cancel the statement this
  /// session is executing right now. The blocked Execute then returns the
  /// server's kCancelled error.
  Status Cancel();

  /// Orderly shutdown: sends Close, waits for Goodbye, closes the socket.
  Status CloseGracefully();

  /// Drops the connection on the floor (what a crashing client does).
  void Abort();

  /// Bounds every socket read inside Execute/Explain/SetOption (default
  /// 30 s; raise it for deliberately slow statements).
  void set_read_timeout(std::chrono::milliseconds t) { read_timeout_ = t; }

  bool connected() const { return fd_ >= 0; }

 private:
  NetClient() = default;

  Status SendFrame(MessageType type, std::string_view payload);
  /// Blocks until one whole frame arrives (or read_timeout_ elapses).
  Status ReadFrame(Frame* out);
  StatusOr<ClientResult> RunStatement(MessageType type,
                                      const std::string& statement);

  int fd_ = -1;
  uint64_t session_id_ = 0;
  std::string banner_;
  std::string inbuf_;
  std::mutex write_mu_;  // serializes SendFrame vs cross-thread Cancel
  std::chrono::milliseconds read_timeout_{30000};
};

}  // namespace sedna::net

#endif  // SEDNA_NET_CLIENT_H_
