#include "net/client.h"

#include <errno.h>
#include <poll.h>

#include <algorithm>
#include <cstring>
#include <thread>

namespace sedna::net {

namespace {

Status TransportError(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

}  // namespace

StatusOr<std::unique_ptr<NetClient>> NetClient::Connect(
    const std::string& host, uint16_t port, const ClientOptions& options) {
  std::unique_ptr<NetClient> client(new NetClient());
  client->host_ = host;
  client->port_ = port;
  client->options_ = options;
  client->transport_ = options.transport != nullptr ? options.transport
                                                    : Transport::Default();
  client->backoff_rng_.Seed(options.backoff_seed);
  SEDNA_RETURN_IF_ERROR(client->Reconnect());
  // The initial connect is not a "repair"; stats count resilience events.
  client->stats_ = ClientStats{};
  return client;
}

StatusOr<std::unique_ptr<NetClient>> NetClient::Connect(
    const std::string& host, uint16_t port, std::chrono::milliseconds timeout) {
  ClientOptions options;
  options.connect_timeout = timeout;
  return Connect(host, port, options);
}

NetClient::~NetClient() { Abort(); }

void NetClient::Abort() {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (sock_ != nullptr) {
    sock_->Close();
    sock_.reset();
  }
}

bool NetClient::connected() const {
  // Main-thread view; a concurrent Abort shows up at the next request.
  return sock_ != nullptr && !poisoned_;
}

void NetClient::DropSocket() {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (sock_ != nullptr) {
    sock_->Close();
    sock_.reset();
  }
  inbuf_.clear();
}

void NetClient::Poison() {
  DropSocket();
  poisoned_ = true;
  ++stats_.poisonings;
}

Status NetClient::EnsureConnected() {
  if (sock_ != nullptr && !poisoned_) return Status::OK();
  return Reconnect();
}

Status NetClient::Reconnect() {
  DropSocket();
  // The old connection's transaction (if any) was aborted server-side the
  // moment the connection died; reflect that before talking again.
  in_txn_ = false;
  const bool repairing = session_id_ != 0;
  StatusOr<std::unique_ptr<TransportSocket>> sock =
      transport_->Connect(host_, port_);
  if (!sock.ok()) {
    poisoned_ = true;
    return sock.status();
  }
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    sock_ = std::move(*sock);
  }
  poisoned_ = false;
  Status st = Handshake();
  if (st.ok()) {
    // A fresh server session starts from default options; replay what this
    // client had successfully set so retried requests run under the same
    // governance knobs.
    for (const auto& [key, value] : option_cache_) {
      st = DoSetOption(key, value);
      if (!st.ok()) break;
    }
  }
  if (!st.ok()) {
    Poison();
    return st;
  }
  if (repairing) ++stats_.reconnects;
  return Status::OK();
}

Status NetClient::Handshake() {
  SEDNA_RETURN_IF_ERROR(SendFrame(MessageType::kHello, EncodeHello()));
  Frame frame;
  SEDNA_RETURN_IF_ERROR(ReadFrame(&frame, options_.connect_timeout));
  if (frame.type == MessageType::kError) return DecodeError(frame.payload);
  if (frame.type != MessageType::kHelloOk) {
    return Status::ProtocolError("expected HelloOk, got type " +
                                 std::to_string(static_cast<unsigned>(
                                     frame.type)));
  }
  return DecodeHelloOk(frame.payload, &session_id_, &banner_);
}

std::chrono::milliseconds NetClient::BackoffDelay(uint32_t attempt) {
  const uint64_t base =
      static_cast<uint64_t>(std::max<int64_t>(1, options_.backoff_base.count()));
  const uint64_t cap =
      static_cast<uint64_t>(std::max<int64_t>(1, options_.backoff_cap.count()));
  uint64_t delay = attempt >= 20 ? cap : base << attempt;
  delay = std::min(delay, cap);
  // Jitter into [0.5, 1.0) of the computed delay so a fleet of clients
  // reconnecting after one server blip does not stampede in lockstep.
  const double jitter = 0.5 + backoff_rng_.NextDouble() * 0.5;
  return std::chrono::milliseconds(
      std::max<uint64_t>(1, static_cast<uint64_t>(delay * jitter)));
}

void NetClient::SleepBackoff(uint32_t attempt) {
  const auto delay = BackoffDelay(attempt);
  stats_.backoff_ms += static_cast<uint64_t>(delay.count());
  std::this_thread::sleep_for(delay);
}

Status NetClient::SendFrame(MessageType type, std::string_view payload,
                            bool poison) {
  std::string frame;
  AppendFrame(&frame, type, payload);
  std::shared_ptr<TransportSocket> sock;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    sock = sock_;
  }
  if (sock == nullptr) return Status::Unavailable("client not connected");
  size_t off = 0;
  while (off < frame.size()) {
    int err = 0;
    ssize_t n = sock->Write(frame.data() + off, frame.size() - off, &err);
    if (n < 0) {
      if (err == EINTR) continue;
      if (err == EAGAIN || err == EWOULDBLOCK) {
        // Injected delay or a genuinely full socket buffer: wait for room.
        pollfd pfd{sock->fd(), POLLOUT, 0};
        (void)::poll(&pfd, 1, 50);
        continue;
      }
      if (poison) Poison();
      return TransportError("send", err);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status NetClient::ReadFrame(Frame* out, std::chrono::milliseconds timeout) {
  std::shared_ptr<TransportSocket> sock;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    sock = sock_;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    size_t consumed = 0;
    Status error;
    DecodeResult r = DecodeFrame(inbuf_, out, &consumed, &error);
    if (r == DecodeResult::kFrame) {
      inbuf_.erase(0, consumed);
      return Status::OK();
    }
    if (r == DecodeResult::kBad) {
      Poison();
      return error;
    }

    if (sock == nullptr) return Status::Unavailable("client not connected");
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      // The reply may still arrive later; reading it as the answer to the
      // NEXT request would desynchronize the stream forever. Fail fast.
      Poison();
      return Status::TimedOut("no reply within " +
                              std::to_string(timeout.count()) + " ms");
    }
    auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfd{sock->fd(), POLLIN, 0};
    int rc = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      Poison();
      return TransportError("poll", err);
    }
    if (rc == 0) continue;  // deadline re-checked at the top
    char buf[64 * 1024];
    int err = 0;
    ssize_t n = sock->Read(buf, sizeof(buf), &err);
    if (n == 0) {
      Poison();
      if (!inbuf_.empty()) {
        return Status::ProtocolError("connection reset mid-frame (" +
                                     std::to_string(inbuf_.size()) +
                                     " bytes of a partial frame buffered)");
      }
      return Status::Unavailable("server closed the connection");
    }
    if (n < 0) {
      if (err == EINTR || err == EAGAIN || err == EWOULDBLOCK) continue;
      Poison();
      return TransportError("recv", err);
    }
    inbuf_.append(buf, static_cast<size_t>(n));
  }
}

StatusOr<ClientResult> NetClient::DoStatement(MessageType type,
                                              const std::string& statement) {
  SEDNA_RETURN_IF_ERROR(SendFrame(type, statement));
  ClientResult result;
  for (;;) {
    Frame frame;
    SEDNA_RETURN_IF_ERROR(ReadFrame(&frame, options_.read_timeout));
    switch (frame.type) {
      case MessageType::kResultChunk:
        result.serialized.append(frame.payload);
        ++result.chunks;
        break;
      case MessageType::kResultDone:
        SEDNA_RETURN_IF_ERROR(DecodeResultDone(frame.payload, &result.kind,
                                               &result.affected,
                                               &result.peak_memory_bytes));
        return result;
      case MessageType::kError:
        return DecodeError(frame.payload);
      case MessageType::kGoodbye:
        Poison();
        return Status::Unavailable("server said goodbye mid-statement");
      default:
        Poison();
        return Status::ProtocolError(
            "unexpected reply type " +
            std::to_string(static_cast<unsigned>(frame.type)));
    }
  }
}

StatusOr<ClientResult> NetClient::RunStatement(MessageType type,
                                               const std::string& statement,
                                               bool idempotent) {
  for (uint32_t attempt = 0;; ++attempt) {
    const bool was_in_txn = in_txn_;
    bool sent = false;
    Status st = EnsureConnected();
    if (st.ok()) {
      sent = true;
      StatusOr<ClientResult> result = DoStatement(type, statement);
      if (result.ok()) return result;
      st = result.status();
      if (!poisoned_) return result;  // clean server-reported error
      in_txn_ = false;  // the dead connection's transaction is aborted
      if (was_in_txn) {
        return Status(st.code(),
                      st.message() +
                          " (connection failed mid-transaction; the "
                          "transaction was aborted server-side)");
      }
    }
    // A request that was never sent is safe to re-send regardless of
    // idempotency; one that went out re-runs only if the caller declared
    // it idempotent — and never when it belonged to a transaction.
    const bool can_retry = (!sent || idempotent) && !was_in_txn &&
                           attempt < options_.max_retries;
    if (!can_retry) return st;
    ++stats_.retries;
    SleepBackoff(attempt);
  }
}

StatusOr<ClientResult> NetClient::Execute(const std::string& statement) {
  return RunStatement(MessageType::kExecute, statement, /*idempotent=*/false);
}

StatusOr<ClientResult> NetClient::ExecuteRead(const std::string& statement) {
  return RunStatement(MessageType::kExecute, statement, /*idempotent=*/true);
}

StatusOr<ClientResult> NetClient::Explain(const std::string& statement) {
  return RunStatement(MessageType::kExplain, statement, /*idempotent=*/true);
}

Status NetClient::DoSetOption(const std::string& key,
                              const std::string& value) {
  SEDNA_RETURN_IF_ERROR(
      SendFrame(MessageType::kSetOption, EncodeSetOption(key, value)));
  Frame frame;
  SEDNA_RETURN_IF_ERROR(ReadFrame(&frame, options_.read_timeout));
  if (frame.type == MessageType::kOptionOk) return Status::OK();
  if (frame.type == MessageType::kError) return DecodeError(frame.payload);
  Poison();
  return Status::ProtocolError("unexpected SetOption reply type " +
                               std::to_string(static_cast<unsigned>(
                                   frame.type)));
}

Status NetClient::SetOption(const std::string& key, const std::string& value) {
  for (uint32_t attempt = 0;; ++attempt) {
    const bool was_in_txn = in_txn_;
    Status st = EnsureConnected();
    if (st.ok()) {
      st = DoSetOption(key, value);
      if (st.ok()) {
        option_cache_[key] = value;
        return st;
      }
      if (!poisoned_) return st;  // the server rejected the option
      in_txn_ = false;
    }
    const bool can_retry = !was_in_txn && attempt < options_.max_retries;
    if (!can_retry) return st;
    ++stats_.retries;
    SleepBackoff(attempt);
  }
}

Status NetClient::TxnControl(MessageType type, std::string_view payload) {
  SEDNA_RETURN_IF_ERROR(SendFrame(type, payload));
  Frame frame;
  SEDNA_RETURN_IF_ERROR(ReadFrame(&frame, options_.read_timeout));
  if (frame.type == MessageType::kTxnOk) {
    bool in_txn = false;
    SEDNA_RETURN_IF_ERROR(DecodeTxnOk(frame.payload, &in_txn));
    in_txn_ = in_txn;
    return Status::OK();
  }
  if (frame.type == MessageType::kError) {
    Status st = DecodeError(frame.payload);
    // Session::Commit/Abort close the transaction on every path (including
    // errors) and a server-side idle abort already ended it; only a failed
    // Begin leaves the state as it was.
    if (type != MessageType::kBegin) in_txn_ = false;
    return st;
  }
  Poison();
  return Status::ProtocolError("unexpected transaction-control reply type " +
                               std::to_string(static_cast<unsigned>(
                                   frame.type)));
}

Status NetClient::BeginTxn(bool read_only) {
  const std::string payload = EncodeBegin(read_only);
  for (uint32_t attempt = 0;; ++attempt) {
    Status st = EnsureConnected();
    if (st.ok()) {
      st = TxnControl(MessageType::kBegin, payload);
      if (st.ok()) return st;
      if (!poisoned_) return st;
      // An unacknowledged Begin's transaction died with the connection, so
      // re-sending it is safe.
      in_txn_ = false;
    }
    if (attempt >= options_.max_retries) return st;
    ++stats_.retries;
    SleepBackoff(attempt);
  }
}

Status NetClient::CommitTxn() {
  Status st = EnsureConnected();
  if (!st.ok()) return st;
  st = TxnControl(MessageType::kCommitTxn, "");
  if (!st.ok() && poisoned_) {
    // The commit may or may not have landed before the connection failed.
    // Never guess: surface the ambiguity and let the caller probe.
    in_txn_ = false;
    return Status(st.code(), "commit outcome unknown (connection failed "
                             "before the acknowledgement): " +
                                 st.message());
  }
  return st;
}

Status NetClient::AbortTxn() {
  Status st = EnsureConnected();
  if (!st.ok()) return st;
  st = TxnControl(MessageType::kAbortTxn, "");
  if (!st.ok() && poisoned_) {
    // Abort-on-disconnect already did the job; the error reports only that
    // the connection is gone.
    in_txn_ = false;
  }
  return st;
}

Status NetClient::Cancel() {
  return SendFrame(MessageType::kCancel, "", /*poison=*/false);
}

Status NetClient::CloseGracefully() {
  SEDNA_RETURN_IF_ERROR(SendFrame(MessageType::kClose, ""));
  in_txn_ = false;  // the server aborts any open transaction on close
  for (;;) {
    Frame frame;
    Status st = ReadFrame(&frame, options_.read_timeout);
    if (!st.ok()) {
      // The server may close right after Goodbye hits our buffer; treat a
      // clean EOF after Close as a successful goodbye.
      Abort();
      return st.code() == StatusCode::kUnavailable ? Status::OK() : st;
    }
    if (frame.type == MessageType::kGoodbye) {
      Abort();
      return Status::OK();
    }
    // Late replies to earlier traffic (e.g. a cancel that lost the race)
    // are drained and dropped.
  }
}

}  // namespace sedna::net
