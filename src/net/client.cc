#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace sedna::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<std::unique_ptr<NetClient>> NetClient::Connect(
    const std::string& host, uint16_t port, std::chrono::milliseconds timeout) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::unique_ptr<NetClient> client(new NetClient());
  client->fd_ = fd;
  client->read_timeout_ = timeout;

  Status st = client->SendFrame(MessageType::kHello, EncodeHello());
  if (!st.ok()) return st;
  Frame frame;
  st = client->ReadFrame(&frame);
  if (!st.ok()) return st;
  if (frame.type == MessageType::kError) return DecodeError(frame.payload);
  if (frame.type != MessageType::kHelloOk) {
    return Status::ProtocolError("expected HelloOk, got type " +
                                 std::to_string(static_cast<unsigned>(
                                     frame.type)));
  }
  SEDNA_RETURN_IF_ERROR(DecodeHelloOk(frame.payload, &client->session_id_,
                                      &client->banner_));
  client->read_timeout_ = std::chrono::milliseconds(30000);
  return client;
}

NetClient::~NetClient() { Abort(); }

void NetClient::Abort() {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::SendFrame(MessageType type, std::string_view payload) {
  std::string frame;
  AppendFrame(&frame, type, payload);
  std::lock_guard<std::mutex> lock(write_mu_);
  if (fd_ < 0) return Status::Unavailable("client not connected");
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status NetClient::ReadFrame(Frame* out) {
  const auto deadline = std::chrono::steady_clock::now() + read_timeout_;
  for (;;) {
    size_t consumed = 0;
    Status error;
    DecodeResult r = DecodeFrame(inbuf_, out, &consumed, &error);
    if (r == DecodeResult::kFrame) {
      inbuf_.erase(0, consumed);
      return Status::OK();
    }
    if (r == DecodeResult::kBad) return error;

    if (fd_ < 0) return Status::Unavailable("client not connected");
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::TimedOut("no reply within " +
                             std::to_string(read_timeout_.count()) + " ms");
    }
    auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) continue;  // deadline re-checked at the top
    char buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("recv");
    }
    inbuf_.append(buf, static_cast<size_t>(n));
  }
}

StatusOr<ClientResult> NetClient::RunStatement(MessageType type,
                                               const std::string& statement) {
  SEDNA_RETURN_IF_ERROR(SendFrame(type, statement));
  ClientResult result;
  for (;;) {
    Frame frame;
    SEDNA_RETURN_IF_ERROR(ReadFrame(&frame));
    switch (frame.type) {
      case MessageType::kResultChunk:
        result.serialized.append(frame.payload);
        ++result.chunks;
        break;
      case MessageType::kResultDone:
        SEDNA_RETURN_IF_ERROR(DecodeResultDone(frame.payload, &result.kind,
                                               &result.affected,
                                               &result.peak_memory_bytes));
        return result;
      case MessageType::kError:
        return DecodeError(frame.payload);
      case MessageType::kGoodbye:
        return Status::Unavailable("server said goodbye mid-statement");
      default:
        return Status::ProtocolError(
            "unexpected reply type " +
            std::to_string(static_cast<unsigned>(frame.type)));
    }
  }
}

StatusOr<ClientResult> NetClient::Execute(const std::string& statement) {
  return RunStatement(MessageType::kExecute, statement);
}

StatusOr<ClientResult> NetClient::Explain(const std::string& statement) {
  return RunStatement(MessageType::kExplain, statement);
}

Status NetClient::SetOption(const std::string& key, const std::string& value) {
  SEDNA_RETURN_IF_ERROR(
      SendFrame(MessageType::kSetOption, EncodeSetOption(key, value)));
  Frame frame;
  SEDNA_RETURN_IF_ERROR(ReadFrame(&frame));
  if (frame.type == MessageType::kOptionOk) return Status::OK();
  if (frame.type == MessageType::kError) return DecodeError(frame.payload);
  return Status::ProtocolError("unexpected SetOption reply type " +
                               std::to_string(static_cast<unsigned>(
                                   frame.type)));
}

Status NetClient::Cancel() { return SendFrame(MessageType::kCancel, ""); }

Status NetClient::CloseGracefully() {
  SEDNA_RETURN_IF_ERROR(SendFrame(MessageType::kClose, ""));
  for (;;) {
    Frame frame;
    Status st = ReadFrame(&frame);
    if (!st.ok()) {
      // The server may close right after Goodbye hits our buffer; treat a
      // clean EOF after Close as a successful goodbye.
      Abort();
      return st.code() == StatusCode::kUnavailable ? Status::OK() : st;
    }
    if (frame.type == MessageType::kGoodbye) {
      Abort();
      return Status::OK();
    }
    // Late replies to earlier traffic (e.g. a cancel that lost the race)
    // are drained and dropped.
  }
}

}  // namespace sedna::net
