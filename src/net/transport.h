// Transport seam for the network front end — the socket-level sibling of
// common/vfs.h. Every byte the server or NetClient moves over TCP goes
// through a TransportSocket, so tests can interpose a deterministic
// FaultInjectingTransport and drive the wire path through the failure
// domain the Vfs seam cannot reach: short reads and writes, delayed bytes
// (spurious EAGAIN), mid-frame connection resets, and crash-at-op kill
// points on either endpoint.
//
// The seam sits below framing: a TransportSocket is a raw byte stream with
// POSIX-shaped Read/Write (count or -1 with an errno-style code), plus the
// underlying fd for poll(2) registration. Blocking behaviour is a property
// of the wrapped fd — the server adopts non-blocking accepted sockets, the
// client connects blocking ones — so one implementation serves both sides.

#ifndef SEDNA_NET_TRANSPORT_H_
#define SEDNA_NET_TRANSPORT_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace sedna::net {

/// One established byte stream. Not thread-safe; each socket is owned by
/// one endpoint (the server's event loop or a NetClient).
class TransportSocket {
 public:
  virtual ~TransportSocket() = default;

  /// Mirrors recv(2): returns bytes read (>0), 0 on orderly EOF, or -1
  /// with `*err` holding an errno value (EAGAIN/EINTR are retryable).
  virtual ssize_t Read(char* buf, size_t len, int* err) = 0;

  /// Mirrors send(2) with MSG_NOSIGNAL: returns bytes written (possibly a
  /// prefix), or -1 with `*err` holding an errno value.
  virtual ssize_t Write(const char* buf, size_t len, int* err) = 0;

  /// The underlying descriptor, for poll(2). Stays valid until Close().
  virtual int fd() const = 0;

  /// Closes the descriptor. Idempotent; the destructor also closes.
  virtual void Close() = 0;
};

/// Factory for transport sockets: outbound connections (client side) and
/// adopted accepted descriptors (server side).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Connects a blocking TCP socket to host:port (TCP_NODELAY set).
  virtual StatusOr<std::unique_ptr<TransportSocket>> Connect(
      const std::string& host, uint16_t port) = 0;

  /// Wraps an already-accepted descriptor (ownership transfers).
  virtual std::unique_ptr<TransportSocket> Adopt(int fd) = 0;

  /// Process-wide plain-TCP transport.
  static Transport* Default();
};

// --- fault injection --------------------------------------------------------

/// Deterministic fault plan, applied per socket. Probabilistic faults draw
/// from a per-socket Random seeded with (seed, socket index in creation
/// order), so a single-connection run replays exactly; kill points count
/// per socket, so "die at op N" is well-defined under concurrency.
struct TransportFaultOptions {
  uint64_t seed = 1;

  // Probabilistic storms (0 disables).
  double short_read_p = 0;   // cap a read at 1..len-1 bytes
  double short_write_p = 0;  // accept only a prefix of a write
  double delay_p = 0;        // inject a spurious EAGAIN before a read/write

  // Kill points (0 disables). "Dying" shuts the stream down both ways —
  // the local endpoint sees ECONNRESET/EPIPE, the peer sees EOF — while
  // keeping the descriptor open until Close(), so no fd-reuse hazards.
  uint64_t kill_at_op = 0;        // die on this socket's Nth Read/Write call
  uint64_t kill_after_bytes = 0;  // die once N bytes have crossed (mid-frame)

  // Fail the first N Connect() calls with kUnavailable (transport-wide),
  // exercising the client's reconnect backoff.
  uint32_t fail_connects = 0;
};

/// Wraps another transport (default: Transport::Default()) and injects the
/// faults described by TransportFaultOptions. Thread-safe: sockets carry
/// their own state; transport-wide counters are atomic.
class FaultInjectingTransport : public Transport {
 public:
  explicit FaultInjectingTransport(const TransportFaultOptions& options,
                                   Transport* base = nullptr);

  StatusOr<std::unique_ptr<TransportSocket>> Connect(const std::string& host,
                                                     uint16_t port) override;
  std::unique_ptr<TransportSocket> Adopt(int fd) override;

  /// Re-arms (or disarms with 0) the kill-at-op point at runtime, for
  /// existing and future sockets alike. An already-active socket whose op
  /// counter has passed the new value dies on its next operation — "kill
  /// whatever this connection does next" for deterministic tests.
  void set_kill_at_op(uint64_t op) {
    kill_at_op_.store(op, std::memory_order_relaxed);
  }
  /// Re-arms the injected-connect-failure budget at runtime.
  void set_fail_connects(uint32_t n) {
    connects_to_fail_.store(n, std::memory_order_relaxed);
  }

  uint64_t sockets_created() const {
    return next_socket_index_.load(std::memory_order_relaxed);
  }
  /// Faults actually delivered (short reads/writes, delays, kills,
  /// connect failures).
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }
  uint64_t kills() const { return kills_.load(std::memory_order_relaxed); }

 private:
  class FaultSocket;

  void CountFault();
  void CountKill();

  TransportFaultOptions options_;
  Transport* base_;
  std::atomic<uint64_t> kill_at_op_{0};  // live copy of options_.kill_at_op
  std::atomic<uint64_t> next_socket_index_{0};
  std::atomic<uint32_t> connects_to_fail_;
  std::atomic<uint64_t> faults_injected_{0};
  std::atomic<uint64_t> kills_{0};
};

}  // namespace sedna::net

#endif  // SEDNA_NET_TRANSPORT_H_
