#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"

namespace sedna::net {

namespace {

constexpr std::chrono::milliseconds kGovernedSlice{5};

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Parses a non-negative integer option value ("123"); full-string match.
bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 19) return false;
  uint64_t v = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') return false;
    v = v * 10 + static_cast<uint64_t>(ch - '0');
  }
  *out = v;
  return true;
}

}  // namespace

struct Server::NetMetrics {
  Counter* accepted;
  Counter* refused;
  Counter* closed;
  Counter* bytes_read;
  Counter* bytes_written;
  Counter* statements;
  Counter* statement_errors;
  Counter* drain_rejected;
  Counter* protocol_errors;
  Counter* cancels;
  Counter* options_set;
  Counter* result_chunks;
  Counter* txn_begins;
  Counter* txn_commits;
  Counter* txn_aborts;            // client-requested AbortTxn
  Counter* txn_idle_aborts;       // aborted by the txn idle timer
  Counter* txn_disconnect_aborts; // aborted because the connection died
  Counter* txn_drain_aborts;      // aborted by Shutdown
  Counter* idle_closed;           // connections reaped by the idle timer
  Gauge* active_connections;
  Gauge* active_statements;
  Gauge* queued_statements;
  Histogram* request_ns;

  static const NetMetrics* Get() {
    static const NetMetrics* m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return new NetMetrics{reg.counter("net.connections_accepted"),
                            reg.counter("net.connections_refused"),
                            reg.counter("net.connections_closed"),
                            reg.counter("net.bytes_read"),
                            reg.counter("net.bytes_written"),
                            reg.counter("net.statements"),
                            reg.counter("net.statement_errors"),
                            reg.counter("net.drain_rejected"),
                            reg.counter("net.protocol_errors"),
                            reg.counter("net.cancels"),
                            reg.counter("net.options_set"),
                            reg.counter("net.result_chunks"),
                            reg.counter("net.txn_begins"),
                            reg.counter("net.txn_commits"),
                            reg.counter("net.txn_aborts"),
                            reg.counter("net.txn_idle_aborts"),
                            reg.counter("net.txn_disconnect_aborts"),
                            reg.counter("net.txn_drain_aborts"),
                            reg.counter("net.idle_closed"),
                            reg.gauge("net.active_connections"),
                            reg.gauge("net.active_statements"),
                            reg.gauge("net.queued_statements"),
                            reg.histogram("net.request_ns")};
    }();
    return m;
  }
};

StatusOr<std::unique_ptr<Server>> Server::Start(Database* db,
                                                const ServerOptions& options) {
  std::unique_ptr<Server> server(new Server(db, options));
  SEDNA_RETURN_IF_ERROR(server->Init());
  return server;
}

Status Server::Init() {
  metrics_ = NetMetrics::Get();
  transport_ =
      options_.transport != nullptr ? options_.transport : Transport::Default();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Errno("bind " + options_.host + ":" +
                      std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 512) < 0) {
    Status st = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (!SetNonBlocking(listen_fd_)) {
    Status st = Errno("fcntl(listener, O_NONBLOCK)");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) < 0) {
    Status st = Errno("pipe2");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  loop_thread_ = std::thread([this] { EventLoop(); });
  uint32_t n = options_.worker_threads == 0 ? 1 : options_.worker_threads;
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  return Status::OK();
}

Server::~Server() {
  if (!shutdown_started_.load(std::memory_order_acquire)) {
    Status st = Shutdown(options_.drain_grace);
    if (!st.ok()) {
      SEDNA_LOG(kError) << "server shutdown failed: " << st.ToString();
    }
  }
}

void Server::WakeLoop() {
  char b = 'w';
  // EAGAIN means a wake-up is already pending — exactly what we want.
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

size_t Server::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void Server::EventLoop() {
  std::vector<pollfd> fds;
  std::vector<ConnPtr> polled;
  auto last_sweep = std::chrono::steady_clock::now();
  while (!loop_stop_.load(std::memory_order_acquire)) {
    ReapDoomed();

    const auto now = std::chrono::steady_clock::now();
    if (now - last_sweep >= std::chrono::milliseconds(50)) {
      SweepIdle(now);
      last_sweep = now;
    }

    const bool accepting = accepting_.load(std::memory_order_acquire);
    fds.clear();
    polled.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    if (accepting) fds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [id, c] : conns_) {
        short events = 0;
        if (!c->reading_disabled) events |= POLLIN;
        {
          std::lock_guard<std::mutex> cl(c->mu);
          if (!c->out.empty()) events |= POLLOUT;
        }
        fds.push_back({c->sock->fd(), events, 0});
        polled.push_back(c);
      }
    }

    int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    if (rc < 0) {
      if (errno == EINTR) continue;
      SEDNA_LOG(kError) << "poll failed: " << std::strerror(errno);
      break;
    }

    size_t idx = 0;
    if (fds[idx].revents & POLLIN) {
      char buf[256];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    ++idx;
    if (accepting) {
      if (fds[idx].revents & POLLIN) AcceptNew();
      ++idx;
    }
    for (size_t i = 0; i < polled.size(); ++i) {
      const ConnPtr& c = polled[i];
      short re = fds[idx + i].revents;
      {
        std::lock_guard<std::mutex> cl(c->mu);
        if (c->closed) continue;  // reaped this round already
      }
      if (re & (POLLERR | POLLNVAL)) {
        CloseConn(c);
        continue;
      }
      if (re & POLLOUT) FlushWrites(c);
      if (re & (POLLIN | POLLHUP)) {
        // FlushWrites may have closed the connection (send error or
        // close_after_flush); recv()ing then would touch a freed fd number
        // that another thread may already have reused.
        bool closed;
        {
          std::lock_guard<std::mutex> cl(c->mu);
          closed = c->closed;
        }
        if (!closed) HandleReadable(c);
      }
    }
  }

  // Loop exit: close everything still open.
  std::vector<ConnPtr> leftover;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, c] : conns_) leftover.push_back(c);
  }
  for (const ConnPtr& c : leftover) CloseConn(c);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::AcceptNew() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN / transient
    bool refuse = draining_.load(std::memory_order_acquire);
    if (!refuse) {
      std::lock_guard<std::mutex> lock(conns_mu_);
      refuse = conns_.size() >= options_.max_connections;
    }
    if (refuse) {
      ::close(fd);
      metrics_->refused->Add();
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.so_sndbuf > 0) {
      int sz = options_.so_sndbuf;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
    }
    auto c = std::make_shared<Conn>();
    c->sock = transport_->Adopt(fd);
    c->session = db_->Connect();
    c->last_activity = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      c->id = next_conn_id_++;
      conns_[c->id] = c;
      metrics_->active_connections->Set(static_cast<int64_t>(conns_.size()));
    }
    metrics_->accepted->Add();
  }
}

void Server::HandleReadable(const ConnPtr& c) {
  char buf[64 * 1024];
  int err = 0;
  ssize_t n = c->sock->Read(buf, sizeof(buf), &err);
  if (n == 0) {
    CloseConn(c);
    return;
  }
  if (n < 0) {
    if (err == EAGAIN || err == EWOULDBLOCK || err == EINTR) return;
    CloseConn(c);
    return;
  }
  metrics_->bytes_read->Add(static_cast<uint64_t>(n));
  c->inbuf.append(buf, static_cast<size_t>(n));
  {
    std::lock_guard<std::mutex> cl(c->mu);
    c->last_activity = std::chrono::steady_clock::now();
  }

  while (!c->reading_disabled) {
    Frame frame;
    size_t consumed = 0;
    Status error;
    DecodeResult r = DecodeFrame(c->inbuf, &frame, &consumed, &error);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kBad) {
      ProtocolErrorClose(c, error);
      return;
    }
    c->inbuf.erase(0, consumed);
    HandleFrame(c, std::move(frame));
    bool dead;
    {
      std::lock_guard<std::mutex> cl(c->mu);
      dead = c->closed;
    }
    if (dead) return;
  }
}

void Server::HandleFrame(const ConnPtr& c, Frame frame) {
  if (!IsClientMessageType(static_cast<uint8_t>(frame.type))) {
    ProtocolErrorClose(
        c, Status::ProtocolError(
               "unknown client message type " +
               std::to_string(static_cast<unsigned>(frame.type))));
    return;
  }
  if (!c->hello_done) {
    if (frame.type != MessageType::kHello) {
      ProtocolErrorClose(
          c, Status::ProtocolError("expected Hello as the first frame"));
      return;
    }
    Status st = DecodeHello(frame.payload);
    if (!st.ok()) {
      ProtocolErrorClose(c, st);
      return;
    }
    c->hello_done = true;
    EnqueueFromLoop(c, MessageType::kHelloOk,
                    EncodeHelloOk(c->session->session_id(),
                                  "sedna-repro/net 1 (pid " +
                                      std::to_string(::getpid()) + ")"));
    return;
  }

  switch (frame.type) {
    case MessageType::kHello:
      ProtocolErrorClose(c, Status::ProtocolError("duplicate Hello"));
      return;
    case MessageType::kCancel:
      // Out of band: never queued, never answered. Trips the token of the
      // statement executing right now; the statement's own reply carries
      // kCancelled.
      metrics_->cancels->Add();
      c->session->Cancel();
      return;
    case MessageType::kExecute:
    case MessageType::kExplain:
    case MessageType::kSetOption:
    case MessageType::kClose:
    case MessageType::kBegin:
    case MessageType::kCommitTxn:
    case MessageType::kAbortTxn: {
      WorkItem item;
      item.type = frame.type;
      item.enqueued = std::chrono::steady_clock::now();
      item.drain_reject = draining_.load(std::memory_order_acquire);
      if (frame.type == MessageType::kSetOption) {
        Status st = DecodeSetOption(frame.payload, &item.text, &item.value);
        if (!st.ok()) {
          ProtocolErrorClose(c, st);
          return;
        }
      } else if (frame.type == MessageType::kBegin) {
        Status st = DecodeBegin(frame.payload, &item.begin_read_only);
        if (!st.ok()) {
          ProtocolErrorClose(c, st);
          return;
        }
      } else if (frame.type == MessageType::kCommitTxn ||
                 frame.type == MessageType::kAbortTxn) {
        if (!frame.payload.empty()) {
          ProtocolErrorClose(c, Status::ProtocolError(
                                    "transaction-control frame carries an "
                                    "unexpected payload"));
          return;
        }
      } else {
        item.text = std::move(frame.payload);
      }
      if (item.counts_inflight()) {
        inflight_statements_.fetch_add(1, std::memory_order_acq_rel);
        if (item.is_statement()) metrics_->queued_statements->Add(1);
      }
      bool overflow = false;
      {
        std::lock_guard<std::mutex> cl(c->mu);
        c->pending.push_back(std::move(item));
        overflow = c->pending.size() > options_.max_pipelined_statements;
      }
      if (overflow) {
        ProtocolErrorClose(
            c, Status::ProtocolError(
                   "more than " +
                   std::to_string(options_.max_pipelined_statements) +
                   " pipelined requests"));
        return;
      }
      ScheduleConn(c);
      return;
    }
    default:
      return;  // unreachable; IsClientMessageType filtered
  }
}

void Server::ScheduleConn(const ConnPtr& c) {
  {
    std::lock_guard<std::mutex> cl(c->mu);
    if (c->closed || c->scheduled || c->running || c->pending.empty()) return;
    c->scheduled = true;
  }
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    ready_.push_back(c);
  }
  work_cv_.notify_one();
}

void Server::EnqueueFromLoop(const ConnPtr& c, MessageType type,
                             std::string_view payload) {
  std::string frame;
  AppendFrame(&frame, type, payload);
  std::lock_guard<std::mutex> cl(c->mu);
  if (c->closed) return;
  c->out_bytes += frame.size();
  c->out.push_back(std::move(frame));
  // The loop polls POLLOUT next round; no wake needed from the loop itself.
}

void Server::ProtocolErrorClose(const ConnPtr& c, const Status& error) {
  metrics_->protocol_errors->Add();
  EnqueueFromLoop(c, MessageType::kError, EncodeError(error));
  c->reading_disabled = true;
  bool flush_pending;
  {
    std::lock_guard<std::mutex> cl(c->mu);
    c->close_after_flush = true;
    flush_pending = !c->out.empty();
  }
  // Try to push the error out now; otherwise POLLOUT finishes the job.
  if (flush_pending) FlushWrites(c);
}

void Server::FlushWrites(const ConnPtr& c) {
  std::unique_lock<std::mutex> cl(c->mu);
  if (c->closed) return;
  while (!c->out.empty()) {
    const std::string& front = c->out.front();
    // Non-blocking (accepted with SOCK_NONBLOCK): a full socket buffer
    // surfaces as EAGAIN and POLLOUT finishes the job next round.
    int err = 0;
    ssize_t n = c->sock->Write(front.data() + c->out_offset,
                               front.size() - c->out_offset, &err);
    if (n < 0) {
      if (err == EAGAIN || err == EWOULDBLOCK || err == EINTR) break;
      cl.unlock();
      CloseConn(c);
      return;
    }
    metrics_->bytes_written->Add(static_cast<uint64_t>(n));
    c->out_offset += static_cast<size_t>(n);
    c->out_bytes -= static_cast<size_t>(n);
    if (c->out_offset == front.size()) {
      c->out.pop_front();
      c->out_offset = 0;
    }
  }
  if (c->out_bytes < options_.write_buffer_soft_cap) {
    c->write_cv.notify_all();
  }
  bool close_now = c->out.empty() && c->close_after_flush;
  cl.unlock();
  if (close_now) CloseConn(c);
}

void Server::CloseConn(const ConnPtr& c) {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (conns_.erase(c->id) == 0) return;  // already closed
    metrics_->active_connections->Set(static_cast<int64_t>(conns_.size()));
  }
  size_t dropped_statements = 0;
  size_t dropped_inflight = 0;
  bool abort_txn = false;
  {
    std::lock_guard<std::mutex> cl(c->mu);
    c->closed = true;
    c->out.clear();
    c->out_bytes = 0;
    c->out_offset = 0;
    for (const WorkItem& item : c->pending) {
      if (item.is_statement()) ++dropped_statements;
      if (item.counts_inflight()) ++dropped_inflight;
    }
    c->pending.clear();
    c->write_cv.notify_all();
    // Crash-honest lifecycle: a dead connection's open transaction must
    // abort. If a worker is mid-item it observes `closed` in its epilogue
    // (under this mutex) and aborts the orphan itself; otherwise no worker
    // can start again (ProcessOne re-checks `closed` before setting
    // `running`), so this thread owns the abort. Exactly one side fires.
    abort_txn = !c->running;
  }
  if (dropped_inflight > 0) {
    inflight_statements_.fetch_sub(dropped_inflight,
                                   std::memory_order_acq_rel);
  }
  if (dropped_statements > 0) {
    metrics_->queued_statements->Add(
        -static_cast<int64_t>(dropped_statements));
  }
  // Abort whatever the connection's session is executing; the worker's
  // pending reply lands in the cleared (closed) queue and is dropped.
  c->session->Cancel();
  if (abort_txn) AbortAbandonedTxn(c);
  c->sock->Close();
  metrics_->closed->Add();
}

void Server::AbortAbandonedTxn(const ConnPtr& c) {
  if (!c->session->in_transaction()) return;
  Status st = c->session->Abort();
  if (!st.ok()) {
    SEDNA_LOG(kError) << "abandoned-transaction abort failed: "
                      << st.ToString();
  }
  if (draining_.load(std::memory_order_acquire)) {
    metrics_->txn_drain_aborts->Add();
  } else {
    metrics_->txn_disconnect_aborts->Add();
  }
}

void Server::SweepIdle(std::chrono::steady_clock::time_point now) {
  const bool reap = options_.idle_timeout.count() > 0;
  const bool txn_sweep = options_.txn_idle_timeout.count() > 0;
  if (!reap && !txn_sweep) return;
  std::vector<ConnPtr> snapshot;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    snapshot.reserve(conns_.size());
    for (auto& [id, c] : conns_) snapshot.push_back(c);
  }
  for (const ConnPtr& c : snapshot) {
    bool close_it = false;
    bool abort_txn = false;
    {
      std::lock_guard<std::mutex> cl(c->mu);
      // Only truly idle connections qualify: nothing queued, nothing
      // running. A long statement never counts as idleness.
      if (c->closed || c->running || !c->pending.empty()) continue;
      const auto idle = now - c->last_activity;
      if (reap && idle >= options_.idle_timeout) {
        close_it = true;
      } else if (txn_sweep && idle >= options_.txn_idle_timeout &&
                 c->session->in_transaction()) {
        // The loop is the only frame source and no worker is active, so
        // the session is quiescent and may be aborted from this thread.
        // The flag makes later statements fail kAborted (never silent
        // autocommit); resetting the clock makes the abort fire once.
        c->txn_idle_aborted = true;
        c->last_activity = now;
        abort_txn = true;
      }
    }
    if (close_it) {
      metrics_->idle_closed->Add();
      CloseConn(c);
    } else if (abort_txn) {
      Status st = c->session->Abort();
      if (!st.ok()) {
        SEDNA_LOG(kError) << "idle-transaction abort failed: "
                          << st.ToString();
      }
      metrics_->txn_idle_aborts->Add();
    }
  }
}

void Server::ReapDoomed() {
  std::vector<ConnPtr> doomed;
  {
    std::lock_guard<std::mutex> lock(doomed_mu_);
    doomed.swap(doomed_);
  }
  for (const ConnPtr& c : doomed) CloseConn(c);
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

void Server::WorkerMain() {
  for (;;) {
    ConnPtr c;
    {
      std::unique_lock<std::mutex> lock(sched_mu_);
      work_cv_.wait(lock, [&] { return workers_stop_ || !ready_.empty(); });
      if (ready_.empty()) {
        if (workers_stop_) return;
        continue;
      }
      c = std::move(ready_.front());
      ready_.pop_front();
    }
    ProcessOne(c);
  }
}

void Server::ProcessOne(const ConnPtr& c) {
  WorkItem item;
  {
    std::lock_guard<std::mutex> cl(c->mu);
    c->scheduled = false;
    if (c->closed || c->running || c->pending.empty()) return;
    item = std::move(c->pending.front());
    c->pending.pop_front();
    c->running = true;
  }

  switch (item.type) {
    case MessageType::kExecute:
    case MessageType::kExplain:
      ExecuteStatement(c, item);
      break;
    case MessageType::kSetOption:
      ApplyOption(c, item);
      break;
    case MessageType::kBegin:
    case MessageType::kCommitTxn:
    case MessageType::kAbortTxn:
      HandleTxnControl(c, item);
      break;
    case MessageType::kClose: {
      std::string frame;
      AppendFrame(&frame, MessageType::kGoodbye, "");
      {
        std::lock_guard<std::mutex> cl(c->mu);
        if (!c->closed) {
          c->out_bytes += frame.size();
          c->out.push_back(std::move(frame));
          c->close_after_flush = true;
        }
      }
      WakeLoop();
      break;
    }
    default:
      break;
  }

  bool requeue = false;
  bool abort_orphan = false;
  {
    std::lock_guard<std::mutex> cl(c->mu);
    c->running = false;
    c->last_activity = std::chrono::steady_clock::now();
    if (c->closed) {
      // CloseConn ran while this item executed and left the orphaned
      // transaction to us (see the handoff comment there).
      abort_orphan = true;
    } else if (!c->pending.empty() && !c->scheduled) {
      c->scheduled = true;
      requeue = true;
    }
  }
  if (abort_orphan) AbortAbandonedTxn(c);
  if (requeue) {
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      ready_.push_back(c);
    }
    work_cv_.notify_one();
  }
}

Status Server::BlockingEnqueue(const ConnPtr& c, std::string frame) {
  const auto stall_deadline =
      std::chrono::steady_clock::now() + options_.write_stall_timeout;
  std::unique_lock<std::mutex> cl(c->mu);
  for (;;) {
    if (c->closed || c->doomed) {
      return Status::Unavailable("connection closed");
    }
    if (c->out_bytes < options_.write_buffer_soft_cap) break;
    if (draining_hard_.load(std::memory_order_acquire)) {
      return Status::Unavailable("server shutting down");
    }
    std::shared_ptr<CancellationToken> token =
        c->session->current_cancellation();
    if (token != nullptr && token->cancelled()) {
      return Status::Cancelled("statement cancelled while streaming results");
    }
    if (std::chrono::steady_clock::now() >= stall_deadline) {
      // The client stopped reading; free the worker and drop the client.
      c->doomed = true;
      cl.unlock();
      {
        std::lock_guard<std::mutex> lock(doomed_mu_);
        doomed_.push_back(c);
      }
      WakeLoop();
      return Status::Unavailable("client stalled (write buffer full for " +
                                 std::to_string(
                                     options_.write_stall_timeout.count()) +
                                 " ms)");
    }
    c->write_cv.wait_for(cl, kGovernedSlice);
  }
  c->out_bytes += frame.size();
  c->out.push_back(std::move(frame));
  cl.unlock();
  WakeLoop();
  return Status::OK();
}

void Server::ExecuteStatement(const ConnPtr& c, const WorkItem& item) {
  metrics_->queued_statements->Add(-1);
  auto finish = [&](bool error) {
    auto elapsed = std::chrono::steady_clock::now() - item.enqueued;
    metrics_->request_ns->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
    if (error) {
      metrics_->statement_errors->Add();
    } else {
      metrics_->statements->Add();
    }
    inflight_statements_.fetch_sub(1, std::memory_order_acq_rel);
  };

  if (item.drain_reject || draining_hard_.load(std::memory_order_acquire)) {
    metrics_->drain_rejected->Add();
    std::string frame;
    AppendFrame(&frame, MessageType::kError,
                EncodeError(Status::Unavailable(
                    "server is draining; retry against a live server")));
    (void)BlockingEnqueue(c, std::move(frame));
    finish(/*error=*/true);
    return;
  }

  bool idle_aborted;
  {
    std::lock_guard<std::mutex> cl(c->mu);
    idle_aborted = c->txn_idle_aborted;
  }
  if (idle_aborted) {
    // The server aborted this connection's transaction (idle timeout).
    // Refuse statements until the client acknowledges with Begin/AbortTxn:
    // executing them as autocommit would silently split the transaction.
    std::string frame;
    AppendFrame(&frame, MessageType::kError,
                EncodeError(Status::Aborted(
                    "transaction aborted by the server (idle past "
                    "txn_idle_timeout); acknowledge with Begin or "
                    "AbortTxn")));
    (void)BlockingEnqueue(c, std::move(frame));
    finish(/*error=*/true);
    return;
  }

  metrics_->active_statements->Add(1);
  Session* session = c->session.get();

  // Streaming result sink: serialized bytes are sliced into ResultChunk
  // frames of result_chunk_bytes and flow-controlled through the event
  // loop, so the result never materializes server-side.
  std::string chunk_buf;
  Status sink_status;  // first enqueue failure, kept for classification
  auto flush_chunks = [&](bool final_flush) -> Status {
    size_t chunk = options_.result_chunk_bytes == 0
                       ? 32 * 1024
                       : options_.result_chunk_bytes;
    while (chunk_buf.size() >= chunk || (final_flush && !chunk_buf.empty())) {
      size_t take = std::min(chunk_buf.size(), chunk);
      std::string frame;
      AppendFrame(&frame, MessageType::kResultChunk,
                  std::string_view(chunk_buf.data(), take));
      Status st = BlockingEnqueue(c, std::move(frame));
      if (!st.ok()) {
        if (sink_status.ok()) sink_status = st;
        return st;
      }
      metrics_->result_chunks->Add();
      chunk_buf.erase(0, take);
    }
    return Status::OK();
  };
  session->set_result_sink([&](std::string_view piece) -> Status {
    chunk_buf.append(piece.data(), piece.size());
    return flush_chunks(/*final_flush=*/false);
  });

  std::string text = item.type == MessageType::kExplain
                         ? "explain " + item.text
                         : item.text;
  StatusOr<QueryResult> result = session->Execute(text);
  session->set_result_sink(nullptr);

  metrics_->active_statements->Add(-1);

  if (result.ok()) {
    Status st = flush_chunks(/*final_flush=*/true);
    if (st.ok()) {
      std::string frame;
      AppendFrame(&frame, MessageType::kResultDone,
                  EncodeResultDone(result->kind, result->affected,
                                   result->peak_memory_bytes));
      st = BlockingEnqueue(c, std::move(frame));
    }
    finish(/*error=*/!st.ok());
    return;
  }

  // Prefer the first sink failure for classification: an operator may have
  // wrapped the enqueue error on the way out of the pipeline.
  Status st = !sink_status.ok() ? sink_status : result.status();
  std::string frame;
  AppendFrame(&frame, MessageType::kError, EncodeError(st));
  (void)BlockingEnqueue(c, std::move(frame));
  finish(/*error=*/true);
}

void Server::ApplyOption(const ConnPtr& c, const WorkItem& item) {
  Session* session = c->session.get();
  const std::string& key = item.text;
  uint64_t v = 0;
  Status st;
  if (!ParseUint(item.value, &v)) {
    st = Status::InvalidArgument("option '" + key +
                                 "' needs a non-negative integer, got '" +
                                 item.value + "'");
  } else if (key == "timeout_ms") {
    session->set_statement_timeout(std::chrono::milliseconds(v));
  } else if (key == "memory_budget") {
    session->set_statement_memory_budget(v);
  } else if (key == "check_interval") {
    session->set_check_interval(static_cast<uint32_t>(v));
  } else if (key == "parallel_workers") {
    session->set_parallel_workers(static_cast<uint32_t>(v));
  } else if (key == "batch_size") {
    session->set_batch_size(static_cast<size_t>(v));
  } else if (key == "cancel_at_tick") {
    // Deterministic kill hook for torture tests: the session trips its own
    // cancellation at the N-th governance tick of each statement.
    session->set_cancel_at_tick(v);
  } else {
    st = Status::InvalidArgument("unknown option '" + key + "'");
  }

  std::string frame;
  if (st.ok()) {
    metrics_->options_set->Add();
    AppendFrame(&frame, MessageType::kOptionOk, "");
  } else {
    AppendFrame(&frame, MessageType::kError, EncodeError(st));
  }
  (void)BlockingEnqueue(c, std::move(frame));
}

void Server::HandleTxnControl(const ConnPtr& c, const WorkItem& item) {
  auto finish = [&] {
    auto elapsed = std::chrono::steady_clock::now() - item.enqueued;
    metrics_->request_ns->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
    inflight_statements_.fetch_sub(1, std::memory_order_acq_rel);
  };

  if (item.drain_reject || draining_hard_.load(std::memory_order_acquire)) {
    // The drain epilogue aborts whatever is still open; accepting a Begin
    // (or worse, a Commit) past this point would race it.
    metrics_->drain_rejected->Add();
    std::string frame;
    AppendFrame(&frame, MessageType::kError,
                EncodeError(Status::Unavailable(
                    "server is draining; retry against a live server")));
    (void)BlockingEnqueue(c, std::move(frame));
    finish();
    return;
  }

  Session* session = c->session.get();
  bool idle_aborted;
  {
    std::lock_guard<std::mutex> cl(c->mu);
    idle_aborted = c->txn_idle_aborted;
    // Any transaction-control frame acknowledges the server-side abort:
    // the client now learns the old transaction is gone.
    c->txn_idle_aborted = false;
  }

  Status st;
  switch (item.type) {
    case MessageType::kBegin:
      st = session->Begin(item.begin_read_only);
      if (st.ok()) metrics_->txn_begins->Add();
      break;
    case MessageType::kCommitTxn:
      if (idle_aborted) {
        // Never pretend the vanished transaction's effects survived.
        st = Status::Aborted(
            "transaction aborted by the server (idle past "
            "txn_idle_timeout); nothing to commit");
      } else {
        st = session->Commit();
        if (st.ok()) metrics_->txn_commits->Add();
      }
      break;
    default:  // kAbortTxn
      if (idle_aborted) {
        st = Status::OK();  // already aborted server-side; idempotent ack
      } else {
        st = session->Abort();
        if (st.ok()) metrics_->txn_aborts->Add();
      }
      break;
  }

  std::string frame;
  if (st.ok()) {
    AppendFrame(&frame, MessageType::kTxnOk,
                EncodeTxnOk(session->in_transaction()));
  } else {
    AppendFrame(&frame, MessageType::kError, EncodeError(st));
  }
  (void)BlockingEnqueue(c, std::move(frame));
  finish();
}

// ---------------------------------------------------------------------------
// Drain / shutdown
// ---------------------------------------------------------------------------

Status Server::Shutdown(std::chrono::milliseconds grace) {
  bool expected = false;
  if (!shutdown_started_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("server already shut down");
  }

  // Phase 1: stop taking new work. The accept gate flips atomically; any
  // statement parsed after this instant carries drain_reject and is
  // answered with kUnavailable by the worker that reaches it (keeping the
  // per-connection reply order intact).
  draining_.store(true, std::memory_order_release);
  accepting_.store(false, std::memory_order_release);
  WakeLoop();

  // Phase 2: let in-flight statements finish under the grace deadline.
  const auto deadline = std::chrono::steady_clock::now() + grace;
  while (inflight_statements_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Phase 3: hard abort the stragglers through governance. Every running
  // statement observes its cancellation token at the next tick (pipeline
  // pulls, lock waits, group-commit waits and result-sink flow control are
  // all governed), and queued-but-unstarted statements are answered with
  // kUnavailable by the workers.
  if (inflight_statements_.load(std::memory_order_acquire) > 0) {
    draining_hard_.store(true, std::memory_order_release);
    // Re-issue the cancels every round: a statement that was dispatched but
    // had not yet reached BeginGoverned when a previous round fired has no
    // token registered at that instant and would otherwise lose the cancel,
    // blocking this drain forever on an unbounded statement.
    while (inflight_statements_.load(std::memory_order_acquire) > 0) {
      std::vector<ConnPtr> live;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto& [id, c] : conns_) live.push_back(c);
      }
      for (const ConnPtr& c : live) c->session->Cancel();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Phase 4: stop the workers (all statement work is done).
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // Phase 5: say Goodbye everywhere, give the loop a moment to flush, then
  // stop it; its exit path closes every remaining connection.
  std::vector<ConnPtr> live;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, c] : conns_) live.push_back(c);
  }
  for (const ConnPtr& c : live) {
    std::lock_guard<std::mutex> cl(c->mu);
    if (c->closed) continue;
    std::string frame;
    AppendFrame(&frame, MessageType::kGoodbye, "");
    c->out_bytes += frame.size();
    c->out.push_back(std::move(frame));
    c->close_after_flush = true;
  }
  WakeLoop();
  const auto flush_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  while (active_connections() > 0 &&
         std::chrono::steady_clock::now() < flush_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  loop_stop_.store(true, std::memory_order_release);
  WakeLoop();
  // When Init() failed before spawning the loop (bad address, bind/listen
  // or pipe2 error) the destructor still runs Shutdown(); joining a
  // non-joinable thread would throw out of a noexcept destructor.
  if (loop_thread_.joinable()) loop_thread_.join();

  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  return Status::OK();
}

}  // namespace sedna::net
