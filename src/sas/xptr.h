// Sedna Address Space (SAS) pointers.
//
// The paper (Section 4.2) represents a database pointer as a 64-bit address:
// the upper 32 bits select a *layer*, the lower 32 bits are the byte address
// inside that layer. A layer is mapped onto the process virtual address
// space "on equality basis" — the in-layer offset IS the in-VAS offset — so
// the same pointer representation is used in main and secondary memory and
// no pointer swizzling is ever needed.
//
// Layers are divided into equal-size pages; pages are the unit of disk I/O
// and buffering. The page an Xptr falls into is identified by clearing the
// low `kPageSizeBits` bits of the offset.

#ifndef SEDNA_SAS_XPTR_H_
#define SEDNA_SAS_XPTR_H_

#include <cstdint>
#include <functional>
#include <string>

namespace sedna {

/// Pages are 16 KiB. Fixed at compile time so that offset arithmetic in the
/// dereference fast path is shift/mask on constants.
inline constexpr int kPageSizeBits = 14;
inline constexpr uint32_t kPageSize = 1u << kPageSizeBits;
inline constexpr uint32_t kPageOffsetMask = kPageSize - 1;

/// Layer 0 is reserved so that the all-zero Xptr is unambiguously null.
inline constexpr uint32_t kFirstLayer = 1;

/// A pointer into the Sedna Address Space: (layer, offset-within-layer).
struct Xptr {
  uint64_t raw = 0;

  constexpr Xptr() = default;
  constexpr explicit Xptr(uint64_t r) : raw(r) {}
  constexpr Xptr(uint32_t layer, uint32_t offset)
      : raw((static_cast<uint64_t>(layer) << 32) | offset) {}

  constexpr uint32_t layer() const { return static_cast<uint32_t>(raw >> 32); }
  constexpr uint32_t offset() const { return static_cast<uint32_t>(raw); }

  constexpr bool is_null() const { return raw == 0; }
  constexpr explicit operator bool() const { return raw != 0; }

  /// Xptr of the first byte of the page containing this address.
  constexpr Xptr PageBase() const {
    return Xptr(raw & ~static_cast<uint64_t>(kPageOffsetMask));
  }

  /// Byte offset of this address within its page.
  constexpr uint32_t PageOffset() const { return offset() & kPageOffsetMask; }

  /// Index of the page within its layer.
  constexpr uint32_t PageIndex() const { return offset() >> kPageSizeBits; }

  constexpr Xptr operator+(uint32_t delta) const { return Xptr(raw + delta); }

  friend constexpr bool operator==(Xptr a, Xptr b) { return a.raw == b.raw; }
  friend constexpr bool operator!=(Xptr a, Xptr b) { return a.raw != b.raw; }
  friend constexpr bool operator<(Xptr a, Xptr b) { return a.raw < b.raw; }

  /// Debug form "L<layer>:<offset>" or "null".
  std::string ToString() const;
};

inline constexpr Xptr kNullXptr{};

/// Identifier of a logical page: the page-base Xptr's raw value.
using LogicalPageId = uint64_t;

inline constexpr LogicalPageId PageIdOf(Xptr p) { return p.PageBase().raw; }

/// Physical page number within the database file.
using PhysPageId = uint32_t;
inline constexpr PhysPageId kInvalidPhysPage = 0xffffffffu;

}  // namespace sedna

template <>
struct std::hash<sedna::Xptr> {
  size_t operator()(const sedna::Xptr& p) const noexcept {
    return std::hash<uint64_t>()(p.raw);
  }
};

#endif  // SEDNA_SAS_XPTR_H_
