#include "sas/file_manager.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/coding.h"
#include "common/logging.h"

namespace sedna {

namespace {

constexpr uint32_t kMasterMagic = 0x5ed0a010;
constexpr uint32_t kFreeMagic = 0x5edafeee;

constexpr int kIoRetries = 3;
constexpr int kIoBackoffMs = 1;

// Serialized master record layout inside a master page:
//   magic, crc, payload_len, payload
std::string EncodeMaster(const MasterRecord& m) {
  std::string payload;
  PutFixed64(&payload, m.sequence);
  PutFixed32(&payload, m.page_count);
  PutFixed32(&payload, m.free_list_head);
  PutFixed32(&payload, m.directory_blob);
  PutFixed32(&payload, m.catalog_blob);
  PutFixed64(&payload, m.checkpoint_lsn);
  PutFixed64(&payload, m.next_timestamp);

  std::string page;
  PutFixed32(&page, kMasterMagic);
  PutFixed32(&page, Crc32(payload.data(), payload.size()));
  PutFixed32(&page, static_cast<uint32_t>(payload.size()));
  page += payload;
  page.resize(kPageSize, '\0');
  return page;
}

bool DecodeMaster(const char* page, MasterRecord* m) {
  Decoder header(std::string_view(page, kPageSize));
  uint32_t magic = 0, crc = 0, len = 0;
  if (!header.GetFixed32(&magic) || magic != kMasterMagic) return false;
  if (!header.GetFixed32(&crc) || !header.GetFixed32(&len)) return false;
  if (len > kPageSize - 12) return false;
  const char* payload = page + 12;
  if (Crc32(payload, len) != crc) return false;
  Decoder d(std::string_view(payload, len));
  uint32_t flh = 0, dirb = 0, catb = 0;
  bool ok = d.GetFixed64(&m->sequence) && d.GetFixed32(&m->page_count) &&
            d.GetFixed32(&flh) && d.GetFixed32(&dirb) && d.GetFixed32(&catb) &&
            d.GetFixed64(&m->checkpoint_lsn) &&
            d.GetFixed64(&m->next_timestamp);
  if (!ok) return false;
  m->free_list_head = flh;
  m->directory_blob = dirb;
  m->catalog_blob = catb;
  return true;
}

// Free pages carry a stamped, CRC-protected link plus the master-record
// sequence ("epoch") current when the page was freed. The stamp guards two
// distinct crash hazards at allocation time: a head whose stamp was
// overwritten by live data (magic/self/CRC fails), and a stamp written
// AFTER the recovered master became durable — a page the dead incarnation
// popped and re-freed, whose unsynced stamp happened to survive a torn
// crash. Such a stamp is internally valid but its next link describes a
// newer free list the recovered master knows nothing about; following it
// hands out pages that are live — or out of bounds — in the recovered
// image. Those stale stamps always carry epoch == the recovered master's
// sequence (the sequence only advances at master writes, and a completed
// master write would itself have been the recovery target), so equality is
// the rejection test.
//   [kFreeMagic(4)][next(4)][self ppn(4)][epoch(8)][crc over next+self+epoch]
void EncodeFreePage(char* buf, PhysPageId self, PhysPageId next,
                    uint64_t epoch) {
  std::memset(buf, 0, kPageSize);
  std::string header;
  PutFixed32(&header, kFreeMagic);
  PutFixed32(&header, next);
  PutFixed32(&header, self);
  PutFixed64(&header, epoch);
  PutFixed32(&header, Crc32(header.data() + 4, 16));
  std::memcpy(buf, header.data(), header.size());
}

bool DecodeFreePage(const char* buf, PhysPageId self, PhysPageId* next,
                    uint64_t* epoch) {
  if (DecodeFixed32(buf) != kFreeMagic) return false;
  if (DecodeFixed32(buf + 8) != self) return false;
  if (DecodeFixed32(buf + 20) != Crc32(buf + 4, 16)) return false;
  *next = DecodeFixed32(buf + 4);
  *epoch = DecodeFixed64(buf + 12);
  return true;
}

}  // namespace

FileManager::~FileManager() {
  if (file_ != nullptr) {
    Status st = Close();
    if (!st.ok()) {
      SEDNA_LOG(kWarning) << "FileManager close in destructor failed: "
                         << st.ToString();
    }
  }
}

void FileManager::set_vfs(Vfs* vfs) {
  std::lock_guard<std::mutex> lock(mu_);
  vfs_ = vfs != nullptr ? vfs : Vfs::Default();
}

void FileManager::set_io_failure_handler(IoFailureHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  io_failure_handler_ = std::move(handler);
}

Status FileManager::RetryIo(bool is_write, const std::function<Status()>& op) {
  // Runs with or without mu_ held (the page data path calls it unlocked), so
  // it only touches the atomic fail-fast flag and fields that are immutable
  // while the file is open (path_, io_failure_handler_).
  Status st;
  int attempts = fail_fast_.load(std::memory_order_relaxed) ? 1 : kIoRetries;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    st = op();
    if (st.ok()) return st;
    // Only I/O errors are plausibly transient; anything else (bad argument,
    // closed file) will not improve with a retry.
    if (st.code() != StatusCode::kIOError) return st;
    if (attempt + 1 < attempts) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kIoBackoffMs * (attempt + 1)));
    }
  }
  if (!fail_fast_.exchange(true, std::memory_order_relaxed)) {
    SEDNA_LOG(kError) << "I/O retries exhausted on " << path_ << ": "
                     << st.ToString();
  }
  if (is_write && io_failure_handler_) io_failure_handler_(st);
  return st;
}

Status FileManager::Create(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("file manager already open");
  }
  auto opened = vfs_->Open(path, OpenMode::kCreate);
  if (!opened.ok()) return opened.status();
  file_ = std::move(opened).value();
  path_ = path;
  master_ = MasterRecord{};
  fail_fast_ = false;
  stale_free_epoch_ = 0;  // fresh file: no dead incarnation to distrust
  // Write both master slots so Open never sees garbage (each write bumps
  // the sequence, so the two land in alternating slots).
  Status st = WriteMasterLocked();
  if (!st.ok()) return st;
  return WriteMasterLocked();
}

Status FileManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("file manager already open");
  }
  auto opened = vfs_->Open(path, OpenMode::kReadWrite);
  if (!opened.ok()) return opened.status();
  file_ = std::move(opened).value();
  path_ = path;
  master_ = MasterRecord{};  // page_count=2 so the slot reads are in bounds
  fail_fast_ = false;

  char buf[kPageSize];
  MasterRecord best;
  bool found = false;
  bool slot_valid[2] = {false, false};
  for (PhysPageId slot = 0; slot < 2; ++slot) {
    if (!ReadPageLocked(slot, buf).ok()) continue;
    MasterRecord m;
    if (!DecodeMaster(buf, &m)) continue;
    slot_valid[slot] = true;
    if (!found || m.sequence > best.sequence) {
      best = m;
      found = true;
    }
  }
  if (!found) {
    file_->Close();
    file_.reset();
    return Status::Corruption("no valid master record in " + path);
  }
  master_ = best;
  for (PhysPageId slot = 0; slot < 2; ++slot) {
    if (slot_valid[slot]) continue;
    // Repair the corrupt slot from the survivor so a second corruption
    // (of the currently-good slot) cannot leave the file unopenable.
    std::string page = EncodeMaster(best);
    Status repair = WritePageLocked(slot, page.data());
    if (repair.ok()) repair = SyncLocked();
    if (repair.ok()) {
      SEDNA_LOG(kWarning) << "repaired corrupt master slot " << slot << " in "
                         << path;
    } else {
      SEDNA_LOG(kWarning) << "failed to repair master slot " << slot << " in "
                         << path << ": " << repair.ToString();
    }
  }
  // The free list inherited from the recovered master may start with a
  // stamp the dead incarnation wrote after this master became durable (see
  // EncodeFreePage). Only the head needs checking: pushes prepend, so every
  // deeper stamp in a chain with a clean head is older than the head. The
  // check must happen here, not lazily at allocation, because the sequence
  // bump below re-persists the master — carrying an unvalidated head into
  // it would launder the stale stamp past the next recovery's epoch test.
  stale_free_epoch_ = master_.sequence;
  if (master_.free_list_head != kInvalidPhysPage) {
    PhysPageId head = master_.free_list_head;
    PhysPageId next = kInvalidPhysPage;
    uint64_t epoch = 0;
    bool trusted = head < master_.page_count &&
                   ReadPageLocked(head, buf).ok() &&
                   DecodeFreePage(buf, head, &next, &epoch) &&
                   epoch < master_.sequence;
    if (!trusted) {
      SEDNA_LOG(kWarning) << "free-list head page " << head
                         << " is stale after crash; abandoning free list";
      master_.free_list_head = kInvalidPhysPage;
    }
  }
  // Bump the sequence durably: stamps written by this incarnation carry an
  // epoch strictly above anything the dead incarnation could have left
  // behind, so the staleness test never rejects a live free.
  Status bump = WriteMasterLocked();
  if (!bump.ok()) {
    file_->Close();
    file_.reset();
    return bump;
  }
  return Status::OK();
}

Status FileManager::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  // Persist allocation state (page count, free list) so a clean close is
  // reopenable even without a checkpoint.
  Status st = WriteMasterLocked();
  Status close_st = file_->Close();
  file_.reset();
  if (!st.ok()) return st;
  return close_st;
}

Status FileManager::ReadPage(PhysPageId ppn, void* buf) {
  // Bounds check under the mutex, I/O outside it: concurrent faults from
  // different buffer-pool shards overlap their positioned reads.
  File* f = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ == nullptr) return Status::FailedPrecondition("file not open");
    if (ppn >= master_.page_count) {
      return Status::InvalidArgument("read of unallocated page " +
                                     std::to_string(ppn));
    }
    f = file_.get();
  }
  return RetryIo(/*is_write=*/false, [&] {
    return f->Read(static_cast<uint64_t>(ppn) * kPageSize, kPageSize, buf);
  });
}

Status FileManager::ReadPageLocked(PhysPageId ppn, void* buf) {
  if (file_ == nullptr) return Status::FailedPrecondition("file not open");
  if (ppn >= master_.page_count) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(ppn));
  }
  return RetryIo(/*is_write=*/false, [&] {
    return file_->Read(static_cast<uint64_t>(ppn) * kPageSize, kPageSize, buf);
  });
}

Status FileManager::WritePage(PhysPageId ppn, const void* buf) {
  // Same unlocked data path as ReadPage: eviction writebacks from different
  // shards overlap their positioned writes.
  File* f = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ == nullptr) return Status::FailedPrecondition("file not open");
    if (ppn >= master_.page_count) {
      return Status::InvalidArgument("write of unallocated page " +
                                     std::to_string(ppn));
    }
    f = file_.get();
  }
  return RetryIo(/*is_write=*/true, [&] {
    return f->Write(static_cast<uint64_t>(ppn) * kPageSize, buf, kPageSize);
  });
}

Status FileManager::WritePageLocked(PhysPageId ppn, const void* buf) {
  if (file_ == nullptr) return Status::FailedPrecondition("file not open");
  if (ppn >= master_.page_count) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(ppn));
  }
  return RetryIo(/*is_write=*/true, [&] {
    return file_->Write(static_cast<uint64_t>(ppn) * kPageSize, buf,
                        kPageSize);
  });
}

Status FileManager::SyncLocked() {
  if (file_ == nullptr) return Status::OK();
  return RetryIo(/*is_write=*/true, [&] { return file_->Sync(); });
}

StatusOr<PhysPageId> FileManager::AllocPage() {
  std::lock_guard<std::mutex> lock(mu_);
  return AllocPageLocked();
}

StatusOr<PhysPageId> FileManager::AllocPageLocked() {
  if (file_ == nullptr) return Status::FailedPrecondition("file not open");
  if (master_.free_list_head != kInvalidPhysPage) {
    PhysPageId ppn = master_.free_list_head;
    PhysPageId next = kInvalidPhysPage;
    uint64_t epoch = 0;
    char buf[kPageSize];
    bool trusted = ppn < master_.page_count;
    if (trusted) {
      SEDNA_RETURN_IF_ERROR(ReadPageLocked(ppn, buf));
      trusted = DecodeFreePage(buf, ppn, &next, &epoch) &&
                epoch != stale_free_epoch_;
    }
    if (trusted) {
      master_.free_list_head = next;
      return ppn;
    }
    // The head does not carry a trustworthy free stamp: either the page was
    // reused and overwritten (a crash reverted to a master whose head was
    // since recycled), or the stamp postdates the recovered master (see
    // EncodeFreePage). Leaking the chain is safe; handing out a live page
    // is not.
    SEDNA_LOG(kWarning) << "free-list head page " << ppn
                       << " failed validation; abandoning free list";
    master_.free_list_head = kInvalidPhysPage;
  }
  PhysPageId ppn = master_.page_count;
  master_.page_count++;
  // Extend the file with a zero page so later reads are well-defined.
  char zero[kPageSize];
  std::memset(zero, 0, sizeof(zero));
  Status st = WritePageLocked(ppn, zero);
  if (!st.ok()) {
    master_.page_count--;
    return st;
  }
  return ppn;
}

Status FileManager::FreePage(PhysPageId ppn) {
  std::lock_guard<std::mutex> lock(mu_);
  return FreePageLocked(ppn);
}

Status FileManager::FreePageLocked(PhysPageId ppn) {
  if (ppn < 2 || ppn >= master_.page_count) {
    return Status::InvalidArgument("free of invalid page " +
                                   std::to_string(ppn));
  }
  char buf[kPageSize];
  EncodeFreePage(buf, ppn, master_.free_list_head, master_.sequence);
  SEDNA_RETURN_IF_ERROR(WritePageLocked(ppn, buf));
  master_.free_list_head = ppn;
  return Status::OK();
}

uint32_t FileManager::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_.page_count;
}

MasterRecord FileManager::master() const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_;
}

void FileManager::set_master(const MasterRecord& m) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t seq = master_.sequence;
  master_ = m;
  master_.sequence = seq;
}

Status FileManager::WriteMaster() {
  std::lock_guard<std::mutex> lock(mu_);
  return WriteMasterLocked();
}

Status FileManager::WriteMasterLocked() {
  master_.sequence++;
  std::string page = EncodeMaster(master_);
  PhysPageId slot = master_.sequence % 2;
  SEDNA_RETURN_IF_ERROR(WritePageLocked(slot, page.data()));
  // The master write is the commit point of a checkpoint: it must be
  // durable, not merely flushed, before callers free superseded pages.
  return SyncLocked();
}

StatusOr<PhysPageId> FileManager::WriteMetaBlob(const std::string& blob) {
  std::lock_guard<std::mutex> lock(mu_);
  char buf[kPageSize];
  // Each chain page: next(4) total_len(8, head only meaningful) payload.
  constexpr size_t kHeaderSize = 12;
  constexpr size_t kPayloadPerPage = kPageSize - kHeaderSize;
  size_t offset = 0;
  PhysPageId head = kInvalidPhysPage;
  PhysPageId prev = kInvalidPhysPage;
  char prev_buf[kPageSize];
  do {
    SEDNA_ASSIGN_OR_RETURN(PhysPageId ppn, AllocPageLocked());
    size_t chunk = std::min(kPayloadPerPage, blob.size() - offset);
    std::memset(buf, 0, sizeof(buf));
    // next link filled in when the following page is allocated
    std::string header;
    PutFixed32(&header, kInvalidPhysPage);
    PutFixed64(&header, blob.size());
    std::memcpy(buf, header.data(), kHeaderSize);
    std::memcpy(buf + kHeaderSize, blob.data() + offset, chunk);
    if (prev != kInvalidPhysPage) {
      // Patch previous page's next pointer.
      std::string link;
      PutFixed32(&link, ppn);
      std::memcpy(prev_buf, link.data(), 4);
      SEDNA_RETURN_IF_ERROR(WritePageLocked(prev, prev_buf));
    } else {
      head = ppn;
    }
    std::memcpy(prev_buf, buf, kPageSize);
    SEDNA_RETURN_IF_ERROR(WritePageLocked(ppn, buf));
    prev = ppn;
    offset += chunk;
  } while (offset < blob.size());
  return head;
}

Status FileManager::FreeMetaBlob(PhysPageId head) {
  std::lock_guard<std::mutex> lock(mu_);
  PhysPageId cur = head;
  char buf[kPageSize];
  while (cur != kInvalidPhysPage) {
    SEDNA_RETURN_IF_ERROR(ReadPageLocked(cur, buf));
    PhysPageId next = DecodeFixed32(buf);
    SEDNA_RETURN_IF_ERROR(FreePageLocked(cur));
    cur = next;
  }
  return Status::OK();
}

StatusOr<std::string> FileManager::ReadMetaBlob(PhysPageId head) {
  std::lock_guard<std::mutex> lock(mu_);
  constexpr size_t kHeaderSize = 12;
  constexpr size_t kPayloadPerPage = kPageSize - kHeaderSize;
  if (head == kInvalidPhysPage) return std::string();
  char buf[kPageSize];
  SEDNA_RETURN_IF_ERROR(ReadPageLocked(head, buf));
  uint64_t total = DecodeFixed64(buf + 4);
  std::string blob;
  blob.reserve(total);
  PhysPageId cur = head;
  while (blob.size() < total) {
    if (cur != head) {
      SEDNA_RETURN_IF_ERROR(ReadPageLocked(cur, buf));
    }
    size_t chunk = std::min(kPayloadPerPage, total - blob.size());
    blob.append(buf + kHeaderSize, chunk);
    cur = DecodeFixed32(buf);
    if (cur == kInvalidPhysPage && blob.size() < total) {
      return Status::Corruption("meta blob chain truncated");
    }
  }
  return blob;
}

Status FileManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

}  // namespace sedna
