#include "sas/file_manager.h"

#include <cstring>

#include "common/coding.h"
#include "common/logging.h"

namespace sedna {

namespace {

constexpr uint32_t kMasterMagic = 0x5ed0a010;

// Serialized master record layout inside a master page:
//   magic, crc, payload_len, payload
std::string EncodeMaster(const MasterRecord& m) {
  std::string payload;
  PutFixed64(&payload, m.sequence);
  PutFixed32(&payload, m.page_count);
  PutFixed32(&payload, m.free_list_head);
  PutFixed32(&payload, m.directory_blob);
  PutFixed32(&payload, m.catalog_blob);
  PutFixed64(&payload, m.checkpoint_lsn);
  PutFixed64(&payload, m.next_timestamp);

  std::string page;
  PutFixed32(&page, kMasterMagic);
  PutFixed32(&page, Crc32(payload.data(), payload.size()));
  PutFixed32(&page, static_cast<uint32_t>(payload.size()));
  page += payload;
  page.resize(kPageSize, '\0');
  return page;
}

bool DecodeMaster(const char* page, MasterRecord* m) {
  Decoder header(std::string_view(page, kPageSize));
  uint32_t magic = 0, crc = 0, len = 0;
  if (!header.GetFixed32(&magic) || magic != kMasterMagic) return false;
  if (!header.GetFixed32(&crc) || !header.GetFixed32(&len)) return false;
  if (len > kPageSize - 12) return false;
  const char* payload = page + 12;
  if (Crc32(payload, len) != crc) return false;
  Decoder d(std::string_view(payload, len));
  uint32_t flh = 0, dirb = 0, catb = 0;
  bool ok = d.GetFixed64(&m->sequence) && d.GetFixed32(&m->page_count) &&
            d.GetFixed32(&flh) && d.GetFixed32(&dirb) && d.GetFixed32(&catb) &&
            d.GetFixed64(&m->checkpoint_lsn) &&
            d.GetFixed64(&m->next_timestamp);
  if (!ok) return false;
  m->free_list_head = flh;
  m->directory_blob = dirb;
  m->catalog_blob = catb;
  return true;
}

}  // namespace

FileManager::~FileManager() {
  if (file_ != nullptr) Close();
}

Status FileManager::Create(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("file manager already open");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IOError("cannot create database file " + path);
  }
  file_ = f;
  path_ = path;
  master_ = MasterRecord{};
  // Write both master slots so Open never sees garbage.
  Status st = WriteMasterLocked();
  if (!st.ok()) return st;
  master_.sequence++;
  return WriteMasterLocked();
}

Status FileManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("file manager already open");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IOError("cannot open database file " + path);
  }
  file_ = f;
  path_ = path;

  char buf[kPageSize];
  MasterRecord best;
  bool found = false;
  for (PhysPageId slot = 0; slot < 2; ++slot) {
    if (!ReadPageLocked(slot, buf).ok()) continue;
    MasterRecord m;
    if (DecodeMaster(buf, &m) && (!found || m.sequence > best.sequence)) {
      best = m;
      found = true;
    }
  }
  if (!found) {
    std::fclose(file_);
    file_ = nullptr;
    return Status::Corruption("no valid master record in " + path);
  }
  master_ = best;
  return Status::OK();
}

Status FileManager::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  // Persist allocation state (page count, free list) so a clean close is
  // reopenable even without a checkpoint.
  Status st = WriteMasterLocked();
  if (!st.ok()) {
    std::fclose(file_);
    file_ = nullptr;
    return st;
  }
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("fclose failed for " + path_);
  return Status::OK();
}

Status FileManager::ReadPage(PhysPageId ppn, void* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadPageLocked(ppn, buf);
}

Status FileManager::ReadPageLocked(PhysPageId ppn, void* buf) {
  if (file_ == nullptr) return Status::FailedPrecondition("file not open");
  if (ppn >= master_.page_count) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(ppn));
  }
  if (std::fseek(file_, static_cast<long>(ppn) * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fread(buf, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short read of page " + std::to_string(ppn));
  }
  return Status::OK();
}

Status FileManager::WritePage(PhysPageId ppn, const void* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  return WritePageLocked(ppn, buf);
}

Status FileManager::WritePageLocked(PhysPageId ppn, const void* buf) {
  if (file_ == nullptr) return Status::FailedPrecondition("file not open");
  if (ppn >= master_.page_count) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(ppn));
  }
  if (std::fseek(file_, static_cast<long>(ppn) * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(buf, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short write of page " + std::to_string(ppn));
  }
  return Status::OK();
}

StatusOr<PhysPageId> FileManager::AllocPage() {
  std::lock_guard<std::mutex> lock(mu_);
  return AllocPageLocked();
}

StatusOr<PhysPageId> FileManager::AllocPageLocked() {
  if (file_ == nullptr) return Status::FailedPrecondition("file not open");
  if (master_.free_list_head != kInvalidPhysPage) {
    // Pop from the on-disk free list: each free page stores the next free
    // page number in its first 4 bytes.
    PhysPageId ppn = master_.free_list_head;
    char buf[kPageSize];
    SEDNA_RETURN_IF_ERROR(ReadPageLocked(ppn, buf));
    master_.free_list_head = DecodeFixed32(buf);
    return ppn;
  }
  PhysPageId ppn = master_.page_count;
  master_.page_count++;
  // Extend the file with a zero page so later reads are well-defined.
  char zero[kPageSize];
  std::memset(zero, 0, sizeof(zero));
  Status st = WritePageLocked(ppn, zero);
  if (!st.ok()) {
    master_.page_count--;
    return st;
  }
  return ppn;
}

Status FileManager::FreePage(PhysPageId ppn) {
  std::lock_guard<std::mutex> lock(mu_);
  return FreePageLocked(ppn);
}

Status FileManager::FreePageLocked(PhysPageId ppn) {
  if (ppn < 2 || ppn >= master_.page_count) {
    return Status::InvalidArgument("free of invalid page " +
                                   std::to_string(ppn));
  }
  char buf[kPageSize];
  std::memset(buf, 0, sizeof(buf));
  // Store the next-free link in the first 4 bytes.
  buf[0] = static_cast<char>(master_.free_list_head);
  buf[1] = static_cast<char>(master_.free_list_head >> 8);
  buf[2] = static_cast<char>(master_.free_list_head >> 16);
  buf[3] = static_cast<char>(master_.free_list_head >> 24);
  SEDNA_RETURN_IF_ERROR(WritePageLocked(ppn, buf));
  master_.free_list_head = ppn;
  return Status::OK();
}

uint32_t FileManager::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_.page_count;
}

MasterRecord FileManager::master() const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_;
}

void FileManager::set_master(const MasterRecord& m) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t seq = master_.sequence;
  master_ = m;
  master_.sequence = seq;
}

Status FileManager::WriteMaster() {
  std::lock_guard<std::mutex> lock(mu_);
  return WriteMasterLocked();
}

Status FileManager::WriteMasterLocked() {
  master_.sequence++;
  std::string page = EncodeMaster(master_);
  PhysPageId slot = master_.sequence % 2;
  SEDNA_RETURN_IF_ERROR(WritePageLocked(slot, page.data()));
  std::fflush(file_);
  return Status::OK();
}

StatusOr<PhysPageId> FileManager::WriteMetaBlob(const std::string& blob,
                                                PhysPageId old_head) {
  std::lock_guard<std::mutex> lock(mu_);
  // Free the previous chain.
  PhysPageId cur = old_head;
  char buf[kPageSize];
  while (cur != kInvalidPhysPage) {
    SEDNA_RETURN_IF_ERROR(ReadPageLocked(cur, buf));
    PhysPageId next = DecodeFixed32(buf);
    SEDNA_RETURN_IF_ERROR(FreePageLocked(cur));
    cur = next;
  }
  // Each chain page: next(4) total_len(8, head only meaningful) payload.
  constexpr size_t kHeaderSize = 12;
  constexpr size_t kPayloadPerPage = kPageSize - kHeaderSize;
  size_t offset = 0;
  PhysPageId head = kInvalidPhysPage;
  PhysPageId prev = kInvalidPhysPage;
  char prev_buf[kPageSize];
  do {
    SEDNA_ASSIGN_OR_RETURN(PhysPageId ppn, AllocPageLocked());
    size_t chunk = std::min(kPayloadPerPage, blob.size() - offset);
    std::memset(buf, 0, sizeof(buf));
    // next link filled in when the following page is allocated
    std::string header;
    PutFixed32(&header, kInvalidPhysPage);
    PutFixed64(&header, blob.size());
    std::memcpy(buf, header.data(), kHeaderSize);
    std::memcpy(buf + kHeaderSize, blob.data() + offset, chunk);
    if (prev != kInvalidPhysPage) {
      // Patch previous page's next pointer.
      std::string link;
      PutFixed32(&link, ppn);
      std::memcpy(prev_buf, link.data(), 4);
      SEDNA_RETURN_IF_ERROR(WritePageLocked(prev, prev_buf));
    } else {
      head = ppn;
    }
    std::memcpy(prev_buf, buf, kPageSize);
    SEDNA_RETURN_IF_ERROR(WritePageLocked(ppn, buf));
    prev = ppn;
    offset += chunk;
  } while (offset < blob.size());
  return head;
}

StatusOr<std::string> FileManager::ReadMetaBlob(PhysPageId head) {
  std::lock_guard<std::mutex> lock(mu_);
  constexpr size_t kHeaderSize = 12;
  constexpr size_t kPayloadPerPage = kPageSize - kHeaderSize;
  if (head == kInvalidPhysPage) return std::string();
  char buf[kPageSize];
  SEDNA_RETURN_IF_ERROR(ReadPageLocked(head, buf));
  uint64_t total = DecodeFixed64(buf + 4);
  std::string blob;
  blob.reserve(total);
  PhysPageId cur = head;
  while (blob.size() < total) {
    if (cur != head) {
      SEDNA_RETURN_IF_ERROR(ReadPageLocked(cur, buf));
    }
    size_t chunk = std::min(kPayloadPerPage, total - blob.size());
    blob.append(buf + kHeaderSize, chunk);
    cur = DecodeFixed32(buf);
    if (cur == kInvalidPhysPage && blob.size() < total) {
      return Status::Corruption("meta blob chain truncated");
    }
  }
  return blob;
}

Status FileManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  return Status::OK();
}

}  // namespace sedna
