// Physical storage: a single database file of fixed-size pages.
//
// Page 0 and page 1 hold two copies of the master record (double-slot,
// sequence-numbered, CRC-protected) so that master updates are atomic: the
// newest valid slot wins, and Open repairs a corrupted slot from the
// survivor. All other pages are allocated/freed through a free list whose
// on-disk links are stamped, CRC-protected and tagged with the master
// sequence at free time, so a stale head left by a crash — a reused page,
// or a re-freed page whose unsynced stamp survived a torn crash — is
// detected instead of handing out a live page. Open bumps the sequence
// durably so the new incarnation's stamps are distinguishable from the dead
// one's. The file manager
// also provides a "meta blob" facility used to persist the page directory
// and catalog across restarts: a blob is written into a chain of freshly
// allocated pages and the chain head is recorded in the master record.
// Freeing a superseded chain is the caller's job (FreeMetaBlob) and must
// happen only after the new master is durable, or a crash between the two
// would leave the durable master pointing at recycled pages.
//
// All I/O goes through the Vfs seam (common/vfs.h). Transient I/O errors
// are retried with bounded backoff; when retries are exhausted on the
// write path an io-failure handler (installed by the database layer) is
// notified so the system can degrade to read-only instead of corrupting
// state.

#ifndef SEDNA_SAS_FILE_MANAGER_H_
#define SEDNA_SAS_FILE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/vfs.h"
#include "sas/xptr.h"

namespace sedna {

/// Mutable database-wide metadata persisted in the master record.
struct MasterRecord {
  uint64_t sequence = 0;          // bumped on every master write
  uint32_t page_count = 2;        // physical pages in the file (incl. masters)
  PhysPageId free_list_head = kInvalidPhysPage;
  PhysPageId directory_blob = kInvalidPhysPage;  // page-directory snapshot
  PhysPageId catalog_blob = kInvalidPhysPage;    // storage catalog snapshot
  uint64_t checkpoint_lsn = 0;    // WAL position of the persistent snapshot
  uint64_t next_timestamp = 1;    // transaction timestamp high-water mark
};

/// Owns the database file. Thread-safe; all methods may be called
/// concurrently. `ReadPage`/`WritePage` — the buffer manager's fault and
/// writeback path — only take the mutex for a brief bounds check and then
/// issue positioned I/O (pread/pwrite through the Vfs) outside it, so
/// concurrent page faults from different pool shards overlap their I/O.
/// Allocation, free-list and master-record operations stay fully serialized
/// under the mutex. `set_vfs`/`set_io_failure_handler` must be called before
/// the file is shared across threads, and `Close` must not race with
/// in-flight page I/O (the buffer manager is torn down first).
class FileManager {
 public:
  /// Invoked (under the file mutex) when a write-path operation fails after
  /// exhausting its retries — the signal for read-only degradation.
  using IoFailureHandler = std::function<void(const Status&)>;

  FileManager() = default;
  ~FileManager();

  FileManager(const FileManager&) = delete;
  FileManager& operator=(const FileManager&) = delete;

  /// Replaces the Vfs (default: Vfs::Default()). Call before Create/Open.
  void set_vfs(Vfs* vfs);

  void set_io_failure_handler(IoFailureHandler handler);

  /// Creates a new database file (truncating any existing one) and writes an
  /// initial master record.
  Status Create(const std::string& path);

  /// Opens an existing database file and loads the newest valid master.
  /// If one master slot is corrupt and the other valid, the corrupt slot is
  /// rewritten from the survivor. Abandons a free list whose head stamp is
  /// untrustworthy after a crash, then durably bumps the master sequence so
  /// this incarnation's free stamps carry a fresh epoch.
  Status Open(const std::string& path);

  Status Close();
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Reads physical page `ppn` into `buf` (kPageSize bytes). Concurrent
  /// calls overlap their I/O (positioned read outside the mutex).
  Status ReadPage(PhysPageId ppn, void* buf);

  /// Writes `buf` (kPageSize bytes) to physical page `ppn`. Concurrent
  /// calls overlap their I/O (positioned write outside the mutex).
  Status WritePage(PhysPageId ppn, const void* buf);

  /// Allocates a physical page (reusing the free list, else growing the
  /// file). The page contents are undefined until written.
  StatusOr<PhysPageId> AllocPage();

  /// Returns `ppn` to the free list.
  Status FreePage(PhysPageId ppn);

  /// Number of physical pages currently in the file.
  uint32_t page_count() const;

  /// Current in-memory master record (mutable fields are updated by the
  /// caller before WriteMaster).
  MasterRecord master() const;
  void set_master(const MasterRecord& m);

  /// Persists the master record atomically (alternating slot) and syncs.
  Status WriteMaster();

  /// Writes `blob` into a chain of freshly allocated pages; returns the head
  /// page. Does NOT free any previous chain — call FreeMetaBlob on the old
  /// head after the master record pointing at the new chain is durable.
  StatusOr<PhysPageId> WriteMetaBlob(const std::string& blob);

  /// Frees a chain written by WriteMetaBlob. No-op for kInvalidPhysPage.
  Status FreeMetaBlob(PhysPageId head);

  /// Reads back a blob chain written by WriteMetaBlob.
  StatusOr<std::string> ReadMetaBlob(PhysPageId head);

  /// Durably flushes the file (fsync through the Vfs).
  Status Sync();

 private:
  Status ReadPageLocked(PhysPageId ppn, void* buf);
  Status WritePageLocked(PhysPageId ppn, const void* buf);
  Status SyncLocked();
  StatusOr<PhysPageId> AllocPageLocked();
  Status FreePageLocked(PhysPageId ppn);
  Status WriteMasterLocked();

  /// Runs `op`, retrying kIOError failures with bounded backoff. After the
  /// first exhausted retry the manager fails fast (no more retries or
  /// sleeps) so teardown after a dead disk stays cheap. Write-path
  /// exhaustion notifies the io-failure handler.
  Status RetryIo(bool is_write, const std::function<Status()>& op);

  mutable std::mutex mu_;
  Vfs* vfs_ = Vfs::Default();
  std::unique_ptr<File> file_;
  std::string path_;
  MasterRecord master_;
  // Sequence of the master this incarnation opened from. A free stamp with
  // this exact epoch was written by the dead incarnation after that master
  // became durable — its links are not covered by the recovered state, so
  // allocation rejects it. 0 (Create) never matches a real stamp.
  uint64_t stale_free_epoch_ = 0;
  // Atomic because RetryIo runs outside mu_ on the concurrent page-I/O path.
  std::atomic<bool> fail_fast_{false};
  IoFailureHandler io_failure_handler_;
};

}  // namespace sedna

#endif  // SEDNA_SAS_FILE_MANAGER_H_
