// Physical storage: a single database file of fixed-size pages.
//
// Page 0 and page 1 hold two copies of the master record (double-slot,
// sequence-numbered, CRC-protected) so that master updates are atomic: the
// newest valid slot wins. All other pages are allocated/freed through a
// free list. The file manager also provides a "meta blob" facility used to
// persist the page directory and catalog across restarts: a blob is written
// into a chain of freshly allocated pages and the chain head is recorded in
// the master record.

#ifndef SEDNA_SAS_FILE_MANAGER_H_
#define SEDNA_SAS_FILE_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "sas/xptr.h"

namespace sedna {

/// Mutable database-wide metadata persisted in the master record.
struct MasterRecord {
  uint64_t sequence = 0;          // bumped on every master write
  uint32_t page_count = 2;        // physical pages in the file (incl. masters)
  PhysPageId free_list_head = kInvalidPhysPage;
  PhysPageId directory_blob = kInvalidPhysPage;  // page-directory snapshot
  PhysPageId catalog_blob = kInvalidPhysPage;    // storage catalog snapshot
  uint64_t checkpoint_lsn = 0;    // WAL position of the persistent snapshot
  uint64_t next_timestamp = 1;    // transaction timestamp high-water mark
};

/// Owns the database file. Thread-safe; all methods may be called
/// concurrently (a single mutex serializes file access — the buffer manager
/// above batches I/O, so this is not the bottleneck in the benchmarks).
class FileManager {
 public:
  FileManager() = default;
  ~FileManager();

  FileManager(const FileManager&) = delete;
  FileManager& operator=(const FileManager&) = delete;

  /// Creates a new database file (truncating any existing one) and writes an
  /// initial master record.
  Status Create(const std::string& path);

  /// Opens an existing database file and loads the newest valid master.
  Status Open(const std::string& path);

  Status Close();
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Reads physical page `ppn` into `buf` (kPageSize bytes).
  Status ReadPage(PhysPageId ppn, void* buf);

  /// Writes `buf` (kPageSize bytes) to physical page `ppn`.
  Status WritePage(PhysPageId ppn, const void* buf);

  /// Allocates a physical page (reusing the free list, else growing the
  /// file). The page contents are undefined until written.
  StatusOr<PhysPageId> AllocPage();

  /// Returns `ppn` to the free list.
  Status FreePage(PhysPageId ppn);

  /// Number of physical pages currently in the file.
  uint32_t page_count() const;

  /// Current in-memory master record (mutable fields are updated by the
  /// caller before WriteMaster).
  MasterRecord master() const;
  void set_master(const MasterRecord& m);

  /// Persists the master record atomically (alternating slot).
  Status WriteMaster();

  /// Writes `blob` into a chain of freshly allocated pages; returns the head
  /// page. The previous chain at `*head` (if any) is freed first.
  StatusOr<PhysPageId> WriteMetaBlob(const std::string& blob,
                                     PhysPageId old_head);

  /// Reads back a blob chain written by WriteMetaBlob.
  StatusOr<std::string> ReadMetaBlob(PhysPageId head);

  /// Flushes OS buffers to disk.
  Status Sync();

 private:
  Status ReadPageLocked(PhysPageId ppn, void* buf);
  Status WritePageLocked(PhysPageId ppn, const void* buf);
  StatusOr<PhysPageId> AllocPageLocked();
  Status FreePageLocked(PhysPageId ppn);
  Status WriteMasterLocked();

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  MasterRecord master_;
};

}  // namespace sedna

#endif  // SEDNA_SAS_FILE_MANAGER_H_
