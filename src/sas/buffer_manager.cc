#include "sas/buffer_manager.h"

#include <cstring>

#include "common/logging.h"

namespace sedna {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    bm_ = other.bm_;
    frame_ = other.frame_;
    other.bm_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::MarkDirty() {
  SEDNA_DCHECK(frame_ != nullptr);
  bm_->MarkDirty(frame_);
}

void PageGuard::Release() {
  if (frame_ != nullptr) {
    bm_->Unpin(frame_);
    frame_ = nullptr;
    bm_ = nullptr;
  }
}

BufferManager::BufferManager(FileManager* file, PageResolver* resolver,
                             size_t frame_count)
    : file_(file),
      resolver_(resolver),
      pages_per_layer_slots_(1u << 12) {
  SEDNA_CHECK(frame_count >= 4) << "buffer pool too small";
  pool_ = std::make_unique<uint8_t[]>(frame_count * kPageSize);
  frames_.resize(frame_count);
  for (size_t i = 0; i < frame_count; ++i) {
    frames_[i].data = pool_.get() + i * kPageSize;
  }
}

BufferManager::~BufferManager() {
  Status st = FlushAll();
  if (!st.ok()) {
    SEDNA_LOG(kError) << "FlushAll on shutdown failed: " << st.ToString();
  }
}

StatusOr<PageGuard> BufferManager::Pin(Xptr addr, const ResolveContext& ctx,
                                       bool for_write) {
  Xptr base = addr.PageBase();
  bool shared_ctx =
      !for_write && ctx.txn_id == 0 && ctx.snapshot_ts == 0;
  // Resolve OUTSIDE the pool lock: the resolver (version manager) takes its
  // own lock and may call back into the buffer manager on other paths.
  PhysPageId target_ppn;
  PhysPageId copied_from = kInvalidPhysPage;
  if (for_write) {
    SEDNA_ASSIGN_OR_RETURN(PageResolver::WriteTarget wt,
                           resolver_->ResolveForWrite(base.raw, ctx));
    target_ppn = wt.ppn;
    copied_from = wt.copied_from;
  } else {
    SEDNA_ASSIGN_OR_RETURN(target_ppn, resolver_->Resolve(base.raw, ctx));
  }
  std::lock_guard<std::mutex> lock(mu_);
  SEDNA_ASSIGN_OR_RETURN(Frame * f,
                         FetchLocked(base, ctx, for_write, shared_ctx,
                                     target_ppn, copied_from));
  f->pin_count++;
  return PageGuard(this, f);
}

StatusOr<void*> BufferManager::Deref(Xptr addr) {
  Xptr base = addr.PageBase();
  SEDNA_ASSIGN_OR_RETURN(PhysPageId ppn,
                         resolver_->Resolve(base.raw, ResolveContext{}));
  std::lock_guard<std::mutex> lock(mu_);
  SEDNA_ASSIGN_OR_RETURN(
      Frame * f, FetchLocked(base, ResolveContext{}, /*for_write=*/false,
                             /*install_shared=*/true, ppn,
                             kInvalidPhysPage));
  return static_cast<void*>(f->data + addr.PageOffset());
}

void* BufferManager::DerefSlow(Xptr addr) {
  StatusOr<void*> p = Deref(addr);
  SEDNA_CHECK(p.ok()) << "deref of " << addr.ToString()
                      << " failed: " << p.status().ToString();
  return *p;
}

StatusOr<Frame*> BufferManager::FetchLocked(Xptr page_base,
                                            const ResolveContext& ctx,
                                            bool for_write,
                                            bool install_shared,
                                            PhysPageId target_ppn,
                                            PhysPageId copied_from) {
  auto it = by_ppn_.find(target_ppn);
  if (it != by_ppn_.end()) {
    Frame* f = it->second;
    f->referenced = true;
    stats_.hits++;
    if (install_shared && f->owner_txn == 0) InstallSharedLocked(f);
    return f;
  }

  stats_.faults++;
  SEDNA_ASSIGN_OR_RETURN(Frame * f, VictimLocked());

  if (copied_from != kInvalidPhysPage) {
    // Fresh copy-on-write version: seed it from the previous version.
    auto src_it = by_ppn_.find(copied_from);
    if (src_it != by_ppn_.end()) {
      std::memcpy(f->data, src_it->second->data, kPageSize);
    } else {
      SEDNA_RETURN_IF_ERROR(file_->ReadPage(copied_from, f->data));
    }
    f->dirty = true;
  } else {
    SEDNA_RETURN_IF_ERROR(file_->ReadPage(target_ppn, f->data));
    f->dirty = false;
  }

  f->lpid = page_base.raw;
  f->ppn = target_ppn;
  f->owner_txn =
      (for_write && copied_from != kInvalidPhysPage) ? ctx.txn_id : 0;
  // A page reached through a private write target stays private to its
  // transaction even on re-fetch after eviction.
  if (for_write && ctx.txn_id != 0 && copied_from == kInvalidPhysPage) {
    // Could be either an in-place write (non-MVCC) or a re-fetch of the
    // txn's existing version; both are safe to keep shared=0 owner only if
    // no other txn resolves to this ppn. The resolver guarantees private
    // versions are returned only to their owner, so mark ownership.
    f->owner_txn = ctx.txn_id;
  }
  f->referenced = true;
  by_ppn_[target_ppn] = f;
  if (install_shared && f->owner_txn == 0) InstallSharedLocked(f);
  return f;
}

StatusOr<Frame*> BufferManager::VictimLocked() {
  // Clock replacement: second chance on the referenced bit; pinned frames
  // are skipped. Two sweeps guarantee progress if any frame is unpinned.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame* f = &frames_[clock_hand_];
    clock_hand_ = (clock_hand_ + 1) % n;
    if (f->pin_count > 0) continue;
    if (f->referenced) {
      f->referenced = false;
      continue;
    }
    if (f->lpid != 0) {
      stats_.evictions++;
      if (f->dirty) {
        SEDNA_RETURN_IF_ERROR(WriteBackLocked(f));
      }
      RemoveSharedLocked(f);
      by_ppn_.erase(f->ppn);
      f->lpid = 0;
      f->ppn = kInvalidPhysPage;
      f->owner_txn = 0;
    }
    return f;
  }
  return Status::ResourceExhausted("all buffer frames pinned");
}

Status BufferManager::WriteBackLocked(Frame* f) {
  stats_.writebacks++;
  SEDNA_RETURN_IF_ERROR(file_->WritePage(f->ppn, f->data));
  f->dirty = false;
  return Status::OK();
}

void BufferManager::InstallSharedLocked(Frame* f) {
  Xptr base(f->lpid);
  uint32_t layer = base.layer();
  uint32_t idx = base.PageIndex();
  if (idx >= pages_per_layer_slots_) return;  // outside fast-map coverage
  if (layer >= layer_tables_.size()) {
    layer_tables_.resize(layer + 1);
  }
  if (layer_tables_[layer].empty()) {
    layer_tables_[layer].assign(pages_per_layer_slots_, nullptr);
  }
  layer_tables_[layer][idx] = f;
}

void BufferManager::RemoveSharedLocked(Frame* f) {
  if (f->lpid == 0) return;
  Xptr base(f->lpid);
  uint32_t layer = base.layer();
  uint32_t idx = base.PageIndex();
  if (layer < layer_tables_.size() && !layer_tables_[layer].empty() &&
      idx < pages_per_layer_slots_ && layer_tables_[layer][idx] == f) {
    layer_tables_[layer][idx] = nullptr;
  }
}

void BufferManager::InvalidateShared(LogicalPageId lpid) {
  std::lock_guard<std::mutex> lock(mu_);
  Xptr base(lpid);
  uint32_t layer = base.layer();
  uint32_t idx = base.PageIndex();
  if (layer < layer_tables_.size() && !layer_tables_[layer].empty() &&
      idx < pages_per_layer_slots_) {
    layer_tables_[layer][idx] = nullptr;
  }
}

void BufferManager::PublishTxnFrames(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.lpid != 0 && f.owner_txn == txn_id) {
      f.owner_txn = 0;
    }
  }
}

void BufferManager::DiscardPhysical(PhysPageId ppn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_ppn_.find(ppn);
  if (it == by_ppn_.end()) return;
  Frame* f = it->second;
  SEDNA_CHECK(f->pin_count == 0) << "discarding pinned page";
  RemoveSharedLocked(f);
  by_ppn_.erase(it);
  f->lpid = 0;
  f->ppn = kInvalidPhysPage;
  f->owner_txn = 0;
  f->dirty = false;
}

Status BufferManager::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.lpid != 0 && f.dirty) {
      SEDNA_RETURN_IF_ERROR(WriteBackLocked(&f));
    }
  }
  return file_->Sync();
}

Status BufferManager::FlushTxn(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.lpid != 0 && f.dirty && f.owner_txn == txn_id) {
      SEDNA_RETURN_IF_ERROR(WriteBackLocked(&f));
    }
  }
  return Status::OK();
}

BufferStats BufferManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = BufferStats{};
}

void BufferManager::Unpin(Frame* f) {
  std::lock_guard<std::mutex> lock(mu_);
  SEDNA_DCHECK(f->pin_count > 0);
  f->pin_count--;
}

void BufferManager::MarkDirty(Frame* f) {
  std::lock_guard<std::mutex> lock(mu_);
  f->dirty = true;
}

}  // namespace sedna
