#include "sas/buffer_manager.h"

#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/metrics.h"

namespace sedna {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    bm_ = other.bm_;
    frame_ = other.frame_;
    other.bm_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::MarkDirty() {
  SEDNA_DCHECK(frame_ != nullptr);
  bm_->MarkDirty(frame_);
}

void PageGuard::Release() {
  if (frame_ != nullptr) {
    bm_->Unpin(frame_);
    frame_ = nullptr;
    bm_ = nullptr;
  }
}

BufferManager::BufferManager(FileManager* file, PageResolver* resolver,
                             size_t frame_count, BufferPoolOptions pool_options)
    : file_(file),
      resolver_(resolver),
      global_lock_compat_(pool_options.global_lock_compat),
      frame_count_(frame_count) {
  SEDNA_CHECK(frame_count >= 4) << "buffer pool too small";
  pool_ = std::make_unique<uint8_t[]>(frame_count * kPageSize);
  frames_ = std::make_unique<Frame[]>(frame_count);

  if (pool_options.shard_count != 0) {
    shard_count_ = pool_options.shard_count;
    SEDNA_CHECK((shard_count_ & (shard_count_ - 1)) == 0)
        << "shard_count must be a power of two";
    SEDNA_CHECK(shard_count_ <= frame_count)
        << "more shards than buffer frames";
  } else {
    // Auto: largest power of two with >= 16 frames per shard, capped at 16,
    // so tiny pools (unit tests) collapse to a single shard and keep the
    // classic whole-pool eviction semantics.
    shard_count_ = 1;
    while (shard_count_ < 16 && (shard_count_ * 2) * 16 <= frame_count) {
      shard_count_ *= 2;
    }
  }

  shards_ = std::make_unique<Shard[]>(shard_count_);
  const size_t base = frame_count / shard_count_;
  const size_t rem = frame_count % shard_count_;
  size_t next = 0;
  for (size_t s = 0; s < shard_count_; ++s) {
    Shard& sh = shards_[s];
    sh.frame_begin = next;
    sh.frame_count = base + (s < rem ? 1 : 0);
    next += sh.frame_count;
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  fault_latency_ns_ = reg.histogram("buffer.fault_ns");
  for (size_t s = 0; s < shard_count_; ++s) {
    Shard& sh = shards_[s];
    for (size_t i = 0; i < sh.frame_count; ++i) {
      Frame& f = frames_[sh.frame_begin + i];
      f.data = pool_.get() + (sh.frame_begin + i) * kPageSize;
      f.home_shard = static_cast<uint32_t>(s);
    }
    // Registry counters are resolved once here; instances with the same
    // shard index share names and accumulate process-wide.
    std::string prefix = "buffer.shard" + std::to_string(s) + ".";
    sh.metrics.requests = reg.counter(prefix + "requests");
    sh.metrics.hits = reg.counter(prefix + "hits");
    sh.metrics.faults = reg.counter(prefix + "faults");
    sh.metrics.coalesced_fills = reg.counter(prefix + "coalesced_fills");
    sh.metrics.evictions = reg.counter(prefix + "evictions");
    sh.metrics.writebacks = reg.counter(prefix + "writebacks");
  }

  layer_tables_ =
      std::make_unique<std::atomic<LayerTable*>[]>(kMaxLayers);
  for (uint32_t i = 0; i < kMaxLayers; ++i) {
    layer_tables_[i].store(nullptr, std::memory_order_relaxed);
  }
}

BufferManager::~BufferManager() {
  Status st = FlushAll();
  if (!st.ok()) {
    SEDNA_LOG(kError) << "FlushAll on shutdown failed: " << st.ToString();
  }
}

StatusOr<PageGuard> BufferManager::Pin(Xptr addr, const ResolveContext& ctx,
                                       bool for_write) {
  Xptr base = addr.PageBase();
  bool shared_ctx = !for_write && ctx.txn_id == 0 && ctx.snapshot_ts == 0;
  // Resolve OUTSIDE any pool lock: the resolver (version manager) takes its
  // own lock and may call back into the buffer manager on other paths.
  PhysPageId target_ppn;
  PhysPageId copied_from = kInvalidPhysPage;
  if (for_write) {
    SEDNA_ASSIGN_OR_RETURN(PageResolver::WriteTarget wt,
                           resolver_->ResolveForWrite(base.raw, ctx));
    target_ppn = wt.ppn;
    copied_from = wt.copied_from;
  } else {
    SEDNA_ASSIGN_OR_RETURN(target_ppn, resolver_->Resolve(base.raw, ctx));
  }
  SEDNA_ASSIGN_OR_RETURN(Frame * f,
                         FetchPinned(base, ctx, for_write, shared_ctx,
                                     target_ppn, copied_from));
  return PageGuard(this, f);
}

StatusOr<void*> BufferManager::Deref(Xptr addr) {
  Xptr base = addr.PageBase();
  SEDNA_ASSIGN_OR_RETURN(PhysPageId ppn,
                         resolver_->Resolve(base.raw, ResolveContext{}));
  SEDNA_ASSIGN_OR_RETURN(
      Frame * f, FetchPinned(base, ResolveContext{}, /*for_write=*/false,
                             /*install_shared=*/true, ppn, kInvalidPhysPage));
  // CHECKP discipline: the borrowed pointer is only stable while no other
  // thread can trigger an eviction (see the header comment).
  void* p = static_cast<void*>(f->data + addr.PageOffset());
  Unpin(f);
  return p;
}

void* BufferManager::DerefSlow(Xptr addr) {
  StatusOr<void*> p = Deref(addr);
  SEDNA_CHECK(p.ok()) << "deref of " << addr.ToString()
                      << " failed: " << p.status().ToString();
  return *p;
}

StatusOr<Frame*> BufferManager::FetchPinned(Xptr page_base,
                                            const ResolveContext& ctx,
                                            bool for_write,
                                            bool install_shared,
                                            PhysPageId target_ppn,
                                            PhysPageId copied_from) {
  Shard& sh = shards_[ShardOf(target_ppn)];
  bool counted_fault = false;
  bool counted_coalesce = false;
  sh.stats.requests.fetch_add(1, std::memory_order_relaxed);
  sh.metrics.requests->Add();
  std::unique_lock<std::mutex> lock(sh.mu);
  for (;;) {
    auto it = sh.by_ppn.find(target_ppn);
    if (it != sh.by_ppn.end()) {
      Frame* f = it->second;
      uint32_t st = f->state.load(std::memory_order_relaxed);
      if (st == kFrameLoading || st == kFrameEvicting) {
        // Someone else's fill or writeback is in flight; wait and re-check
        // (the fill may fail, in which case the mapping disappears).
        if (st == kFrameLoading && !counted_coalesce) {
          // Our fetch piggybacks on another thread's fill of this page:
          // the coalescing the state-word protocol exists to provide.
          counted_coalesce = true;
          sh.stats.coalesced_fills.fetch_add(1, std::memory_order_relaxed);
          sh.metrics.coalesced_fills->Add();
        }
        sh.cv.wait(lock);
        continue;
      }
      if (!counted_fault) {
        sh.stats.hits.fetch_add(1, std::memory_order_relaxed);
        sh.metrics.hits->Add();
      }
      f->referenced.store(true, std::memory_order_relaxed);
      f->pin_count.fetch_add(1, std::memory_order_relaxed);
      if (install_shared && f->owner_txn == 0) InstallShared(f);
      return f;
    }

    if (!counted_fault) {
      counted_fault = true;
      sh.stats.faults.fetch_add(1, std::memory_order_relaxed);
      sh.metrics.faults->Add();
    }

    // Clock replacement over this shard's slice: second chance on the
    // referenced bit; pinned and in-transition frames are skipped. Two
    // sweeps guarantee progress if any frame is claimable.
    Frame* victim = nullptr;
    bool any_in_flight = false;
    const size_t n = sh.frame_count;
    for (size_t step = 0; step < 2 * n && victim == nullptr; ++step) {
      Frame* f = &frames_[sh.frame_begin + sh.clock_hand];
      sh.clock_hand = (sh.clock_hand + 1) % n;
      uint32_t st = f->state.load(std::memory_order_relaxed);
      if (st == kFrameLoading || st == kFrameEvicting) {
        any_in_flight = true;
        continue;
      }
      // Acquire pairs with the release decrement in Unpin: once we observe
      // pin_count == 0 here (under the shard lock that gates new pins), the
      // unpinning thread's page writes are visible to us.
      if (f->pin_count.load(std::memory_order_acquire) > 0) continue;
      if (f->referenced.load(std::memory_order_relaxed)) {
        f->referenced.store(false, std::memory_order_relaxed);
        continue;
      }
      victim = f;
    }
    if (victim == nullptr) {
      if (any_in_flight) {
        // A fill or writeback will complete and notify; retry then.
        sh.cv.wait(lock);
        continue;
      }
      return Status::ResourceExhausted("all buffer frames pinned");
    }

    if (victim->state.load(std::memory_order_relaxed) == kFrameResident &&
        victim->dirty.load(std::memory_order_acquire)) {
      // Dirty victim: write it back with the shard UNLOCKED so other hits
      // and faults in this shard proceed. kFrameEvicting keeps the by_ppn
      // mapping alive, so a concurrent fetch of the evicting page waits on
      // the condvar instead of re-reading stale bytes from disk.
      sh.stats.writebacks.fetch_add(1, std::memory_order_relaxed);
      sh.metrics.writebacks->Add();
      victim->state.store(kFrameEvicting, std::memory_order_relaxed);
      PhysPageId wb_ppn = victim->ppn;
      lock.unlock();
      Status wst = file_->WritePage(wb_ppn, victim->data);
      lock.lock();
      victim->state.store(kFrameResident, std::memory_order_relaxed);
      if (!wst.ok()) {
        sh.cv.notify_all();
        return wst;
      }
      victim->dirty.store(false, std::memory_order_relaxed);
      sh.cv.notify_all();
      continue;  // page may have been faulted in meanwhile: re-check
    }

    // Claim the victim and fill it with the shard unlocked.
    if (victim->state.load(std::memory_order_relaxed) == kFrameResident) {
      sh.stats.evictions.fetch_add(1, std::memory_order_relaxed);
      sh.metrics.evictions->Add();
      RemoveShared(victim);
      sh.by_ppn.erase(victim->ppn);
    }
    victim->lpid = page_base.raw;
    victim->ppn = target_ppn;
    // A page reached through a write target stays bound to its transaction
    // even on re-fetch after eviction: the resolver hands private versions
    // only to their owner, so a write fetch with a txn implies ownership.
    victim->owner_txn = (for_write && ctx.txn_id != 0) ? ctx.txn_id : 0;
    victim->dirty.store(copied_from != kInvalidPhysPage,
                        std::memory_order_relaxed);
    victim->referenced.store(true, std::memory_order_relaxed);
    victim->pin_count.store(1, std::memory_order_relaxed);
    victim->state.store(kFrameLoading, std::memory_order_relaxed);
    sh.by_ppn[target_ppn] = victim;
    lock.unlock();
    Status fst;
    {
      LatencyTimer timer(fault_latency_ns_);
      fst = FillFrame(victim, target_ppn, copied_from);
    }
    lock.lock();
    if (!fst.ok()) {
      // Roll the claim back so waiters see the page gone and re-fault.
      sh.by_ppn.erase(target_ppn);
      victim->lpid = 0;
      victim->ppn = kInvalidPhysPage;
      victim->owner_txn = 0;
      victim->dirty.store(false, std::memory_order_relaxed);
      victim->referenced.store(false, std::memory_order_relaxed);
      victim->pin_count.store(0, std::memory_order_relaxed);
      victim->state.store(kFrameEmpty, std::memory_order_relaxed);
      sh.cv.notify_all();
      return fst;
    }
    victim->state.store(kFrameResident, std::memory_order_release);
    if (install_shared && victim->owner_txn == 0) InstallShared(victim);
    uint64_t owner = victim->owner_txn;
    sh.cv.notify_all();
    lock.unlock();
    // Outside the shard lock: txn_mu_ is a leaf and PublishTxnFrames /
    // FlushTxn never hold it while taking a shard lock, but keeping the
    // two strictly un-nested makes the ordering trivially sound.
    if (owner != 0) RecordTxnFrame(owner, victim);
    return victim;
  }
}

Status BufferManager::FillFrame(Frame* f, PhysPageId target_ppn,
                                PhysPageId copied_from) {
  if (copied_from == kInvalidPhysPage) {
    return file_->ReadPage(target_ppn, f->data);
  }
  // Fresh copy-on-write version: prefer the resident source frame — it may
  // be dirty, i.e. newer than its on-disk image. The version DAG is acyclic
  // (a version is never seeded from a version seeded from it), so taking the
  // source's shard lock here cannot deadlock with another fill.
  Shard& src_sh = shards_[ShardOf(copied_from)];
  {
    std::unique_lock<std::mutex> lock(src_sh.mu);
    for (;;) {
      auto it = src_sh.by_ppn.find(copied_from);
      if (it == src_sh.by_ppn.end()) break;
      Frame* src = it->second;
      if (src->state.load(std::memory_order_relaxed) == kFrameLoading) {
        src_sh.cv.wait(lock);
        continue;
      }
      // Resident or evicting: contents are valid either way.
      std::memcpy(f->data, src->data, kPageSize);
      return Status::OK();
    }
  }
  return file_->ReadPage(copied_from, f->data);
}

Status BufferManager::WriteBackLocked(Shard& sh, Frame* f) {
  sh.stats.writebacks.fetch_add(1, std::memory_order_relaxed);
  sh.metrics.writebacks->Add();
  SEDNA_RETURN_IF_ERROR(file_->WritePage(f->ppn, f->data));
  f->dirty.store(false, std::memory_order_relaxed);
  return Status::OK();
}

void BufferManager::InstallShared(Frame* f) {
  Xptr base(f->lpid);
  uint32_t layer = base.layer();
  if (layer >= kMaxLayers) return;  // beyond fast-map coverage; Deref works
  uint32_t idx = base.PageIndex();
  std::lock_guard<std::mutex> lk(table_mu_);
  LayerTable* t = layer_tables_[layer].load(std::memory_order_relaxed);
  if (t == nullptr || idx >= t->slots) {
    // Grow (or create) the per-layer table. The old table stays allocated
    // until shutdown so lock-free readers never chase freed memory.
    uint32_t slots = t != nullptr ? t->slots : kInitialLayerSlots;
    while (slots <= idx) slots *= 2;
    auto bigger = std::make_unique<LayerTable>(slots);
    if (t != nullptr) {
      for (uint32_t i = 0; i < t->slots; ++i) {
        bigger->entries[i].store(t->entries[i].load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
      }
    }
    layer_tables_[layer].store(bigger.get(), std::memory_order_release);
    t = bigger.get();
    owned_tables_.push_back(std::move(bigger));
  }
  t->entries[idx].store(f, std::memory_order_release);
}

void BufferManager::RemoveShared(Frame* f) {
  if (f->lpid == 0) return;
  Xptr base(f->lpid);
  uint32_t layer = base.layer();
  if (layer >= kMaxLayers) return;
  uint32_t idx = base.PageIndex();
  std::lock_guard<std::mutex> lk(table_mu_);
  LayerTable* t = layer_tables_[layer].load(std::memory_order_relaxed);
  if (t != nullptr && idx < t->slots &&
      t->entries[idx].load(std::memory_order_relaxed) == f) {
    t->entries[idx].store(nullptr, std::memory_order_release);
  }
}

void BufferManager::InvalidateShared(LogicalPageId lpid) {
  Xptr base(lpid);
  uint32_t layer = base.layer();
  if (layer >= kMaxLayers) return;
  uint32_t idx = base.PageIndex();
  std::lock_guard<std::mutex> lk(table_mu_);
  LayerTable* t = layer_tables_[layer].load(std::memory_order_relaxed);
  if (t != nullptr && idx < t->slots) {
    t->entries[idx].store(nullptr, std::memory_order_release);
  }
}

void BufferManager::RecordTxnFrame(uint64_t txn_id, Frame* f) {
  std::lock_guard<std::mutex> lk(txn_mu_);
  txn_frames_[txn_id].push_back(f);
}

void BufferManager::PublishTxnFrames(uint64_t txn_id) {
  std::vector<Frame*> list;
  {
    std::lock_guard<std::mutex> lk(txn_mu_);
    auto it = txn_frames_.find(txn_id);
    if (it == txn_frames_.end()) return;
    list = std::move(it->second);
    txn_frames_.erase(it);
  }
  for (Frame* f : list) {
    Shard& sh = shards_[f->home_shard];
    std::lock_guard<std::mutex> lock(sh.mu);
    // Validate: the frame may have been evicted and re-claimed for another
    // page since it was recorded. Identity fields are shard-lock-stable.
    if (f->lpid != 0 && f->owner_txn == txn_id) {
      f->owner_txn = 0;
    }
  }
}

void BufferManager::ForgetTxn(uint64_t txn_id) {
  std::lock_guard<std::mutex> lk(txn_mu_);
  txn_frames_.erase(txn_id);
}

void BufferManager::DiscardPhysical(PhysPageId ppn) {
  Shard& sh = shards_[ShardOf(ppn)];
  std::unique_lock<std::mutex> lock(sh.mu);
  for (;;) {
    auto it = sh.by_ppn.find(ppn);
    if (it == sh.by_ppn.end()) return;
    Frame* f = it->second;
    uint32_t st = f->state.load(std::memory_order_relaxed);
    if (st == kFrameLoading || st == kFrameEvicting) {
      sh.cv.wait(lock);
      continue;
    }
    SEDNA_CHECK(f->pin_count.load(std::memory_order_acquire) == 0)
        << "discarding pinned page";
    RemoveShared(f);
    sh.by_ppn.erase(it);
    f->lpid = 0;
    f->ppn = kInvalidPhysPage;
    f->owner_txn = 0;
    f->dirty.store(false, std::memory_order_relaxed);
    f->referenced.store(false, std::memory_order_relaxed);
    f->state.store(kFrameEmpty, std::memory_order_relaxed);
    sh.cv.notify_all();
    return;
  }
}

Status BufferManager::FlushAll(bool skip_pinned) {
  for (size_t s = 0; s < shard_count_; ++s) {
    Shard& sh = shards_[s];
    std::unique_lock<std::mutex> lock(sh.mu);
    for (size_t i = 0; i < sh.frame_count; ++i) {
      Frame* f = &frames_[sh.frame_begin + i];
      while (true) {
        uint32_t st = f->state.load(std::memory_order_relaxed);
        if (st != kFrameLoading && st != kFrameEvicting) break;
        sh.cv.wait(lock);
      }
      // A pinned frame may be mutated by the pin holder mid-write; only the
      // fuzzy pre-flush can encounter that (writers quiesced otherwise), and
      // it skips such frames. New pins are gated by the shard lock held
      // here, so an unpinned frame stays unmutated through the write.
      if (skip_pinned &&
          f->pin_count.load(std::memory_order_acquire) > 0) {
        continue;
      }
      if (f->lpid != 0 && f->dirty.load(std::memory_order_acquire)) {
        SEDNA_RETURN_IF_ERROR(WriteBackLocked(sh, f));
      }
    }
  }
  return file_->Sync();
}

Status BufferManager::FlushTxn(uint64_t txn_id) {
  std::vector<Frame*> list;
  {
    std::lock_guard<std::mutex> lk(txn_mu_);
    auto it = txn_frames_.find(txn_id);
    if (it == txn_frames_.end()) return Status::OK();
    list = it->second;  // copy: the list survives for PublishTxnFrames
  }
  for (Frame* f : list) {
    Shard& sh = shards_[f->home_shard];
    std::unique_lock<std::mutex> lock(sh.mu);
    for (;;) {
      if (f->lpid == 0 || f->owner_txn != txn_id) break;  // stale entry
      uint32_t st = f->state.load(std::memory_order_relaxed);
      if (st == kFrameLoading || st == kFrameEvicting) {
        sh.cv.wait(lock);
        continue;
      }
      if (f->dirty.load(std::memory_order_acquire)) {
        SEDNA_RETURN_IF_ERROR(WriteBackLocked(sh, f));
      }
      break;
    }
  }
  return Status::OK();
}

size_t BufferManager::PinnedFrameCount() const {
  size_t pinned = 0;
  for (size_t i = 0; i < frame_count_; ++i) {
    if (frames_[i].pin_count.load(std::memory_order_acquire) > 0) pinned++;
  }
  return pinned;
}

BufferStats BufferManager::stats() const {
  BufferStats s;
  for (size_t i = 0; i < shard_count_; ++i) {
    BufferStats sh = shard_stats(i);
    s.requests += sh.requests;
    s.hits += sh.hits;
    s.faults += sh.faults;
    s.coalesced_fills += sh.coalesced_fills;
    s.evictions += sh.evictions;
    s.writebacks += sh.writebacks;
  }
  return s;
}

BufferStats BufferManager::shard_stats(size_t shard) const {
  SEDNA_DCHECK(shard < shard_count_);
  const AtomicBufferStats& a = shards_[shard].stats;
  BufferStats s;
  s.requests = a.requests.load(std::memory_order_relaxed);
  s.hits = a.hits.load(std::memory_order_relaxed);
  s.faults = a.faults.load(std::memory_order_relaxed);
  s.coalesced_fills = a.coalesced_fills.load(std::memory_order_relaxed);
  s.evictions = a.evictions.load(std::memory_order_relaxed);
  s.writebacks = a.writebacks.load(std::memory_order_relaxed);
  return s;
}

void BufferManager::ResetStats() {
  for (size_t i = 0; i < shard_count_; ++i) {
    AtomicBufferStats& a = shards_[i].stats;
    a.requests.store(0, std::memory_order_relaxed);
    a.hits.store(0, std::memory_order_relaxed);
    a.faults.store(0, std::memory_order_relaxed);
    a.coalesced_fills.store(0, std::memory_order_relaxed);
    a.evictions.store(0, std::memory_order_relaxed);
    a.writebacks.store(0, std::memory_order_relaxed);
  }
}

void BufferManager::Unpin(Frame* f) {
  if (global_lock_compat_) {
    std::lock_guard<std::mutex> lock(shards_[f->home_shard].mu);
    SEDNA_DCHECK(f->pin_count.load(std::memory_order_relaxed) > 0);
    f->pin_count.fetch_sub(1, std::memory_order_release);
    return;
  }
  // Lock-free: release pairs with the evictor's acquire load (see
  // FetchPinned) so our page writes are visible before the frame is reused.
  SEDNA_DCHECK(f->pin_count.load(std::memory_order_relaxed) > 0);
  f->pin_count.fetch_sub(1, std::memory_order_release);
}

void BufferManager::MarkDirty(Frame* f) {
  if (global_lock_compat_) {
    std::lock_guard<std::mutex> lock(shards_[f->home_shard].mu);
    f->dirty.store(true, std::memory_order_release);
    return;
  }
  f->dirty.store(true, std::memory_order_release);
}

}  // namespace sedna
