// Buffer manager for the Sedna Address Space (paper Section 4.2, Figure 4).
//
// The paper maps each SAS layer into the process VAS on equality basis and
// lets hardware page faults trigger buffer-manager fills. This reproduction
// substitutes a *software-checked* mapping (see DESIGN.md §2): every layer
// has a frame table indexed by page-index; dereferencing an Xptr is
//
//     frame = layer_table[layer][offset >> kPageSizeBits]   (two loads)
//     return frame->data + (offset & kPageOffsetMask)       (mask + add)
//
// with a miss ("software page fault") invoking the fault handler that reads
// the page from disk into a frame, evicting with a clock policy if needed.
// The key property claimed by the paper is preserved: the pointer
// representation is identical in memory and on disk, so there is no
// swizzling step on either the read or the write path.
//
// Concurrency contract:
//   * `Pin`/`Unpin` (via PageGuard) are thread-safe and are the only way to
//     hold page memory across potentially-faulting calls.
//   * `Deref`/`DerefFast` return a pointer that is valid only until the next
//     potentially-faulting call on any thread; multi-threaded code must use
//     guards. This mirrors Sedna's CHECKP discipline.

#ifndef SEDNA_SAS_BUFFER_MANAGER_H_
#define SEDNA_SAS_BUFFER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sas/file_manager.h"
#include "sas/page_directory.h"
#include "sas/xptr.h"

namespace sedna {

class BufferManager;

/// One in-memory page frame.
struct Frame {
  uint8_t* data = nullptr;      // kPageSize bytes
  LogicalPageId lpid = 0;       // logical page held (0 = frame empty)
  PhysPageId ppn = kInvalidPhysPage;  // physical page backing the contents
  uint64_t owner_txn = 0;       // 0 = shared (last-committed) version
  int pin_count = 0;
  bool dirty = false;
  bool referenced = false;      // clock bit
};

/// RAII pin on a page. While alive, the page cannot be evicted and `data()`
/// stays valid.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferManager* bm, Frame* frame) : bm_(bm), frame_(frame) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return frame_ != nullptr; }
  uint8_t* data() const { return frame_->data; }
  LogicalPageId lpid() const { return frame_->lpid; }

  /// Marks the page dirty (must be called after modifying `data()`).
  void MarkDirty();

  /// Releases the pin early.
  void Release();

 private:
  BufferManager* bm_ = nullptr;
  Frame* frame_ = nullptr;
};

/// Counters exposed for tests and the benchmark harness.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t faults = 0;       // software page faults (misses)
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
};

class BufferManager {
 public:
  /// `frame_count` pages of buffer pool. `resolver` translates logical to
  /// physical pages (plain directory or MVCC version manager).
  BufferManager(FileManager* file, PageResolver* resolver, size_t frame_count);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pins the page containing `addr` for the given context. If `for_write`,
  /// the resolver may create a copy-on-write version (MVCC) and the guard's
  /// frame is bound to that version.
  StatusOr<PageGuard> Pin(Xptr addr, const ResolveContext& ctx,
                          bool for_write);

  /// Pins with the default (last-committed, non-transactional) context.
  StatusOr<PageGuard> Pin(Xptr addr, bool for_write = false) {
    return Pin(addr, ResolveContext{}, for_write);
  }

  /// Dereferences `addr` against the shared (last-committed) view, faulting
  /// the page in if necessary. Returned pointer valid until the next
  /// potentially-faulting call. Returns nullptr only on I/O error.
  StatusOr<void*> Deref(Xptr addr);

  /// Hot-path deref used by single-threaded query execution and benchmarks:
  /// two loads + mask + add on a hit; CHECK-fails on I/O errors.
  inline void* DerefFast(Xptr addr) {
    uint32_t layer = addr.layer();
    uint32_t idx = addr.PageIndex();
    if (layer < layer_tables_.size() && idx < pages_per_layer_slots_ &&
        !layer_tables_[layer].empty()) {
      Frame* f = layer_tables_[layer][idx];
      if (f != nullptr) {
        return f->data + addr.PageOffset();
      }
    }
    return DerefSlow(addr);
  }

  /// Transfers ownership of a committed transaction's version frames to the
  /// shared view (called by the version manager at commit, after rebinding).
  void PublishTxnFrames(uint64_t txn_id);

  /// Drops the shared-view mapping for a logical page (called when its
  /// last-committed version changes, e.g. on transaction commit).
  void InvalidateShared(LogicalPageId lpid);

  /// Drops any resident frame holding physical page `ppn` without writing it
  /// back (called when a version is discarded on abort).
  void DiscardPhysical(PhysPageId ppn);

  /// Writes all dirty frames to disk.
  Status FlushAll();

  /// Writes dirty frames owned by `txn_id` (their versions) to disk.
  Status FlushTxn(uint64_t txn_id);

  BufferStats stats() const;
  void ResetStats();
  size_t frame_count() const { return frames_.size(); }

 private:
  friend class PageGuard;

  void* DerefSlow(Xptr addr);
  StatusOr<Frame*> FetchLocked(Xptr page_base, const ResolveContext& ctx,
                               bool for_write, bool install_shared,
                               PhysPageId target_ppn, PhysPageId copied_from);
  StatusOr<Frame*> VictimLocked();
  Status WriteBackLocked(Frame* f);
  void InstallSharedLocked(Frame* f);
  void RemoveSharedLocked(Frame* f);
  void Unpin(Frame* f);
  void MarkDirty(Frame* f);

  FileManager* file_;
  PageResolver* resolver_;

  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::unique_ptr<uint8_t[]> pool_;
  size_t clock_hand_ = 0;

  // Shared-view fast mapping: layer -> page-index -> frame. Grown lazily as
  // layers appear. Only holds frames with owner_txn == 0.
  std::vector<std::vector<Frame*>> layer_tables_;
  uint32_t pages_per_layer_slots_;

  // Residency index by physical page (covers private versions too).
  std::unordered_map<PhysPageId, Frame*> by_ppn_;

  BufferStats stats_;
};

}  // namespace sedna

#endif  // SEDNA_SAS_BUFFER_MANAGER_H_
