// Buffer manager for the Sedna Address Space (paper Section 4.2, Figure 4).
//
// The paper maps each SAS layer into the process VAS on equality basis and
// lets hardware page faults trigger buffer-manager fills. This reproduction
// substitutes a *software-checked* mapping (see DESIGN.md §2): every layer
// has a frame table indexed by page-index; dereferencing an Xptr is
//
//     frame = layer_table[layer][offset >> kPageSizeBits]   (two loads)
//     return frame->data + (offset & kPageOffsetMask)       (mask + add)
//
// with a miss ("software page fault") invoking the fault handler that reads
// the page from disk into a frame, evicting with a clock policy if needed.
// The key property claimed by the paper is preserved: the pointer
// representation is identical in memory and on disk, so there is no
// swizzling step on either the read or the write path.
//
// Concurrency protocol (multi-threaded throughput rework):
//
//   * The pool is split into up to 16 *shards*. Each shard owns a disjoint
//     slice of the frame array, its own clock hand, its own residency map
//     (physical page -> frame) and one mutex + condvar. A physical page is
//     homed on shard hash(ppn), so a fault, hit, or eviction touches exactly
//     one shard lock — there is no pool-global critical section anywhere on
//     the page access path.
//   * Each frame carries a *state word* (empty / loading / resident /
//     evicting). Page fills and dirty-victim writebacks run with NO shard
//     lock held: the filling thread claims the frame (state = loading, one
//     pin), inserts the residency mapping, drops the shard lock, does the
//     I/O, re-locks, publishes (state = resident) and wakes waiters. A
//     thread that finds a loading/evicting frame waits on the shard condvar
//     instead of re-reading the page, so concurrent faults to different
//     pages overlap their preads while faults to the same page coalesce
//     into one read.
//   * `pin_count`, `dirty`, `referenced` and the BufferStats counters are
//     atomics: `Unpin` (guard destruction) and `MarkDirty` are lock-free,
//     and the clock sweep reads them without taking other frames' locks.
//     Pinning happens under the home-shard lock, so an evictor that
//     observes pin_count == 0 under that lock can never race a new pin;
//     the release-decrement in Unpin paired with the acquire-load in the
//     clock sweep makes the unpinning thread's page writes visible to the
//     evicting thread.
//   * The shared-view fast map (`DerefFast`) is an array of per-layer
//     tables of atomic Frame*; lookups are entirely lock-free (two atomic
//     loads + mask + add). Tables grow dynamically — any page index is
//     covered, not just the first 4096 — by publishing a larger copy;
//     superseded tables are retired until shutdown so readers never touch
//     freed memory. All table *writes* (install / remove / invalidate /
//     growth) serialize on one small mutex; they only happen on fault,
//     eviction and commit paths.
//
// CHECKP discipline under multi-threading: `Deref`/`DerefFast` return a
// borrowed pointer that is only stable while no other thread can trigger an
// eviction — i.e. for single-threaded phases (query execution over a private
// engine, benchmarks, recovery). Any code that runs concurrently with other
// pool users MUST hold a PageGuard (`Pin`) across every access to page
// memory; the storage layer's StorageEnv::Read/Write helpers do exactly
// that. This mirrors Sedna's CHECKP macro, which re-validated a pointer
// before every block access for the same reason.

#ifndef SEDNA_SAS_BUFFER_MANAGER_H_
#define SEDNA_SAS_BUFFER_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "sas/file_manager.h"
#include "sas/page_directory.h"
#include "sas/xptr.h"

namespace sedna {

class BufferManager;

/// Lifecycle of a frame's contents. Transitions happen under the home-shard
/// mutex; fills and writebacks run unlocked while the state is
/// kFrameLoading / kFrameEvicting.
enum FrameState : uint32_t {
  kFrameEmpty = 0,     // holds no page
  kFrameLoading = 1,   // claimed; fill I/O in flight, contents undefined
  kFrameResident = 2,  // contents valid
  kFrameEvicting = 3,  // dirty-victim writeback in flight, contents valid
};

/// One in-memory page frame. `lpid`, `ppn` and `owner_txn` are guarded by
/// the home shard's mutex; the atomics are written lock-free (see the
/// protocol comment above).
struct Frame {
  uint8_t* data = nullptr;      // kPageSize bytes
  LogicalPageId lpid = 0;       // logical page held (0 = frame empty)
  PhysPageId ppn = kInvalidPhysPage;  // physical page backing the contents
  uint64_t owner_txn = 0;       // 0 = shared (last-committed) version
  uint32_t home_shard = 0;      // fixed at pool construction
  std::atomic<uint32_t> state{kFrameEmpty};
  std::atomic<int32_t> pin_count{0};
  std::atomic<bool> dirty{false};
  std::atomic<bool> referenced{false};  // clock bit
};

/// RAII pin on a page. While alive, the page cannot be evicted and `data()`
/// stays valid. Release (Unpin) and MarkDirty are lock-free.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferManager* bm, Frame* frame) : bm_(bm), frame_(frame) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return frame_ != nullptr; }
  uint8_t* data() const { return frame_->data; }
  LogicalPageId lpid() const { return frame_->lpid; }

  /// Marks the page dirty (must be called after modifying `data()`).
  void MarkDirty();

  /// Releases the pin early.
  void Release();

 private:
  BufferManager* bm_ = nullptr;
  Frame* frame_ = nullptr;
};

/// Counters exposed for tests and the benchmark harness. Maintained per
/// shard (see Shard::stats) and summed by stats(); every FetchPinned call
/// counts exactly one request and exactly one of {hit, fault}, so
/// `requests == hits + faults` is an invariant tests can assert.
struct BufferStats {
  uint64_t requests = 0;   // page lookups through FetchPinned (Pin/Deref)
  uint64_t hits = 0;
  uint64_t faults = 0;       // software page faults (misses)
  uint64_t coalesced_fills = 0;  // waited on another thread's in-flight fill
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
};

/// Pool tuning knobs.
struct BufferPoolOptions {
  /// Number of shards (power of two). 0 = auto: the largest power of two
  /// with at least 16 frames per shard, capped at 16. A tiny pool therefore
  /// degenerates to one shard, preserving single-shard eviction semantics.
  size_t shard_count = 0;

  /// Benchmark baseline: route Unpin/MarkDirty through the shard mutex as
  /// well, approximating the pre-rework single-global-mutex manager when
  /// combined with shard_count = 1. Never set in production code.
  bool global_lock_compat = false;
};

class BufferManager {
 public:
  /// `frame_count` pages of buffer pool. `resolver` translates logical to
  /// physical pages (plain directory or MVCC version manager).
  BufferManager(FileManager* file, PageResolver* resolver, size_t frame_count,
                BufferPoolOptions pool_options = {});
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pins the page containing `addr` for the given context. If `for_write`,
  /// the resolver may create a copy-on-write version (MVCC) and the guard's
  /// frame is bound to that version. Thread-safe. Note that with a sharded
  /// pool, ResourceExhausted means the page's *home shard* is out of
  /// unpinned frames.
  StatusOr<PageGuard> Pin(Xptr addr, const ResolveContext& ctx,
                          bool for_write);

  /// Pins with the default (last-committed, non-transactional) context.
  StatusOr<PageGuard> Pin(Xptr addr, bool for_write = false) {
    return Pin(addr, ResolveContext{}, for_write);
  }

  /// Dereferences `addr` against the shared (last-committed) view, faulting
  /// the page in if necessary. Returned pointer follows the CHECKP
  /// discipline described in the header comment. Returns nullptr only on
  /// I/O error.
  StatusOr<void*> Deref(Xptr addr);

  /// Hot-path deref used by single-threaded query execution and benchmarks:
  /// two lock-free atomic loads + mask + add on a hit; CHECK-fails on I/O
  /// errors. See the CHECKP note in the header comment for when the
  /// returned pointer is stable.
  inline void* DerefFast(Xptr addr) {
    uint32_t layer = addr.layer();
    if (layer < kMaxLayers) {
      LayerTable* t = layer_tables_[layer].load(std::memory_order_acquire);
      uint32_t idx = addr.PageIndex();
      if (t != nullptr && idx < t->slots) {
        Frame* f = t->entries[idx].load(std::memory_order_acquire);
        if (f != nullptr) {
          // Feed the clock without dirtying the cache line on every hit.
          if (!f->referenced.load(std::memory_order_relaxed)) {
            f->referenced.store(true, std::memory_order_relaxed);
          }
          return f->data + addr.PageOffset();
        }
      }
    }
    return DerefSlow(addr);
  }

  /// Transfers ownership of a committed transaction's version frames to the
  /// shared view (called by the version manager at commit, after rebinding).
  /// Walks the per-transaction frame list maintained at fetch time, not the
  /// whole pool.
  void PublishTxnFrames(uint64_t txn_id);

  /// Drops the bookkeeping for a transaction that will never publish or
  /// flush (called on abort). No frame contents are touched.
  void ForgetTxn(uint64_t txn_id);

  /// Drops the shared-view mapping for a logical page (called when its
  /// last-committed version changes, e.g. on transaction commit).
  void InvalidateShared(LogicalPageId lpid);

  /// Drops any resident frame holding physical page `ppn` without writing it
  /// back (called when a version is discarded on abort).
  void DiscardPhysical(PhysPageId ppn);

  /// Writes all dirty frames to disk. Callers must have quiesced writers
  /// (checkpoint, shutdown): pages pinned for write are flushed as-is.
  /// With `skip_pinned` (the fuzzy checkpoint pre-flush, which runs while
  /// update transactions are still mutating pinned pages), frames with a
  /// live pin are left for the post-drain flush — writing them here would
  /// race with the pin holder's in-place updates and be re-dirtied anyway.
  Status FlushAll(bool skip_pinned = false);

  /// Writes dirty frames owned by `txn_id` (their versions) to disk, using
  /// the per-transaction frame list.
  Status FlushTxn(uint64_t txn_id);

  /// Totals across all shards (this instance only; the process-wide
  /// MetricsRegistry accumulates across instances).
  BufferStats stats() const;
  /// Counters for one shard — concurrency tests use these to check that
  /// work actually spread over shards.
  BufferStats shard_stats(size_t shard) const;
  void ResetStats();
  size_t frame_count() const { return frame_count_; }
  size_t shard_count() const { return shard_count_; }

  /// Frames currently pinned (pin_count > 0). With all guards dropped this
  /// must be zero — the torture suite asserts it after killing statements
  /// at arbitrary points to prove no pin leaks.
  size_t PinnedFrameCount() const;

 private:
  friend class PageGuard;

  /// Per-layer shared-view fast map: page-index -> frame, lock-free to read.
  struct LayerTable {
    explicit LayerTable(uint32_t n)
        : slots(n), entries(new std::atomic<Frame*>[n]) {
      for (uint32_t i = 0; i < n; ++i) {
        entries[i].store(nullptr, std::memory_order_relaxed);
      }
    }
    const uint32_t slots;
    std::unique_ptr<std::atomic<Frame*>[]> entries;
  };

  struct AtomicBufferStats {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> faults{0};
    std::atomic<uint64_t> coalesced_fills{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> writebacks{0};
  };

  /// Registry counters for one shard, looked up once at pool construction
  /// so the hot path is a cached-pointer fetch_add (see common/metrics.h).
  struct ShardCounters {
    Counter* requests = nullptr;
    Counter* hits = nullptr;
    Counter* faults = nullptr;
    Counter* coalesced_fills = nullptr;
    Counter* evictions = nullptr;
    Counter* writebacks = nullptr;
  };

  /// One pool shard: a slice of the frame array plus its residency index.
  struct alignas(64) Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<PhysPageId, Frame*> by_ppn;
    size_t frame_begin = 0;
    size_t frame_count = 0;
    size_t clock_hand = 0;  // offset within [frame_begin, +frame_count)
    AtomicBufferStats stats;   // instance-local, reset by ResetStats()
    ShardCounters metrics;     // process-wide registry, never reset here
  };

  static constexpr uint32_t kMaxLayers = 512;
  static constexpr uint32_t kInitialLayerSlots = 1u << 12;

  size_t ShardOf(PhysPageId ppn) const {
    // Multiplicative hash so consecutive physical pages spread over shards.
    return (static_cast<uint64_t>(ppn) * 2654435761ull >> 16) &
           (shard_count_ - 1);
  }

  void* DerefSlow(Xptr addr);

  /// Looks up / faults `target_ppn` and returns the frame with one pin
  /// already taken on behalf of the caller.
  StatusOr<Frame*> FetchPinned(Xptr page_base, const ResolveContext& ctx,
                               bool for_write, bool install_shared,
                               PhysPageId target_ppn, PhysPageId copied_from);

  /// Fills a claimed (kFrameLoading) frame: disk read, or copy-on-write
  /// seed from the resident source frame / disk. Runs with no locks held.
  Status FillFrame(Frame* f, PhysPageId target_ppn, PhysPageId copied_from);

  void InstallShared(Frame* f);   // shard lock held; takes table_mu_
  void RemoveShared(Frame* f);    // shard lock held; takes table_mu_
  void RecordTxnFrame(uint64_t txn_id, Frame* f);
  Status WriteBackLocked(Shard& sh, Frame* f);
  void Unpin(Frame* f);
  void MarkDirty(Frame* f);

  FileManager* file_;
  PageResolver* resolver_;
  const bool global_lock_compat_;

  size_t frame_count_ = 0;
  std::unique_ptr<Frame[]> frames_;
  std::unique_ptr<uint8_t[]> pool_;

  size_t shard_count_ = 1;
  std::unique_ptr<Shard[]> shards_;

  // Shared-view fast mapping: layer -> page-index -> frame. Entry loads are
  // lock-free; growth and all entry stores serialize on table_mu_. Retired
  // tables stay allocated until destruction so readers never chase freed
  // memory.
  std::unique_ptr<std::atomic<LayerTable*>[]> layer_tables_;
  std::mutex table_mu_;
  std::vector<std::unique_ptr<LayerTable>> owned_tables_;

  // Per-transaction frame lists (satellite of PublishTxnFrames/FlushTxn):
  // appended on fault of a transaction-owned version, validated against the
  // frame's current identity when consumed, dropped on publish/forget.
  std::mutex txn_mu_;
  std::unordered_map<uint64_t, std::vector<Frame*>> txn_frames_;

  // Fault (fill I/O) latency, recorded into the process-wide registry.
  Histogram* fault_latency_ns_ = nullptr;
};

}  // namespace sedna

#endif  // SEDNA_SAS_BUFFER_MANAGER_H_
