#include "sas/xptr.h"

namespace sedna {

std::string Xptr::ToString() const {
  if (is_null()) return "null";
  return "L" + std::to_string(layer()) + ":" + std::to_string(offset());
}

}  // namespace sedna
