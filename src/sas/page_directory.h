// Logical page directory: maps SAS logical pages (layer, page-index) to
// physical pages in the database file, and allocates logical address space.
//
// The directory is the seam where page-level multiversioning (Section 6.1 of
// the paper) plugs in: the transaction layer's VersionManager implements the
// `PageResolver` interface so that a reader resolves a logical page to the
// physical version its snapshot should see, while the plain directory below
// implements the single-version case.

#ifndef SEDNA_SAS_PAGE_DIRECTORY_H_
#define SEDNA_SAS_PAGE_DIRECTORY_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sas/file_manager.h"
#include "sas/xptr.h"

namespace sedna {

/// Per-access context passed to the resolver: identifies the transaction
/// (for its own uncommitted versions) and the snapshot timestamp it reads.
struct ResolveContext {
  uint64_t txn_id = 0;         // 0 = non-transactional / system access
  uint64_t snapshot_ts = 0;    // 0 = read last committed
  bool read_only = false;
};

/// Resolves logical pages to physical pages. Implemented by
/// SimplePageDirectory (one version) and by txn::VersionManager (MVCC).
class PageResolver {
 public:
  virtual ~PageResolver() = default;

  /// Physical page currently backing `lpid` for this context.
  virtual StatusOr<PhysPageId> Resolve(LogicalPageId lpid,
                                       const ResolveContext& ctx) = 0;

  /// Physical page a write by `ctx.txn_id` should go to. With MVCC this may
  /// create a new version (copy-on-write); the returned `copied_from` is the
  /// physical page whose contents must be copied into the new version first,
  /// or kInvalidPhysPage if none.
  struct WriteTarget {
    PhysPageId ppn = kInvalidPhysPage;
    PhysPageId copied_from = kInvalidPhysPage;
  };
  virtual StatusOr<WriteTarget> ResolveForWrite(LogicalPageId lpid,
                                                const ResolveContext& ctx) = 0;
};

/// Allocates logical pages (layer address space) and maintains the
/// single-version logical→physical map. Serializable to a meta blob so the
/// mapping survives restarts.
class SimplePageDirectory : public PageResolver {
 public:
  explicit SimplePageDirectory(FileManager* file) : file_(file) {}

  /// Allocates a fresh logical page backed by a fresh physical page.
  /// Returns the page-base Xptr.
  StatusOr<Xptr> AllocLogicalPage();

  /// Frees the logical page and its physical backing.
  Status FreeLogicalPage(Xptr page_base);

  /// Rebinds `lpid` to a different physical page (used when committing a
  /// new version in the single-version fallback, and by recovery).
  Status Rebind(LogicalPageId lpid, PhysPageId ppn);

  /// True if the logical page is currently mapped.
  bool Contains(LogicalPageId lpid) const;

  size_t size() const;

  // PageResolver:
  StatusOr<PhysPageId> Resolve(LogicalPageId lpid,
                               const ResolveContext& ctx) override;
  StatusOr<WriteTarget> ResolveForWrite(LogicalPageId lpid,
                                        const ResolveContext& ctx) override;

  /// Serializes the full mapping + allocator state.
  std::string Serialize() const;
  Status Deserialize(const std::string& blob);

  /// Enumerates all (lpid, ppn) pairs (used by hot backup).
  std::vector<std::pair<LogicalPageId, PhysPageId>> Entries() const;

 private:
  mutable std::mutex mu_;
  FileManager* file_;
  std::unordered_map<LogicalPageId, PhysPageId> map_;
  // Logical address-space allocator state: bump pointer + free list.
  uint32_t next_layer_ = kFirstLayer;
  uint32_t next_page_in_layer_ = 0;
  std::vector<uint64_t> free_lpids_;
  // Pages per layer; layers are far larger in principle (2^32 bytes) but a
  // modest default keeps the per-layer frame tables small.
  uint32_t pages_per_layer_ = 1u << 12;  // 4096 pages = 64 MiB per layer
};

}  // namespace sedna

#endif  // SEDNA_SAS_PAGE_DIRECTORY_H_
