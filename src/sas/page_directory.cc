#include "sas/page_directory.h"

#include "common/coding.h"
#include "common/logging.h"

namespace sedna {

StatusOr<Xptr> SimplePageDirectory::AllocLogicalPage() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t lpid;
  if (!free_lpids_.empty()) {
    lpid = free_lpids_.back();
    free_lpids_.pop_back();
  } else {
    if (next_page_in_layer_ >= pages_per_layer_) {
      next_layer_++;
      next_page_in_layer_ = 0;
    }
    if (next_layer_ == 0) {  // wrapped past 2^32 layers
      return Status::ResourceExhausted("logical address space exhausted");
    }
    Xptr base(next_layer_,
              next_page_in_layer_ << kPageSizeBits);
    next_page_in_layer_++;
    lpid = base.raw;
  }
  lock.unlock();
  SEDNA_ASSIGN_OR_RETURN(PhysPageId ppn, file_->AllocPage());
  lock.lock();
  map_[lpid] = ppn;
  return Xptr(lpid);
}

Status SimplePageDirectory::FreeLogicalPage(Xptr page_base) {
  SEDNA_DCHECK(page_base.PageOffset() == 0);
  PhysPageId ppn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(page_base.raw);
    if (it == map_.end()) {
      return Status::NotFound("logical page not mapped: " +
                              page_base.ToString());
    }
    ppn = it->second;
    map_.erase(it);
    free_lpids_.push_back(page_base.raw);
  }
  return file_->FreePage(ppn);
}

Status SimplePageDirectory::Rebind(LogicalPageId lpid, PhysPageId ppn) {
  std::lock_guard<std::mutex> lock(mu_);
  map_[lpid] = ppn;
  return Status::OK();
}

bool SimplePageDirectory::Contains(LogicalPageId lpid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.count(lpid) > 0;
}

size_t SimplePageDirectory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

StatusOr<PhysPageId> SimplePageDirectory::Resolve(LogicalPageId lpid,
                                                  const ResolveContext&) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(lpid);
  if (it == map_.end()) {
    return Status::NotFound("logical page not mapped: " +
                            Xptr(lpid).ToString());
  }
  return it->second;
}

StatusOr<PageResolver::WriteTarget> SimplePageDirectory::ResolveForWrite(
    LogicalPageId lpid, const ResolveContext&) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(lpid);
  if (it == map_.end()) {
    return Status::NotFound("logical page not mapped: " +
                            Xptr(lpid).ToString());
  }
  // Single-version directory: writes go to the page in place.
  return WriteTarget{it->second, kInvalidPhysPage};
}

std::string SimplePageDirectory::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string blob;
  PutFixed32(&blob, next_layer_);
  PutFixed32(&blob, next_page_in_layer_);
  PutFixed32(&blob, pages_per_layer_);
  PutVarint64(&blob, free_lpids_.size());
  for (uint64_t lpid : free_lpids_) PutFixed64(&blob, lpid);
  PutVarint64(&blob, map_.size());
  for (const auto& [lpid, ppn] : map_) {
    PutFixed64(&blob, lpid);
    PutFixed32(&blob, ppn);
  }
  return blob;
}

Status SimplePageDirectory::Deserialize(const std::string& blob) {
  std::lock_guard<std::mutex> lock(mu_);
  Decoder d(blob);
  uint64_t nfree = 0, nmap = 0;
  if (!d.GetFixed32(&next_layer_) || !d.GetFixed32(&next_page_in_layer_) ||
      !d.GetFixed32(&pages_per_layer_) || !d.GetVarint64(&nfree)) {
    return Status::Corruption("bad page directory blob");
  }
  free_lpids_.clear();
  free_lpids_.reserve(nfree);
  for (uint64_t i = 0; i < nfree; ++i) {
    uint64_t lpid;
    if (!d.GetFixed64(&lpid)) return Status::Corruption("bad directory blob");
    free_lpids_.push_back(lpid);
  }
  if (!d.GetVarint64(&nmap)) return Status::Corruption("bad directory blob");
  map_.clear();
  map_.reserve(nmap);
  for (uint64_t i = 0; i < nmap; ++i) {
    uint64_t lpid;
    uint32_t ppn;
    if (!d.GetFixed64(&lpid) || !d.GetFixed32(&ppn)) {
      return Status::Corruption("bad directory blob");
    }
    map_[lpid] = ppn;
  }
  return Status::OK();
}

std::vector<std::pair<LogicalPageId, PhysPageId>>
SimplePageDirectory::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<LogicalPageId, PhysPageId>> out;
  out.reserve(map_.size());
  for (const auto& kv : map_) out.push_back(kv);
  return out;
}

}  // namespace sedna
