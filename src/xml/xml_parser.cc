#include "xml/xml_parser.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace sedna {

namespace {

class Parser {
 public:
  Parser(std::string_view input, const XmlParseOptions& options)
      : input_(input), options_(options) {}

  StatusOr<std::unique_ptr<XmlNode>> Parse() {
    auto doc = XmlNode::Document();
    SkipProlog();
    SEDNA_RETURN_IF_ERROR(ParseContent(doc.get(), /*top_level=*/true));
    SkipMisc();
    if (!AtEnd()) return Error("content after document element");
    bool has_element = false;
    for (const auto& c : doc->children) {
      if (c->kind == XmlKind::kElement) has_element = true;
    }
    if (!has_element) return Error("document has no root element");
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }
  char PeekAt(size_t k) const {
    return pos_ + k < input_.size() ? input_[pos_ + k] : '\0';
  }

  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      line_++;
      col_ = 1;
    } else {
      col_++;
    }
    return c;
  }

  bool Consume(std::string_view s) {
    if (input_.substr(pos_).substr(0, s.size()) != s) return false;
    for (size_t i = 0; i < s.size(); ++i) Advance();
    return true;
  }

  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("XML parse error at line " +
                                   std::to_string(line_) + ", column " +
                                   std::to_string(col_) + ": " + msg);
  }

  void SkipProlog() {
    SkipWs();
    if (Consume("<?xml")) {
      while (!AtEnd() && !Consume("?>")) Advance();
    }
    SkipMisc();
    // DOCTYPE: skipped without interpretation (internal subsets with nested
    // brackets are handled by bracket counting).
    if (Consume("<!DOCTYPE")) {
      int depth = 1;
      while (!AtEnd() && depth > 0) {
        char c = Advance();
        if (c == '<') depth++;
        if (c == '>') depth--;
        if (c == '[') {
          while (!AtEnd() && Peek() != ']') Advance();
        }
      }
    }
    SkipMisc();
  }

  void SkipMisc() {
    for (;;) {
      SkipWs();
      if (Consume("<!--")) {
        while (!AtEnd() && !Consume("-->")) Advance();
        continue;
      }
      if (Peek() == '<' && PeekAt(1) == '?') {
        while (!AtEnd() && !Consume("?>")) Advance();
        continue;
      }
      return;
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || static_cast<unsigned char>(c) >= 0x80;
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  StatusOr<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected a name");
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) name.push_back(Advance());
    return name;
  }

  Status AppendReference(std::string* out) {
    // Called after '&' has been consumed.
    if (Consume("amp;")) {
      *out += '&';
    } else if (Consume("lt;")) {
      *out += '<';
    } else if (Consume("gt;")) {
      *out += '>';
    } else if (Consume("quot;")) {
      *out += '"';
    } else if (Consume("apos;")) {
      *out += '\'';
    } else if (Peek() == '#') {
      Advance();
      int base = 10;
      if (Peek() == 'x' || Peek() == 'X') {
        Advance();
        base = 16;
      }
      uint32_t cp = 0;
      bool any = false;
      while (!AtEnd() && Peek() != ';') {
        char c = Advance();
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          return Error("bad character reference");
        }
        cp = cp * base + static_cast<uint32_t>(digit);
        any = true;
      }
      if (!any || !Consume(";")) return Error("bad character reference");
      AppendUtf8(cp, out);
    } else {
      return Error("unknown entity reference");
    }
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  StatusOr<std::string> ParseAttributeValue() {
    char quote = Peek();
    if (quote != '"' && quote != '\'') {
      return Error("attribute value must be quoted");
    }
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      char c = Advance();
      if (c == '&') {
        SEDNA_RETURN_IF_ERROR(AppendReference(&value));
      } else if (c == '<') {
        return Error("'<' in attribute value");
      } else {
        value.push_back(c);
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    Advance();  // closing quote
    return value;
  }

  /// Parses an element, assuming '<' and the name-start are next.
  Status ParseElement(XmlNode* parent) {
    Advance();  // '<'
    SEDNA_ASSIGN_OR_RETURN(std::string name, ParseName());
    XmlNode* elem = parent->AddElement(std::move(name));
    // Attributes.
    for (;;) {
      SkipWs();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') break;
      SEDNA_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWs();
      if (!Consume("=")) return Error("expected '=' after attribute name");
      SkipWs();
      SEDNA_ASSIGN_OR_RETURN(std::string attr_value, ParseAttributeValue());
      for (const auto& c : elem->children) {
        if (c->kind == XmlKind::kAttribute && c->name == attr_name) {
          return Error("duplicate attribute '" + attr_name + "'");
        }
      }
      elem->AddAttribute(std::move(attr_name), std::move(attr_value));
    }
    if (Consume("/>")) return Status::OK();
    if (!Consume(">")) return Error("expected '>'");
    SEDNA_RETURN_IF_ERROR(ParseContent(elem, /*top_level=*/false));
    // End tag.
    if (!Consume("</")) return Error("expected end tag for '" + elem->name + "'");
    SEDNA_ASSIGN_OR_RETURN(std::string end_name, ParseName());
    if (end_name != elem->name) {
      return Error("mismatched end tag '" + end_name + "', expected '" +
                   elem->name + "'");
    }
    SkipWs();
    if (!Consume(">")) return Error("expected '>' in end tag");
    return Status::OK();
  }

  Status ParseContent(XmlNode* parent, bool top_level) {
    std::string text;
    auto flush_text = [&]() {
      if (text.empty()) return;
      if (options_.strip_boundary_whitespace && IsXmlWhitespace(text)) {
        text.clear();
        return;
      }
      if (!top_level) parent->AddText(std::move(text));
      text.clear();
    };
    while (!AtEnd()) {
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          flush_text();
          return Status::OK();  // caller consumes the end tag
        }
        if (Consume("<!--")) {
          std::string comment;
          while (!AtEnd() && !Consume("-->")) comment.push_back(Advance());
          if (options_.keep_comments_and_pis) {
            flush_text();
            parent->Add(std::make_unique<XmlNode>(XmlKind::kComment, "",
                                                  std::move(comment)));
          }
          continue;
        }
        if (Consume("<![CDATA[")) {
          while (!AtEnd() && !Consume("]]>")) text.push_back(Advance());
          continue;
        }
        if (PeekAt(1) == '?') {
          Advance();
          Advance();
          SEDNA_ASSIGN_OR_RETURN(std::string pi_name, ParseName());
          std::string pi_value;
          while (!AtEnd() && !Consume("?>")) pi_value.push_back(Advance());
          if (options_.keep_comments_and_pis) {
            flush_text();
            parent->Add(std::make_unique<XmlNode>(
                XmlKind::kPi, std::move(pi_name),
                std::string(Trim(pi_value))));
          }
          continue;
        }
        flush_text();
        SEDNA_RETURN_IF_ERROR(ParseElement(parent));
        if (top_level) {
          // Only one document element allowed; trailing misc handled by
          // the caller.
          return Status::OK();
        }
        continue;
      }
      char c = Advance();
      if (c == '&') {
        SEDNA_RETURN_IF_ERROR(AppendReference(&text));
      } else {
        text.push_back(c);
      }
    }
    flush_text();
    if (!top_level) return Error("unexpected end of input inside element");
    return Status::OK();
  }

  std::string_view input_;
  XmlParseOptions options_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

StatusOr<std::unique_ptr<XmlNode>> ParseXml(std::string_view input,
                                            const XmlParseOptions& options) {
  Parser parser(input, options);
  return parser.Parse();
}

}  // namespace sedna
