// From-scratch non-validating XML parser.
//
// Supports the constructs the storage engine persists: elements, attributes,
// text, CDATA sections, comments, processing instructions, the XML
// declaration, and the five predefined entities plus numeric character
// references. Namespace prefixes are kept as part of names (Sedna-style
// "namespaces-lite"; full namespace resolution is out of the reproduced
// subset). DTDs are not supported.

#ifndef SEDNA_XML_XML_PARSER_H_
#define SEDNA_XML_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "xml/xml_tree.h"

namespace sedna {

struct XmlParseOptions {
  /// Drop text nodes that consist only of whitespace between elements
  /// (standard "boundary whitespace stripping" for data-centric documents).
  bool strip_boundary_whitespace = true;
  /// Keep comments and processing instructions in the tree.
  bool keep_comments_and_pis = false;
};

/// Parses `input` into a document tree. On error returns InvalidArgument
/// with a message containing the 1-based line and column.
StatusOr<std::unique_ptr<XmlNode>> ParseXml(
    std::string_view input, const XmlParseOptions& options = {});

}  // namespace sedna

#endif  // SEDNA_XML_XML_PARSER_H_
