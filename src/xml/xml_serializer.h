// Serialization of transient XML trees back to markup.

#ifndef SEDNA_XML_XML_SERIALIZER_H_
#define SEDNA_XML_XML_SERIALIZER_H_

#include <string>

#include "xml/xml_tree.h"

namespace sedna {

struct XmlSerializeOptions {
  /// Pretty-print with 2-space indentation; otherwise compact single line.
  bool indent = false;
};

/// Serializes `node` (document nodes emit their children).
std::string SerializeXml(const XmlNode& node,
                         const XmlSerializeOptions& options = {});

}  // namespace sedna

#endif  // SEDNA_XML_XML_SERIALIZER_H_
