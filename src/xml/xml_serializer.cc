#include "xml/xml_serializer.h"

#include "common/string_util.h"

namespace sedna {

namespace {

void Indent(std::string* out, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

void Serialize(const XmlNode& node, const XmlSerializeOptions& options,
               int depth, std::string* out) {
  switch (node.kind) {
    case XmlKind::kDocument:
      for (const auto& c : node.children) {
        Serialize(*c, options, depth, out);
        if (options.indent) out->push_back('\n');
      }
      if (options.indent && !out->empty() && out->back() == '\n') {
        out->pop_back();
      }
      return;
    case XmlKind::kText:
      *out += XmlEscape(node.value);
      return;
    case XmlKind::kComment:
      *out += "<!--" + node.value + "-->";
      return;
    case XmlKind::kPi:
      *out += "<?" + node.name;
      if (!node.value.empty()) *out += " " + node.value;
      *out += "?>";
      return;
    case XmlKind::kAttribute:
      // A free-standing attribute (query result item).
      *out += node.name + "=\"" + XmlEscape(node.value, true) + "\"";
      return;
    case XmlKind::kElement:
      break;
  }

  *out += "<" + node.name;
  bool has_content = false;
  bool element_only = true;
  for (const auto& c : node.children) {
    if (c->kind == XmlKind::kAttribute) {
      *out += " " + c->name + "=\"" + XmlEscape(c->value, true) + "\"";
    } else {
      has_content = true;
      if (c->kind != XmlKind::kElement && c->kind != XmlKind::kComment &&
          c->kind != XmlKind::kPi) {
        element_only = false;
      }
    }
  }
  if (!has_content) {
    *out += "/>";
    return;
  }
  *out += ">";
  bool pretty = options.indent && element_only;
  for (const auto& c : node.children) {
    if (c->kind == XmlKind::kAttribute) continue;
    if (pretty) Indent(out, depth + 1);
    Serialize(*c, options, depth + 1, out);
  }
  if (pretty) Indent(out, depth);
  *out += "</" + node.name + ">";
}

}  // namespace

std::string SerializeXml(const XmlNode& node,
                         const XmlSerializeOptions& options) {
  std::string out;
  Serialize(node, options, 0, &out);
  return out;
}

}  // namespace sedna
