#include "xml/xml_tree.h"

namespace sedna {

const char* XmlKindName(XmlKind kind) {
  switch (kind) {
    case XmlKind::kDocument:
      return "document";
    case XmlKind::kElement:
      return "element";
    case XmlKind::kAttribute:
      return "attribute";
    case XmlKind::kText:
      return "text";
    case XmlKind::kComment:
      return "comment";
    case XmlKind::kPi:
      return "processing-instruction";
  }
  return "unknown";
}

namespace {
void AppendStringValue(const XmlNode& node, std::string* out) {
  switch (node.kind) {
    case XmlKind::kText:
      *out += node.value;
      return;
    case XmlKind::kAttribute:
    case XmlKind::kComment:
    case XmlKind::kPi:
      return;  // not part of an element's string-value
    case XmlKind::kDocument:
    case XmlKind::kElement:
      for (const auto& c : node.children) AppendStringValue(*c, out);
      return;
  }
}
}  // namespace

std::string XmlNode::StringValue() const {
  switch (kind) {
    case XmlKind::kAttribute:
    case XmlKind::kText:
    case XmlKind::kComment:
    case XmlKind::kPi:
      return value;
    default: {
      std::string out;
      AppendStringValue(*this, &out);
      return out;
    }
  }
}

size_t XmlNode::SubtreeSize() const {
  size_t n = 1;
  for (const auto& c : children) n += c->SubtreeSize();
  return n;
}

bool XmlNode::DeepEquals(const XmlNode& other) const {
  if (kind != other.kind || name != other.name || value != other.value ||
      children.size() != other.children.size()) {
    return false;
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->DeepEquals(*other.children[i])) return false;
  }
  return true;
}

std::unique_ptr<XmlNode> XmlNode::Clone() const {
  auto copy = std::make_unique<XmlNode>(kind, name, value);
  copy->children.reserve(children.size());
  for (const auto& c : children) copy->children.push_back(c->Clone());
  return copy;
}

}  // namespace sedna
