// Transient in-memory XML tree.
//
// This is NOT the database storage format (see src/storage/). The tree is
// used (a) as the XML parser's output handed to the bulk loader, (b) as the
// representation of elements built by XQuery constructors before they are
// materialized, and (c) by tests as an easy-to-inspect value type.

#ifndef SEDNA_XML_XML_TREE_H_
#define SEDNA_XML_XML_TREE_H_

#include <memory>
#include <string>
#include <vector>

namespace sedna {

/// XML node kinds per the XQuery Data Model (XDM), restricted to the kinds
/// the storage engine persists.
enum class XmlKind : uint8_t {
  kDocument = 0,
  kElement = 1,
  kAttribute = 2,
  kText = 3,
  kComment = 4,
  kPi = 5,  // processing instruction
};

const char* XmlKindName(XmlKind kind);

/// A node in a transient XML tree. Children own their subtrees.
struct XmlNode {
  XmlKind kind = XmlKind::kElement;
  std::string name;   // element/attribute/PI name; empty otherwise
  std::string value;  // text/attribute/comment/PI content
  std::vector<std::unique_ptr<XmlNode>> children;  // incl. attribute nodes

  XmlNode() = default;
  XmlNode(XmlKind k, std::string n, std::string v = "")
      : kind(k), name(std::move(n)), value(std::move(v)) {}

  static std::unique_ptr<XmlNode> Document() {
    return std::make_unique<XmlNode>(XmlKind::kDocument, "");
  }
  static std::unique_ptr<XmlNode> Element(std::string name) {
    return std::make_unique<XmlNode>(XmlKind::kElement, std::move(name));
  }
  static std::unique_ptr<XmlNode> Attribute(std::string name,
                                            std::string value) {
    return std::make_unique<XmlNode>(XmlKind::kAttribute, std::move(name),
                                     std::move(value));
  }
  static std::unique_ptr<XmlNode> Text(std::string value) {
    return std::make_unique<XmlNode>(XmlKind::kText, "", std::move(value));
  }

  /// Appends a child and returns a borrowed pointer to it.
  XmlNode* Add(std::unique_ptr<XmlNode> child) {
    children.push_back(std::move(child));
    return children.back().get();
  }

  /// Convenience builders used heavily by generators and tests.
  XmlNode* AddElement(std::string n) { return Add(Element(std::move(n))); }
  XmlNode* AddText(std::string v) { return Add(Text(std::move(v))); }
  XmlNode* AddAttribute(std::string n, std::string v) {
    return Add(Attribute(std::move(n), std::move(v)));
  }

  /// XDM string-value: concatenation of descendant text (for elements and
  /// documents), or the node's own value otherwise.
  std::string StringValue() const;

  /// Number of nodes in this subtree including this node.
  size_t SubtreeSize() const;

  /// Deep structural equality (kind, name, value, children).
  bool DeepEquals(const XmlNode& other) const;

  std::unique_ptr<XmlNode> Clone() const;
};

}  // namespace sedna

#endif  // SEDNA_XML_XML_TREE_H_
