#include "storage/node_store.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace sedna {

namespace {

inline BlockHeader* HeaderOf(uint8_t* page) {
  return reinterpret_cast<BlockHeader*>(page);
}
inline const BlockHeader* HeaderOf(const uint8_t* page) {
  return reinterpret_cast<const BlockHeader*>(page);
}

uint16_t BlockCapacity(uint16_t desc_size) {
  return static_cast<uint16_t>((kPageSize - sizeof(BlockHeader)) / desc_size);
}

/// Reads the overflow-label reference stored in the inline label area.
Xptr OverflowRef(const NodeDescriptor* d) {
  uint64_t raw;
  std::memcpy(&raw, d->label_inline, sizeof(raw));
  return Xptr(raw);
}

void SetOverflowRef(NodeDescriptor* d, Xptr ref) {
  std::memcpy(d->label_inline, &ref.raw, sizeof(ref.raw));
}

}  // namespace

// ---------------------------------------------------------------------------
// Labels
// ---------------------------------------------------------------------------

StatusOr<NidLabel> NodeStore::ReadLabel(const OpCtx& ctx,
                                        const NodeDescriptor* d) const {
  NidLabel label;
  label.delimiter = d->delimiter;
  if (!d->has_overflow_label()) {
    label.prefix.assign(reinterpret_cast<const char*>(d->label_inline),
                        d->label_len);
    return label;
  }
  SEDNA_ASSIGN_OR_RETURN(label.prefix, text_->Read(ctx, OverflowRef(d)));
  return label;
}

Status NodeStore::WriteLabel(const OpCtx& ctx, NodeDescriptor* d,
                             const NidLabel& label) {
  d->delimiter = label.delimiter;
  d->label_len = static_cast<uint16_t>(label.prefix.size());
  if (label.prefix.size() <= kInlineLabelBytes) {
    d->flags &= static_cast<uint8_t>(~NodeDescriptor::kLabelOverflow);
    std::memcpy(d->label_inline, label.prefix.data(), label.prefix.size());
    return Status::OK();
  }
  // Long label: overflow into text storage. NOTE: text insertion may fault
  // pages, so the caller must re-establish its descriptor pointer; to avoid
  // that hazard we stash the prefix first and only then write the ref.
  SEDNA_ASSIGN_OR_RETURN(Xptr ref, text_->Insert(ctx, label.prefix));
  d->flags |= NodeDescriptor::kLabelOverflow;
  SetOverflowRef(d, ref);
  return Status::OK();
}

Status NodeStore::FreeLabel(const OpCtx& ctx, const NodeDescriptor* d) {
  if (d->has_overflow_label()) {
    return text_->Delete(ctx, OverflowRef(d));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

StatusOr<NodeInfo> NodeStore::Info(const OpCtx& ctx, Xptr addr) const {
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(addr.PageBase(), ctx));
  const uint8_t* page = guard.data();
  const BlockHeader* h = HeaderOf(page);
  if (h->magic != kNodeBlockMagic) {
    return Status::Corruption("address is not inside a node block: " +
                              addr.ToString());
  }
  const NodeDescriptor* d =
      reinterpret_cast<const NodeDescriptor*>(page + addr.PageOffset());
  NodeInfo info;
  info.addr = addr;
  info.schema_id = h->schema_id;
  info.kind = schema_->node(h->schema_id)->kind;
  info.handle = d->handle;
  info.parent_handle = d->parent_handle;
  info.left_sibling = d->left_sibling;
  info.right_sibling = d->right_sibling;
  SEDNA_ASSIGN_OR_RETURN(info.label, ReadLabel(ctx, d));
  return info;
}

StatusOr<NodeInfo> NodeStore::InfoByHandle(const OpCtx& ctx,
                                           Xptr handle) const {
  SEDNA_ASSIGN_OR_RETURN(Xptr addr, indirection_->Get(ctx, handle));
  return Info(ctx, addr);
}

StatusOr<std::string> NodeStore::Text(const OpCtx& ctx, Xptr addr) const {
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(addr.PageBase(), ctx));
  const uint8_t* page = guard.data();
  const BlockHeader* h = HeaderOf(page);
  XmlKind kind = schema_->node(h->schema_id)->kind;
  if (kind == XmlKind::kElement || kind == XmlKind::kDocument) {
    return std::string();
  }
  const NodeDescriptor* d =
      reinterpret_cast<const NodeDescriptor*>(page + addr.PageOffset());
  Xptr ref = TextPayloadOf(d)->text_ref;
  guard.Release();
  return text_->Read(ctx, ref);
}

StatusOr<Xptr> NodeStore::FirstOfSchema(const OpCtx& ctx,
                                        const SchemaNode* sn) const {
  if (!sn->first_block) return kNullXptr;
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(sn->first_block, ctx));
  const BlockHeader* h = HeaderOf(guard.data());
  if (h->first_slot == kNoSlot) return kNullXptr;
  return DescriptorXptr(sn->first_block, h->first_slot, h->desc_size);
}

StatusOr<std::vector<Xptr>> NodeStore::SchemaBlocks(
    const OpCtx& ctx, const SchemaNode* sn) const {
  std::vector<Xptr> out;
  Xptr block = sn->first_block;
  while (block) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(block, ctx));
    const BlockHeader* h = HeaderOf(guard.data());
    if (h->magic != kNodeBlockMagic) {
      return Status::Corruption("schema block chain reaches a non-node page: " +
                                block.ToString());
    }
    out.push_back(block);
    block = h->next_block;
  }
  return out;
}

Status NodeStore::ScanBlockNodes(const OpCtx& ctx, Xptr block,
                                 std::vector<Xptr>* out) const {
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(block, ctx));
  const uint8_t* page = guard.data();
  const BlockHeader* h = HeaderOf(page);
  if (h->magic != kNodeBlockMagic) {
    return Status::Corruption("morsel scan reached a non-node page: " +
                              block.ToString());
  }
  uint16_t slot = h->first_slot;
  uint16_t seen = 0;
  while (slot != kNoSlot) {
    if (++seen > h->capacity) {
      return Status::Corruption("in-block chain cycle in block " +
                                block.ToString());
    }
    Xptr addr = DescriptorXptr(block, slot, h->desc_size);
    out->push_back(addr);
    const NodeDescriptor* d =
        reinterpret_cast<const NodeDescriptor*>(page + addr.PageOffset());
    slot = d->next_in_block;
  }
  return Status::OK();
}

StatusOr<Xptr> NodeStore::NextSameSchema(const OpCtx& ctx, Xptr addr) const {
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(addr.PageBase(), ctx));
  const uint8_t* page = guard.data();
  const BlockHeader* h = HeaderOf(page);
  const NodeDescriptor* d =
      reinterpret_cast<const NodeDescriptor*>(page + addr.PageOffset());
  if (d->next_in_block != kNoSlot) {
    return DescriptorXptr(addr.PageBase(), d->next_in_block, h->desc_size);
  }
  Xptr next_block = h->next_block;
  guard.Release();
  if (!next_block) return kNullXptr;
  SEDNA_ASSIGN_OR_RETURN(PageGuard next_guard, env_->Read(next_block, ctx));
  const BlockHeader* nh = HeaderOf(next_guard.data());
  if (nh->first_slot == kNoSlot) return kNullXptr;
  return DescriptorXptr(next_block, nh->first_slot, nh->desc_size);
}

StatusOr<Xptr> NodeStore::PrevSameSchema(const OpCtx& ctx, Xptr addr) const {
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(addr.PageBase(), ctx));
  const uint8_t* page = guard.data();
  const BlockHeader* h = HeaderOf(page);
  const NodeDescriptor* d =
      reinterpret_cast<const NodeDescriptor*>(page + addr.PageOffset());
  if (d->prev_in_block != kNoSlot) {
    return DescriptorXptr(addr.PageBase(), d->prev_in_block, h->desc_size);
  }
  Xptr prev_block = h->prev_block;
  guard.Release();
  if (!prev_block) return kNullXptr;
  SEDNA_ASSIGN_OR_RETURN(PageGuard prev_guard, env_->Read(prev_block, ctx));
  const BlockHeader* ph = HeaderOf(prev_guard.data());
  if (ph->last_slot == kNoSlot) return kNullXptr;
  return DescriptorXptr(prev_block, ph->last_slot, ph->desc_size);
}

StatusOr<Xptr> NodeStore::ChildSlot(const OpCtx& ctx, Xptr elem,
                                    int slot) const {
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(elem.PageBase(), ctx));
  const uint8_t* page = guard.data();
  const BlockHeader* h = HeaderOf(page);
  if (slot < 0 || slot >= h->child_slots) return kNullXptr;
  const NodeDescriptor* d =
      reinterpret_cast<const NodeDescriptor*>(page + elem.PageOffset());
  return ElementChildSlots(d)[slot];
}

StatusOr<Xptr> NodeStore::FirstChild(const OpCtx& ctx, Xptr elem) const {
  // The doc-order first child is the child slot target with minimal label.
  std::vector<Xptr> candidates;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(elem.PageBase(), ctx));
    const uint8_t* page = guard.data();
    const BlockHeader* h = HeaderOf(page);
    const NodeDescriptor* d =
        reinterpret_cast<const NodeDescriptor*>(page + elem.PageOffset());
    const Xptr* slots = ElementChildSlots(d);
    for (uint16_t i = 0; i < h->child_slots; ++i) {
      if (slots[i]) candidates.push_back(slots[i]);
    }
  }
  Xptr best;
  NidLabel best_label;
  for (Xptr c : candidates) {
    SEDNA_ASSIGN_OR_RETURN(NodeInfo info, Info(ctx, c));
    if (!best || info.label.CompareDocOrder(best_label) < 0) {
      best = c;
      best_label = info.label;
    }
  }
  return best;
}

StatusOr<Xptr> NodeStore::NextSibSameSchema(const OpCtx& ctx,
                                            Xptr addr) const {
  Xptr parent_handle;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(addr.PageBase(), ctx));
    const NodeDescriptor* d = reinterpret_cast<const NodeDescriptor*>(
        guard.data() + addr.PageOffset());
    parent_handle = d->parent_handle;
  }
  SEDNA_ASSIGN_OR_RETURN(Xptr next, NextSameSchema(ctx, addr));
  if (!next) return kNullXptr;
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(next.PageBase(), ctx));
  const NodeDescriptor* d = reinterpret_cast<const NodeDescriptor*>(
      guard.data() + next.PageOffset());
  // Same-kind children of one parent are contiguous in the chain.
  if (d->parent_handle != parent_handle) return kNullXptr;
  return next;
}

StatusOr<Xptr> NodeStore::LastChild(const OpCtx& ctx, Xptr elem) const {
  std::vector<Xptr> firsts;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(elem.PageBase(), ctx));
    const uint8_t* page = guard.data();
    const BlockHeader* h = HeaderOf(page);
    const NodeDescriptor* d =
        reinterpret_cast<const NodeDescriptor*>(page + elem.PageOffset());
    const Xptr* slots = ElementChildSlots(d);
    for (uint16_t i = 0; i < h->child_slots; ++i) {
      if (slots[i]) firsts.push_back(slots[i]);
    }
  }
  Xptr best;
  NidLabel best_label;
  for (Xptr first : firsts) {
    // Walk to the last same-parent child of this kind.
    Xptr cur = first;
    for (;;) {
      SEDNA_ASSIGN_OR_RETURN(Xptr next, NextSibSameSchema(ctx, cur));
      if (!next) break;
      cur = next;
    }
    SEDNA_ASSIGN_OR_RETURN(NodeInfo info, Info(ctx, cur));
    if (!best || info.label.CompareDocOrder(best_label) > 0) {
      best = cur;
      best_label = info.label;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Block allocation and rewriting
// ---------------------------------------------------------------------------

StatusOr<Xptr> NodeStore::NewBlock(const OpCtx& ctx, SchemaNode* sn,
                                   uint16_t child_slots, Xptr prev) {
  uint16_t desc_size = DescriptorSize(sn->kind, child_slots);
  uint16_t capacity = BlockCapacity(desc_size);
  SEDNA_CHECK(capacity >= 2) << "schema fan-out too large for a block: "
                             << sn->Path();
  SEDNA_ASSIGN_OR_RETURN(Xptr page_base, env_->allocator->AllocPage(ctx));

  Xptr next;  // block that will follow the new one
  if (prev) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard prev_guard, env_->Write(prev, ctx));
    BlockHeader* ph = HeaderOf(prev_guard.data());
    next = ph->next_block;
    ph->next_block = page_base;
    prev_guard.MarkDirty();
  } else {
    next = sn->first_block;
  }
  if (next) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard next_guard, env_->Write(next, ctx));
    HeaderOf(next_guard.data())->prev_block = page_base;
    next_guard.MarkDirty();
  }

  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(page_base, ctx));
  uint8_t* page = guard.data();
  std::memset(page, 0, kPageSize);
  BlockHeader* h = HeaderOf(page);
  *h = BlockHeader{};
  h->schema_id = sn->id;
  h->self = page_base;
  h->prev_block = prev;
  h->next_block = next;
  h->desc_size = desc_size;
  h->child_slots = child_slots;
  h->capacity = capacity;
  guard.MarkDirty();

  if (!prev) sn->first_block = page_base;
  if (!next) sn->last_block = page_base;
  return page_base;
}

StatusOr<NodeStore::ChainPos> NodeStore::FindPosition(
    const OpCtx& ctx, SchemaNode* sn, const std::string& label_prefix) const {
  if (!sn->first_block) return ChainPos{kNullXptr, kNoSlot};

  // Fast path: appends (bulk loads, right-side inserts) target the last
  // block's tail.
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(sn->last_block, ctx));
    const uint8_t* page = guard.data();
    const BlockHeader* h = HeaderOf(page);
    if (h->last_slot != kNoSlot) {
      const NodeDescriptor* last = reinterpret_cast<const NodeDescriptor*>(
          page + sizeof(BlockHeader) +
          static_cast<size_t>(h->last_slot) * h->desc_size);
      SEDNA_ASSIGN_OR_RETURN(NidLabel last_label, ReadLabel(ctx, last));
      if (label_prefix > last_label.prefix) {
        return ChainPos{sn->last_block, h->last_slot};
      }
    } else {
      return ChainPos{sn->last_block, kNoSlot};
    }
  }

  // General path: find the first block whose last label exceeds the new
  // one, then scan its in-block chain for the predecessor.
  Xptr block = sn->first_block;
  while (block) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(block, ctx));
    const uint8_t* page = guard.data();
    const BlockHeader* h = HeaderOf(page);
    Xptr next_block = h->next_block;
    if (h->last_slot != kNoSlot) {
      const NodeDescriptor* last = reinterpret_cast<const NodeDescriptor*>(
          page + sizeof(BlockHeader) +
          static_cast<size_t>(h->last_slot) * h->desc_size);
      SEDNA_ASSIGN_OR_RETURN(NidLabel last_label, ReadLabel(ctx, last));
      if (label_prefix < last_label.prefix) {
        // Target block. Scan the chain for the predecessor.
        uint16_t pred = kNoSlot;
        uint16_t cur = h->first_slot;
        while (cur != kNoSlot) {
          const NodeDescriptor* d = reinterpret_cast<const NodeDescriptor*>(
              page + sizeof(BlockHeader) +
              static_cast<size_t>(cur) * h->desc_size);
          SEDNA_ASSIGN_OR_RETURN(NidLabel l, ReadLabel(ctx, d));
          if (l.prefix > label_prefix) break;
          pred = cur;
          cur = d->next_in_block;
        }
        return ChainPos{block, pred};
      }
    }
    if (!next_block) return ChainPos{block, h->last_slot};
    block = next_block;
  }
  return Status::Internal("unreachable: fell off block chain");
}

StatusOr<Xptr> NodeStore::AllocDescriptor(const OpCtx& ctx, SchemaNode* sn,
                                          ChainPos pos,
                                          const NidLabel& label) {
  if (!pos.block) {
    uint16_t arity = sn->kind == XmlKind::kElement ||
                             sn->kind == XmlKind::kDocument
                         ? static_cast<uint16_t>(sn->children.size())
                         : 0;
    SEDNA_ASSIGN_OR_RETURN(pos.block, NewBlock(ctx, sn, arity, kNullXptr));
    pos.pred_slot = kNoSlot;
  }

  for (int attempt = 0; attempt < 3; ++attempt) {
    {
      SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(pos.block, ctx));
      uint8_t* page = guard.data();
      BlockHeader* h = HeaderOf(page);
      // Integrity gate: a block whose header does not describe *this* page
      // (wrong magic or self pointer) or whose slot chains point outside
      // the slot array means the store is inconsistent — fail cleanly
      // instead of following a wild in-page pointer.
      if (h->magic != kNodeBlockMagic || h->self != pos.block) {
        return Status::Corruption(
            "node block " + pos.block.ToString() +
            " holds foreign content (magic " + std::to_string(h->magic) +
            ", self " + Xptr(h->self).ToString() + ")");
      }
      if ((h->free_head != kNoSlot && h->free_head >= h->capacity) ||
          (pos.pred_slot != kNoSlot && pos.pred_slot >= h->capacity) ||
          h->high_water > h->capacity) {
        return Status::Corruption("slot chain out of range in node block " +
                                  pos.block.ToString());
      }
      if (h->count < h->capacity) {
        uint16_t slot;
        if (h->free_head != kNoSlot) {
          slot = h->free_head;
          NodeDescriptor* freed = DescriptorAt(page, slot);
          h->free_head = freed->next_in_block;
        } else {
          slot = h->high_water++;
        }
        if (slot >= h->capacity) {
          return Status::Corruption("slot index out of range in node block " +
                                    pos.block.ToString());
        }
        NodeDescriptor* d = DescriptorAt(page, slot);
        std::memset(static_cast<void*>(d), 0, h->desc_size);
        d->next_in_block = kNoSlot;
        d->prev_in_block = kNoSlot;
        // Link into the in-block chain after pred_slot.
        if (pos.pred_slot == kNoSlot) {
          d->next_in_block = h->first_slot;
          if (h->first_slot != kNoSlot) {
            DescriptorAt(page, h->first_slot)->prev_in_block = slot;
          }
          h->first_slot = slot;
          if (h->last_slot == kNoSlot) h->last_slot = slot;
        } else {
          NodeDescriptor* pred = DescriptorAt(page, pos.pred_slot);
          if (pred->next_in_block != kNoSlot &&
              pred->next_in_block >= h->capacity) {
            return Status::Corruption(
                "descriptor chain out of range in node block " +
                pos.block.ToString());
          }
          d->next_in_block = pred->next_in_block;
          d->prev_in_block = pos.pred_slot;
          if (pred->next_in_block != kNoSlot) {
            DescriptorAt(page, pred->next_in_block)->prev_in_block = slot;
          }
          pred->next_in_block = slot;
          if (h->last_slot == pos.pred_slot) h->last_slot = slot;
        }
        h->count++;
        guard.MarkDirty();
        Xptr addr = DescriptorXptr(pos.block, slot, h->desc_size);
        guard.Release();
        // Write the label last: it may fault pages (overflow labels).
        SEDNA_ASSIGN_OR_RETURN(PageGuard again, env_->Write(pos.block, ctx));
        NodeDescriptor* d2 = reinterpret_cast<NodeDescriptor*>(
            again.data() + addr.PageOffset());
        SEDNA_RETURN_IF_ERROR(WriteLabel(ctx, d2, label));
        again.MarkDirty();
        return addr;
      }
    }
    // Block is full: split it in two and retry at the recomputed position.
    uint16_t child_slots;
    {
      SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(pos.block, ctx));
      child_slots = HeaderOf(guard.data())->child_slots;
    }
    SEDNA_RETURN_IF_ERROR(
        RewriteBlock(ctx, sn, pos.block, child_slots, /*min_blocks=*/2));
    SEDNA_ASSIGN_OR_RETURN(pos, FindPosition(ctx, sn, label.prefix));
    SEDNA_CHECK(pos.block) << "chain emptied during split";
  }
  return Status::Internal("descriptor allocation failed after split");
}

Status NodeStore::RewriteBlock(const OpCtx& ctx, SchemaNode* sn, Xptr block,
                               uint16_t new_child_slots, size_t min_blocks) {
  // Copy the old page out so we can allocate/pin freely while reading it.
  std::vector<uint8_t> old_page(kPageSize);
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(block, ctx));
    std::memcpy(old_page.data(), guard.data(), kPageSize);
  }
  BlockHeader* oh = HeaderOf(old_page.data());
  SEDNA_CHECK(oh->magic == kNodeBlockMagic);
  const uint16_t old_child_slots = oh->child_slots;
  const size_t n = oh->count;

  uint16_t new_desc_size = DescriptorSize(sn->kind, new_child_slots);
  uint16_t new_capacity = BlockCapacity(new_desc_size);
  size_t num_new = std::max(min_blocks, (n + new_capacity - 1) / new_capacity);
  if (num_new > n && n > 0) num_new = n;
  if (num_new == 0) num_new = 1;

  // Ordered descriptor slots of the old block.
  std::vector<uint16_t> order;
  order.reserve(n);
  for (uint16_t s = oh->first_slot; s != kNoSlot;) {
    order.push_back(s);
    s = reinterpret_cast<NodeDescriptor*>(old_page.data() +
                                          sizeof(BlockHeader) +
                                          static_cast<size_t>(s) *
                                              oh->desc_size)
            ->next_in_block;
  }
  SEDNA_CHECK(order.size() == n) << "in-block chain inconsistent with count";

  // Create the new blocks, linked in place of the old one.
  std::vector<Xptr> new_blocks;
  Xptr prev = oh->prev_block;
  Xptr old_next = oh->next_block;
  for (size_t b = 0; b < num_new; ++b) {
    SEDNA_ASSIGN_OR_RETURN(Xptr nb, NewBlock(ctx, sn, new_child_slots, prev));
    new_blocks.push_back(nb);
    prev = nb;
  }
  // NewBlock(prev=last_old_prev) splices before `old_next` only if prev was
  // the chain tail; fix the tail link explicitly.
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard,
                           env_->Write(new_blocks.back(), ctx));
    HeaderOf(guard.data())->next_block = old_next;
    guard.MarkDirty();
  }
  if (old_next) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(old_next, ctx));
    HeaderOf(guard.data())->prev_block = new_blocks.back();
    guard.MarkDirty();
  }
  if (sn->first_block == block) sn->first_block = new_blocks.front();
  if (sn->last_block == block) sn->last_block = new_blocks.back();

  // Distribute descriptors across the new blocks, preserving order.
  std::vector<std::pair<Xptr, Xptr>> moved;
  moved.reserve(n);
  size_t per_block = (n + num_new - 1) / num_new;
  size_t idx = 0;
  for (size_t b = 0; b < num_new && idx < n; ++b) {
    size_t take = std::min(per_block, n - idx);
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(new_blocks[b], ctx));
    uint8_t* page = guard.data();
    BlockHeader* h = HeaderOf(page);
    for (size_t i = 0; i < take; ++i, ++idx) {
      uint16_t old_slot = order[idx];
      const NodeDescriptor* src = reinterpret_cast<const NodeDescriptor*>(
          old_page.data() + sizeof(BlockHeader) +
          static_cast<size_t>(old_slot) * oh->desc_size);
      uint16_t slot = h->high_water++;
      NodeDescriptor* dst = DescriptorAt(page, slot);
      std::memset(static_cast<void*>(dst), 0, h->desc_size);
      std::memcpy(dst, src, sizeof(NodeDescriptor));
      if (sn->kind == XmlKind::kElement || sn->kind == XmlKind::kDocument) {
        uint16_t copy_slots = std::min(old_child_slots, new_child_slots);
        std::memcpy(ElementChildSlots(dst), ElementChildSlots(src),
                    copy_slots * sizeof(Xptr));
      } else {
        *TextPayloadOf(dst) = *TextPayloadOf(src);
      }
      // Sequential chain within the new block.
      dst->prev_in_block = i == 0 ? kNoSlot : static_cast<uint16_t>(slot - 1);
      dst->next_in_block =
          i + 1 == take ? kNoSlot : static_cast<uint16_t>(slot + 1);
      if (i == 0) h->first_slot = slot;
      if (i + 1 == take) h->last_slot = slot;
      h->count++;
      Xptr old_addr =
          DescriptorXptr(block, old_slot, oh->desc_size);
      Xptr new_addr = DescriptorXptr(new_blocks[b], slot, h->desc_size);
      moved.emplace_back(old_addr, new_addr);
    }
    guard.MarkDirty();
  }

  // Fix inbound pointers of every moved node (constant work per node).
  for (const auto& [old_addr, new_addr] : moved) {
    SEDNA_RETURN_IF_ERROR(FixInboundPointers(ctx, old_addr, new_addr, moved));
  }

  moved_nodes_ += n;
  block_splits_++;
  return env_->allocator->FreePage(block, ctx);
}

Status NodeStore::FixInboundPointers(
    const OpCtx& ctx, Xptr old_addr, Xptr new_addr,
    const std::vector<std::pair<Xptr, Xptr>>& moved) {
  auto remap = [&moved](Xptr p) -> Xptr {
    for (const auto& [from, to] : moved) {
      if (from == p) return to;
    }
    return kNullXptr;
  };

  Xptr handle, parent_handle, left, right;
  uint32_t schema_id;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard,
                           env_->Write(new_addr.PageBase(), ctx));
    uint8_t* page = guard.data();
    schema_id = HeaderOf(page)->schema_id;
    NodeDescriptor* d =
        reinterpret_cast<NodeDescriptor*>(page + new_addr.PageOffset());
    // Our own sibling fields may point at nodes that moved with us.
    if (Xptr to = remap(d->left_sibling)) d->left_sibling = to;
    if (Xptr to = remap(d->right_sibling)) d->right_sibling = to;
    handle = d->handle;
    parent_handle = d->parent_handle;
    left = d->left_sibling;
    right = d->right_sibling;
    guard.MarkDirty();
  }

  // 1. Indirection entry (the single field that makes all handles valid).
  SEDNA_RETURN_IF_ERROR(indirection_->Set(ctx, handle, new_addr));

  // 2. Sibling neighbours' direct pointers (skip ones that moved with us —
  //    their own fix-up pass rewrites their fields via remap()).
  if (left && !remap(left)) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(left.PageBase(), ctx));
    NodeDescriptor* ld =
        reinterpret_cast<NodeDescriptor*>(guard.data() + left.PageOffset());
    if (ld->right_sibling == old_addr) {
      ld->right_sibling = new_addr;
      guard.MarkDirty();
    }
  }
  if (right && !remap(right)) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard,
                           env_->Write(right.PageBase(), ctx));
    NodeDescriptor* rd =
        reinterpret_cast<NodeDescriptor*>(guard.data() + right.PageOffset());
    if (rd->left_sibling == old_addr) {
      rd->left_sibling = new_addr;
      guard.MarkDirty();
    }
  }

  // 3. Parent child slot, if it pointed at us.
  return SetParentSlotIfPointsTo(ctx, parent_handle, schema_id, old_addr,
                                 new_addr);
}

Status NodeStore::SetParentSlotIfPointsTo(const OpCtx& ctx,
                                          Xptr parent_handle,
                                          uint32_t child_schema_id,
                                          Xptr expect, Xptr replacement) {
  if (!parent_handle) return Status::OK();
  SEDNA_ASSIGN_OR_RETURN(Xptr parent_addr,
                         indirection_->Get(ctx, parent_handle));
  int slot = schema_->node(child_schema_id)->slot_in_parent;
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard,
                         env_->Write(parent_addr.PageBase(), ctx));
  uint8_t* page = guard.data();
  BlockHeader* h = HeaderOf(page);
  if (slot < 0 || slot >= h->child_slots) return Status::OK();
  NodeDescriptor* pd =
      reinterpret_cast<NodeDescriptor*>(page + parent_addr.PageOffset());
  Xptr* slots = ElementChildSlots(pd);
  if (slots[slot] == expect) {
    slots[slot] = replacement;
    guard.MarkDirty();
  }
  return Status::OK();
}

StatusOr<Xptr> NodeStore::EnsureArity(const OpCtx& ctx, Xptr handle,
                                      int slot) {
  SEDNA_ASSIGN_OR_RETURN(Xptr addr, indirection_->Get(ctx, handle));
  uint32_t schema_id;
  uint16_t child_slots;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(addr.PageBase(), ctx));
    const BlockHeader* h = HeaderOf(guard.data());
    schema_id = h->schema_id;
    child_slots = h->child_slots;
  }
  if (slot < child_slots) return addr;
  SchemaNode* sn = schema_->node(schema_id);
  // Upgrade to the schema's current fan-out so repeated growth is amortized.
  uint16_t new_arity = static_cast<uint16_t>(
      std::max<size_t>(static_cast<size_t>(slot) + 1, sn->children.size()));
  SEDNA_RETURN_IF_ERROR(
      RewriteBlock(ctx, sn, addr.PageBase(), new_arity, /*min_blocks=*/1));
  return indirection_->Get(ctx, handle);
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

StatusOr<Xptr> NodeStore::CreateRoot(const OpCtx& ctx) {
  SchemaNode* root_sn = schema_->root();
  if (root_sn->first_block) {
    return Status::FailedPrecondition("document root already exists");
  }
  NidLabel label = NidLabel::Root();
  SEDNA_ASSIGN_OR_RETURN(
      Xptr addr,
      AllocDescriptor(ctx, root_sn, ChainPos{kNullXptr, kNoSlot}, label));
  SEDNA_ASSIGN_OR_RETURN(Xptr handle, indirection_->Alloc(ctx, addr));
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(addr.PageBase(), ctx));
  NodeDescriptor* d =
      reinterpret_cast<NodeDescriptor*>(guard.data() + addr.PageOffset());
  d->handle = handle;
  guard.MarkDirty();
  root_sn->node_count++;
  return handle;
}

StatusOr<Xptr> NodeStore::InsertNode(const OpCtx& ctx, Xptr parent_handle,
                                     Xptr left_handle, Xptr right_handle,
                                     XmlKind kind, std::string_view name,
                                     std::string_view text) {
  SEDNA_ASSIGN_OR_RETURN(NodeInfo parent, InfoByHandle(ctx, parent_handle));
  if (parent.kind != XmlKind::kElement && parent.kind != XmlKind::kDocument) {
    return Status::InvalidArgument("parent is not an element");
  }
  SchemaNode* psn = schema_->node(parent.schema_id);
  SchemaNode* sn = schema_->GetOrAddChild(psn, kind, name);

  // Establish document-order neighbours.
  NidLabel left_label, right_label;
  bool has_left = false, has_right = false;
  if (left_handle) {
    SEDNA_ASSIGN_OR_RETURN(NodeInfo li, InfoByHandle(ctx, left_handle));
    left_label = li.label;
    has_left = true;
    if (!right_handle && li.right_sibling) {
      SEDNA_ASSIGN_OR_RETURN(NodeInfo ri, Info(ctx, li.right_sibling));
      right_handle = ri.handle;
      right_label = ri.label;
      has_right = true;
    }
  }
  if (right_handle && !has_right) {
    SEDNA_ASSIGN_OR_RETURN(NodeInfo ri, InfoByHandle(ctx, right_handle));
    right_label = ri.label;
    has_right = true;
    if (!left_handle && ri.left_sibling) {
      SEDNA_ASSIGN_OR_RETURN(NodeInfo li, Info(ctx, ri.left_sibling));
      left_handle = li.handle;
      left_label = li.label;
      has_left = true;
    }
  }
  if (!left_handle && !right_handle) {
    // Append as last child.
    SEDNA_ASSIGN_OR_RETURN(Xptr last, LastChild(ctx, parent.addr));
    if (last) {
      SEDNA_ASSIGN_OR_RETURN(NodeInfo li, Info(ctx, last));
      left_handle = li.handle;
      left_label = li.label;
      has_left = true;
    }
  }

  NidLabel label = nid::AllocBetween(parent.label,
                                     has_left ? &left_label : nullptr,
                                     has_right ? &right_label : nullptr);

  // Store the text first (its pages are independent of node blocks).
  Xptr text_ref;
  if (kind != XmlKind::kElement) {
    SEDNA_ASSIGN_OR_RETURN(text_ref, text_->Insert(ctx, text));
  }

  SEDNA_ASSIGN_OR_RETURN(ChainPos pos, FindPosition(ctx, sn, label.prefix));
  SEDNA_ASSIGN_OR_RETURN(Xptr addr, AllocDescriptor(ctx, sn, pos, label));
  SEDNA_ASSIGN_OR_RETURN(Xptr handle, indirection_->Alloc(ctx, addr));

  // A split in AllocDescriptor may have moved the neighbours: re-resolve.
  Xptr left_addr, right_addr;
  if (left_handle) {
    SEDNA_ASSIGN_OR_RETURN(left_addr, indirection_->Get(ctx, left_handle));
  }
  if (right_handle) {
    SEDNA_ASSIGN_OR_RETURN(right_addr, indirection_->Get(ctx, right_handle));
  }

  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(addr.PageBase(), ctx));
    NodeDescriptor* d =
        reinterpret_cast<NodeDescriptor*>(guard.data() + addr.PageOffset());
    d->handle = handle;
    d->parent_handle = parent_handle;
    d->left_sibling = left_addr;
    d->right_sibling = right_addr;
    if (kind != XmlKind::kElement) {
      TextPayloadOf(d)->text_ref = text_ref;
    }
    guard.MarkDirty();
  }
  if (left_addr) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard,
                           env_->Write(left_addr.PageBase(), ctx));
    reinterpret_cast<NodeDescriptor*>(guard.data() + left_addr.PageOffset())
        ->right_sibling = addr;
    guard.MarkDirty();
  }
  if (right_addr) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard,
                           env_->Write(right_addr.PageBase(), ctx));
    reinterpret_cast<NodeDescriptor*>(guard.data() + right_addr.PageOffset())
        ->left_sibling = addr;
    guard.MarkDirty();
  }

  // Parent child slot: points at the FIRST child of this schema node.
  SEDNA_ASSIGN_OR_RETURN(Xptr parent_addr,
                         EnsureArity(ctx, parent_handle, sn->slot_in_parent));
  {
    SEDNA_ASSIGN_OR_RETURN(Xptr current,
                           ChildSlot(ctx, parent_addr, sn->slot_in_parent));
    bool take = !current;
    if (current) {
      SEDNA_ASSIGN_OR_RETURN(NodeInfo ci, Info(ctx, current));
      take = label.CompareDocOrder(ci.label) < 0;
    }
    if (take) {
      SEDNA_ASSIGN_OR_RETURN(PageGuard guard,
                             env_->Write(parent_addr.PageBase(), ctx));
      uint8_t* page = guard.data();
      NodeDescriptor* pd = reinterpret_cast<NodeDescriptor*>(
          page + parent_addr.PageOffset());
      ElementChildSlots(pd)[sn->slot_in_parent] = addr;
      guard.MarkDirty();
    }
  }

  sn->node_count++;
  return handle;
}

StatusOr<NodeStore::NewNodeResult> NodeStore::AppendNode(
    const OpCtx& ctx, SchemaNode* sn, const NidLabel& label,
    Xptr parent_handle, Xptr prev_sibling_addr, std::string_view text) {
  Xptr text_ref;
  if (sn->kind != XmlKind::kElement && sn->kind != XmlKind::kDocument) {
    SEDNA_ASSIGN_OR_RETURN(text_ref, text_->Insert(ctx, text));
  }

  // Append at the chain tail (the loader guarantees increasing labels).
  ChainPos pos{kNullXptr, kNoSlot};
  if (sn->last_block) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(sn->last_block, ctx));
    const BlockHeader* h = HeaderOf(guard.data());
    if (h->count < h->capacity) {
      pos = ChainPos{sn->last_block, h->last_slot};
    }
  }
  if (!pos.block) {
    uint16_t arity =
        sn->kind == XmlKind::kElement || sn->kind == XmlKind::kDocument
            ? static_cast<uint16_t>(sn->children.size())
            : 0;
    SEDNA_ASSIGN_OR_RETURN(Xptr nb,
                           NewBlock(ctx, sn, arity, sn->last_block));
    pos = ChainPos{nb, kNoSlot};
  }
  SEDNA_ASSIGN_OR_RETURN(Xptr addr, AllocDescriptor(ctx, sn, pos, label));
  SEDNA_ASSIGN_OR_RETURN(Xptr handle, indirection_->Alloc(ctx, addr));
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(addr.PageBase(), ctx));
    NodeDescriptor* d =
        reinterpret_cast<NodeDescriptor*>(guard.data() + addr.PageOffset());
    d->handle = handle;
    d->parent_handle = parent_handle;
    d->left_sibling = prev_sibling_addr;
    if (sn->kind != XmlKind::kElement && sn->kind != XmlKind::kDocument) {
      TextPayloadOf(d)->text_ref = text_ref;
    }
    guard.MarkDirty();
  }
  if (prev_sibling_addr) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard,
                           env_->Write(prev_sibling_addr.PageBase(), ctx));
    reinterpret_cast<NodeDescriptor*>(guard.data() +
                                      prev_sibling_addr.PageOffset())
        ->right_sibling = addr;
    guard.MarkDirty();
  }
  sn->node_count++;
  return NewNodeResult{addr, handle};
}

Status NodeStore::SetChildSlot(const OpCtx& ctx, Xptr handle, int slot,
                               Xptr child) {
  SEDNA_ASSIGN_OR_RETURN(Xptr addr, EnsureArity(ctx, handle, slot));
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(addr.PageBase(), ctx));
  NodeDescriptor* d =
      reinterpret_cast<NodeDescriptor*>(guard.data() + addr.PageOffset());
  ElementChildSlots(d)[slot] = child;
  guard.MarkDirty();
  return Status::OK();
}

Status NodeStore::DeleteLeaf(const OpCtx& ctx, Xptr handle) {
  SEDNA_ASSIGN_OR_RETURN(Xptr addr, indirection_->Get(ctx, handle));
  SEDNA_ASSIGN_OR_RETURN(NodeInfo info, Info(ctx, addr));
  SchemaNode* sn = schema_->node(info.schema_id);

  // Reject non-leaves.
  if (sn->kind == XmlKind::kElement || sn->kind == XmlKind::kDocument) {
    SEDNA_ASSIGN_OR_RETURN(Xptr child, FirstChild(ctx, addr));
    if (child) {
      return Status::FailedPrecondition("DeleteLeaf on a node with children");
    }
  }

  // Replacement for the parent's first-child slot, if we are the first.
  SEDNA_ASSIGN_OR_RETURN(Xptr replacement, NextSibSameSchema(ctx, addr));
  SEDNA_RETURN_IF_ERROR(SetParentSlotIfPointsTo(
      ctx, info.parent_handle, info.schema_id, addr, replacement));

  // Unlink from siblings.
  if (info.left_sibling) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard,
                           env_->Write(info.left_sibling.PageBase(), ctx));
    reinterpret_cast<NodeDescriptor*>(guard.data() +
                                      info.left_sibling.PageOffset())
        ->right_sibling = info.right_sibling;
    guard.MarkDirty();
  }
  if (info.right_sibling) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard,
                           env_->Write(info.right_sibling.PageBase(), ctx));
    reinterpret_cast<NodeDescriptor*>(guard.data() +
                                      info.right_sibling.PageOffset())
        ->left_sibling = info.left_sibling;
    guard.MarkDirty();
  }

  // Free text payload and overflow label.
  bool free_block = false;
  Xptr block = addr.PageBase();
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(block, ctx));
    uint8_t* page = guard.data();
    BlockHeader* h = HeaderOf(page);
    NodeDescriptor* d =
        reinterpret_cast<NodeDescriptor*>(page + addr.PageOffset());
    Xptr text_ref;
    if (sn->kind != XmlKind::kElement && sn->kind != XmlKind::kDocument) {
      text_ref = TextPayloadOf(d)->text_ref;
    }
    Xptr overflow = d->has_overflow_label() ? OverflowRef(d) : kNullXptr;
    // Unlink from the in-block chain.
    uint16_t slot = SlotOf(addr, h->desc_size);
    if (d->prev_in_block != kNoSlot) {
      DescriptorAt(page, d->prev_in_block)->next_in_block = d->next_in_block;
    } else {
      h->first_slot = d->next_in_block;
    }
    if (d->next_in_block != kNoSlot) {
      DescriptorAt(page, d->next_in_block)->prev_in_block = d->prev_in_block;
    } else {
      h->last_slot = d->prev_in_block;
    }
    d->next_in_block = h->free_head;
    h->free_head = slot;
    h->count--;
    guard.MarkDirty();
    free_block = h->count == 0;
    guard.Release();
    if (text_ref) SEDNA_RETURN_IF_ERROR(text_->Delete(ctx, text_ref));
    if (overflow) SEDNA_RETURN_IF_ERROR(text_->Delete(ctx, overflow));
  }

  if (free_block) {
    // Unlink the empty block from the chain and release it.
    Xptr prev, next;
    {
      SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(block, ctx));
      const BlockHeader* h = HeaderOf(guard.data());
      prev = h->prev_block;
      next = h->next_block;
    }
    if (prev) {
      SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(prev, ctx));
      HeaderOf(guard.data())->next_block = next;
      guard.MarkDirty();
    } else {
      sn->first_block = next;
    }
    if (next) {
      SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(next, ctx));
      HeaderOf(guard.data())->prev_block = prev;
      guard.MarkDirty();
    } else {
      sn->last_block = prev;
    }
    SEDNA_RETURN_IF_ERROR(env_->allocator->FreePage(block, ctx));
  }

  SEDNA_RETURN_IF_ERROR(indirection_->Free(ctx, handle));
  sn->node_count--;
  return Status::OK();
}

Status NodeStore::DeleteSubtree(const OpCtx& ctx, Xptr handle) {
  SEDNA_ASSIGN_OR_RETURN(Xptr addr, indirection_->Get(ctx, handle));
  SEDNA_ASSIGN_OR_RETURN(NodeInfo info, Info(ctx, addr));
  XmlKind kind = info.kind;
  if (kind == XmlKind::kElement || kind == XmlKind::kDocument) {
    // Collect child handles first: deletions do not move survivors, but
    // they do unlink them, so we snapshot the set up front.
    std::vector<Xptr> child_handles;
    SEDNA_ASSIGN_OR_RETURN(Xptr child, FirstChild(ctx, addr));
    // FirstChild gives the doc-order first; walk sibling pointers.
    while (child) {
      SEDNA_ASSIGN_OR_RETURN(NodeInfo ci, Info(ctx, child));
      child_handles.push_back(ci.handle);
      child = ci.right_sibling;
    }
    for (Xptr ch : child_handles) {
      SEDNA_RETURN_IF_ERROR(DeleteSubtree(ctx, ch));
    }
  }
  return DeleteLeaf(ctx, handle);
}

Status NodeStore::UpdateText(const OpCtx& ctx, Xptr handle,
                             std::string_view text) {
  SEDNA_ASSIGN_OR_RETURN(Xptr addr, indirection_->Get(ctx, handle));
  Xptr old_ref;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(addr.PageBase(), ctx));
    const uint8_t* page = guard.data();
    XmlKind kind = schema_->node(HeaderOf(page)->schema_id)->kind;
    if (kind == XmlKind::kElement || kind == XmlKind::kDocument) {
      return Status::InvalidArgument("UpdateText on an element");
    }
    old_ref = TextPayloadOf(reinterpret_cast<const NodeDescriptor*>(
                                page + addr.PageOffset()))
                  ->text_ref;
  }
  SEDNA_ASSIGN_OR_RETURN(Xptr new_ref, text_->Update(ctx, old_ref, text));
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(addr.PageBase(), ctx));
  NodeDescriptor* d =
      reinterpret_cast<NodeDescriptor*>(guard.data() + addr.PageOffset());
  TextPayloadOf(d)->text_ref = new_ref;
  guard.MarkDirty();
  return Status::OK();
}

}  // namespace sedna
