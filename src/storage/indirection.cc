#include "storage/indirection.h"

#include <cstring>

#include "common/logging.h"

namespace sedna {

StatusOr<Xptr> IndirectionTable::Alloc(const OpCtx& ctx, Xptr target) {
  if (!free_head_) {
    // Grow: allocate a page and thread all its entries onto the free list.
    SEDNA_ASSIGN_OR_RETURN(Xptr page_base, env_->allocator->AllocPage(ctx));
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(page_base, ctx));
    uint8_t* page = guard.data();
    std::memset(page, 0, kPageSize);
    IndirPageHeader* h = reinterpret_cast<IndirPageHeader*>(page);
    *h = IndirPageHeader{};
    h->doc_id = doc_id_;
    h->self = page_base;
    h->next_page = head_;
    h->entry_count = kIndirEntriesPerPage;
    uint64_t* entries =
        reinterpret_cast<uint64_t*>(page + sizeof(IndirPageHeader));
    // Entry i links to entry i+1; the last links to the previous free head.
    for (uint32_t i = 0; i < kIndirEntriesPerPage; ++i) {
      Xptr next_entry =
          (i + 1 < kIndirEntriesPerPage)
              ? page_base + static_cast<uint32_t>(sizeof(IndirPageHeader) +
                                                  (i + 1) * sizeof(uint64_t))
              : free_head_;
      entries[i] = kIndirFreeTag | next_entry.raw;
    }
    guard.MarkDirty();
    head_ = page_base;
    free_head_ = page_base + static_cast<uint32_t>(sizeof(IndirPageHeader));
  }

  Xptr handle = free_head_;
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(handle.PageBase(), ctx));
  const IndirPageHeader* h =
      reinterpret_cast<const IndirPageHeader*>(guard.data());
  if (h->magic != kIndirPageMagic || h->self != handle.PageBase()) {
    return Status::Corruption(
        "indirection free head " + handle.ToString() +
        " points into a page that is not an indirection page of this "
        "document (magic " + std::to_string(h->magic) + ", self " +
        Xptr(h->self).ToString() + ")");
  }
  uint64_t* entry =
      reinterpret_cast<uint64_t*>(guard.data() + handle.PageOffset());
  if ((*entry & kIndirFreeTag) == 0) {
    return Status::Corruption(
        "indirection free list points at a live entry: " + handle.ToString() +
        " -> " + Xptr(*entry).ToString());
  }
  free_head_ = Xptr(*entry & ~kIndirFreeTag);
  *entry = target.raw;
  guard.MarkDirty();
  return handle;
}

StatusOr<Xptr> IndirectionTable::Get(const OpCtx& ctx, Xptr handle) const {
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(handle.PageBase(), ctx));
  const uint8_t* page = guard.data();
  if (reinterpret_cast<const IndirPageHeader*>(page)->magic !=
      kIndirPageMagic) {
    return Status::Corruption("handle does not point into indirection page");
  }
  uint64_t entry;
  std::memcpy(&entry, page + handle.PageOffset(), sizeof(entry));
  if (entry & kIndirFreeTag) {
    return Status::NotFound("handle refers to a deleted node");
  }
  return Xptr(entry);
}

Status IndirectionTable::Set(const OpCtx& ctx, Xptr handle, Xptr target) {
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(handle.PageBase(), ctx));
  uint64_t* entry =
      reinterpret_cast<uint64_t*>(guard.data() + handle.PageOffset());
  if (*entry & kIndirFreeTag) {
    return Status::NotFound("handle refers to a deleted node");
  }
  *entry = target.raw;
  guard.MarkDirty();
  return Status::OK();
}

Status IndirectionTable::Free(const OpCtx& ctx, Xptr handle) {
  SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(handle.PageBase(), ctx));
  uint64_t* entry =
      reinterpret_cast<uint64_t*>(guard.data() + handle.PageOffset());
  if (*entry & kIndirFreeTag) {
    return Status::Corruption("double free of node handle");
  }
  *entry = kIndirFreeTag | free_head_.raw;
  free_head_ = handle;
  guard.MarkDirty();
  return Status::OK();
}

Status IndirectionTable::FreeAll(const OpCtx& ctx) {
  Xptr cur = head_;
  while (cur) {
    Xptr next;
    {
      SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(cur, ctx));
      next =
          reinterpret_cast<const IndirPageHeader*>(guard.data())->next_page;
    }
    SEDNA_RETURN_IF_ERROR(env_->allocator->FreePage(cur, ctx));
    cur = next;
  }
  head_ = kNullXptr;
  free_head_ = kNullXptr;
  return Status::OK();
}

}  // namespace sedna
