// Database-wide storage engine: the "database manager" of Figure 1's
// physical level. Owns the database file, page directory, buffer manager
// and the catalog of documents. The transaction layer can interpose a
// custom page resolver (MVCC version manager) and allocator via hooks.

#ifndef SEDNA_STORAGE_STORAGE_ENGINE_H_
#define SEDNA_STORAGE_STORAGE_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/vfs.h"
#include "sas/buffer_manager.h"
#include "sas/file_manager.h"
#include "sas/page_directory.h"
#include "storage/document_store.h"
#include "storage/storage_env.h"

namespace sedna {

struct StorageOptions {
  std::string path;          // database file
  size_t buffer_frames = 1024;
  BufferPoolOptions pool;    // sharding knobs (benchmarks; default = auto)
  Vfs* vfs = nullptr;        // null = Vfs::Default()
};

/// Factories the transaction layer supplies to interpose on page resolution
/// (MVCC) and allocation (per-transaction tracking). Optional; when absent
/// the engine runs single-version.
struct StorageHooks {
  std::function<std::unique_ptr<PageResolver>(FileManager*,
                                              SimplePageDirectory*)>
      resolver_factory;
  std::function<std::unique_ptr<PageAllocator>(SimplePageDirectory*)>
      allocator_factory;
};

class StorageEngine {
 public:
  /// Creates a fresh database file.
  static StatusOr<std::unique_ptr<StorageEngine>> Create(
      const StorageOptions& options, StorageHooks hooks = {});

  /// Opens an existing database and restores the catalog and directory from
  /// the last checkpoint.
  static StatusOr<std::unique_ptr<StorageEngine>> Open(
      const StorageOptions& options, StorageHooks hooks = {});

  ~StorageEngine();

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  // --- documents ------------------------------------------------------------

  StatusOr<DocumentStore*> CreateDocument(const OpCtx& ctx,
                                          const std::string& name);
  StatusOr<DocumentStore*> GetDocument(const std::string& name);
  Status DropDocument(const OpCtx& ctx, const std::string& name);
  std::vector<std::string> DocumentNames() const;

  // --- transactional rollback support ---------------------------------------
  // The transaction layer snapshots a document's in-memory metadata (schema,
  // block-list heads, text/indirection state, catalog entry) when the
  // document is first locked exclusively, and restores it on abort. Pages
  // themselves are rolled back by the version manager.

  /// Serialized metadata of the document (NotFound if absent).
  StatusOr<std::string> SnapshotDocumentMeta(const std::string& name) const;

  /// Restores a document's metadata, recreating the catalog entry if the
  /// document was dropped in the aborted transaction.
  Status RestoreDocumentMeta(const std::string& name,
                             const std::string& blob);

  /// Removes the catalog entry only (used to roll back CREATE DOCUMENT).
  Status RemoveDocumentEntry(const std::string& name);

  // --- value-index definitions -----------------------------------------------

  /// Catalog record of one value index. `meta` is the raw Xptr of the
  /// index's B+tree meta page; 0 means the index has no persistent tree yet
  /// (it will be built lazily by the query layer).
  struct IndexDefRecord {
    std::string doc;
    std::string path;
    uint64_t meta = 0;
  };

  /// name -> definition. Persisted in the catalog at checkpoint.
  const std::map<std::string, IndexDefRecord>& index_definitions() const {
    return index_defs_;
  }
  void SetIndexDefinition(const std::string& name, const std::string& doc,
                          const std::string& path, uint64_t meta) {
    index_defs_[name] = {doc, path, meta};
  }
  void SetIndexMeta(const std::string& name, uint64_t meta) {
    auto it = index_defs_.find(name);
    if (it != index_defs_.end()) it->second.meta = meta;
  }
  void RemoveIndexDefinition(const std::string& name) {
    index_defs_.erase(name);
  }

  // --- durability -------------------------------------------------------------

  /// Flushes all dirty pages and persists the catalog + page directory +
  /// master record. After Checkpoint the on-disk state is self-contained.
  Status Checkpoint();

  /// Deep consistency sweep over every document (DocumentStore::Validate).
  /// Returns the first corruption found; OK means every page chain, slot
  /// chain and handle cross-reference is intact.
  Status CheckConsistency();

  // --- accessors --------------------------------------------------------------

  FileManager* file() { return &file_; }
  SimplePageDirectory* directory() { return directory_.get(); }
  PageResolver* resolver() { return resolver_; }
  BufferManager* buffers() { return buffers_.get(); }
  StorageEnv* env() { return &env_; }

 private:
  StorageEngine() = default;

  Status Init(const StorageOptions& options, StorageHooks hooks, bool create);
  std::string SerializeCatalog() const;
  Status RestoreCatalog(const std::string& blob);

  FileManager file_;
  std::unique_ptr<SimplePageDirectory> directory_;
  std::unique_ptr<PageResolver> owned_resolver_;
  PageResolver* resolver_ = nullptr;  // owned_resolver_ or directory_
  std::unique_ptr<PageAllocator> allocator_;
  std::unique_ptr<BufferManager> buffers_;
  StorageEnv env_;

  std::map<std::string, std::unique_ptr<DocumentStore>> documents_;
  std::map<std::string, IndexDefRecord> index_defs_;
  uint32_t next_doc_id_ = 1;
};

}  // namespace sedna

#endif  // SEDNA_STORAGE_STORAGE_ENGINE_H_
