// Descriptive schema (paper Section 4.1): a relaxed DataGuide.
//
// Every path in the document has exactly one path in the schema, so the
// schema is a tree, generated from the data and maintained incrementally —
// no prescriptive DTD/XML Schema is needed. Each schema node carries
// pointers to the block list that clusters the document nodes with that
// path, making the schema "a naturally built index for evaluating XPath
// expressions".
//
// The schema is kept in memory (it is a concise structure summary — tiny
// compared to the data) and serialized into the catalog blob at checkpoint.

#ifndef SEDNA_STORAGE_SCHEMA_H_
#define SEDNA_STORAGE_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sas/xptr.h"
#include "xml/xml_tree.h"

namespace sedna {

/// One node of the descriptive schema.
struct SchemaNode {
  uint32_t id = 0;            // dense id within the document's schema
  XmlKind kind = XmlKind::kElement;
  std::string name;           // element/attribute/PI name ("" otherwise)
  SchemaNode* parent = nullptr;
  std::vector<SchemaNode*> children;  // order of first appearance; this
                                      // order defines the child-pointer
                                      // slot index in node descriptors
  int slot_in_parent = -1;    // index in parent->children

  // Block list of this schema node (document nodes clustered here).
  Xptr first_block;
  Xptr last_block;

  // Statistics maintained incrementally (used by the optimizer and by the
  // structural-path fast path).
  uint64_t node_count = 0;

  /// Finds the child with the given kind and name, or nullptr.
  SchemaNode* FindChild(XmlKind k, std::string_view n) const;

  /// Depth of this node (document root = 0).
  int Depth() const;

  /// Absolute path for diagnostics, e.g. "/library/book/title".
  std::string Path() const;
};

/// The descriptive schema of one document: an arena of schema nodes rooted
/// at a document node.
class DescriptiveSchema {
 public:
  DescriptiveSchema();

  DescriptiveSchema(const DescriptiveSchema&) = delete;
  DescriptiveSchema& operator=(const DescriptiveSchema&) = delete;

  SchemaNode* root() { return root_; }
  const SchemaNode* root() const { return root_; }

  SchemaNode* node(uint32_t id) { return nodes_[id].get(); }
  const SchemaNode* node(uint32_t id) const { return nodes_[id].get(); }
  size_t size() const { return nodes_.size(); }

  /// Returns the child of `parent` for (kind, name), creating it (and thus
  /// growing the schema) if it does not exist yet. This is the incremental
  /// maintenance path taken by loads and updates.
  SchemaNode* GetOrAddChild(SchemaNode* parent, XmlKind kind,
                            std::string_view name);

  /// All schema nodes matching (kind, name) anywhere in the schema — the
  /// entry point for /descendant::name resolution over the schema.
  std::vector<SchemaNode*> FindDescendants(const SchemaNode* under,
                                           XmlKind kind,
                                           std::string_view name) const;

  /// Serialization for the catalog.
  std::string Serialize() const;
  Status Deserialize(const std::string& blob);

  /// Version stamp of the schema shape. Bumped (process-globally unique)
  /// every time the schema grows or is deserialized, so caches derived from
  /// the schema (path summaries, index cover sets) can cheaply detect
  /// staleness — including across a transaction-abort metadata restore.
  uint64_t version() const { return version_; }

 private:
  std::vector<std::unique_ptr<SchemaNode>> nodes_;
  SchemaNode* root_ = nullptr;
  uint64_t version_ = 0;
};

}  // namespace sedna

#endif  // SEDNA_STORAGE_SCHEMA_H_
