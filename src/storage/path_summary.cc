#include "storage/path_summary.h"

#include <algorithm>

namespace sedna {

PathSummary::PathSummary(const DescriptiveSchema* schema)
    : schema_(schema), version_(schema->version()) {
  all_.reserve(schema->size());
  for (size_t i = 0; i < schema->size(); ++i) {
    SchemaNode* n = const_cast<SchemaNode*>(schema->node(i));
    all_.push_back(n);
    by_name_[n->name].push_back(n);
  }
}

bool PathSummary::StepMatches(const SummaryStep& step,
                              const SchemaNode* node) const {
  bool kind_ok;
  if (step.axis == SummaryStep::Axis::kAttribute) {
    kind_ok = node->kind == XmlKind::kAttribute;
  } else if (step.any_node && step.axis == SummaryStep::Axis::kChild) {
    kind_ok = node->kind != XmlKind::kAttribute;
  } else {
    // Deliberate quirk parity with the executor's historical frontier walk:
    // a descendant::node() step matched elements only (FindDescendants
    // filtered on the exact kind), while child::node() matched any
    // non-attribute kind. Query results must not change with the lookup
    // strategy, so the summary reproduces both behaviours.
    kind_ok = node->kind == step.kind;
  }
  return kind_ok && (step.name == "*" || node->name == step.name);
}

std::vector<SchemaNode*> PathSummary::Resolve(
    const std::vector<SummaryStep>& steps) const {
  return ResolveFrom({const_cast<SchemaNode*>(schema_->root())}, steps);
}

std::vector<SchemaNode*> PathSummary::ResolveFrom(
    const std::vector<SchemaNode*>& frontier,
    const std::vector<SummaryStep>& steps) const {
  if (steps.empty()) return frontier;

  std::vector<char> in_frontier(schema_->size(), 0);
  for (const SchemaNode* f : frontier) {
    if (f->id < in_frontier.size()) in_frontier[f->id] = 1;
  }

  // memo[node * nsteps + i]: does `node` match steps[0..i] as the result of
  // step i, with the chain rooted in the frontier? -1 unknown, 0 no, 1 yes.
  // Filled lazily, backward: only candidates from the last step's bucket
  // and the schema nodes on their ancestor chains are ever examined — the
  // inverted-lookup payoff over the forward frontier walk, which visits
  // every schema node a descendant step can reach.
  const size_t nsteps = steps.size();
  std::vector<int8_t> memo(schema_->size() * nsteps, -1);

  struct Matcher {
    const PathSummary* self;
    const std::vector<SummaryStep>& steps;
    const std::vector<char>& in_frontier;
    std::vector<int8_t>& memo;
    size_t nsteps;

    bool Match(const SchemaNode* node, size_t i) {
      int8_t& slot = memo[node->id * nsteps + i];
      if (slot >= 0) return slot == 1;
      slot = 0;  // break cycles defensively (the schema is a tree)
      const SummaryStep& step = steps[i];
      if (!self->StepMatches(step, node)) return false;
      bool ok = false;
      if (step.axis == SummaryStep::Axis::kChild ||
          step.axis == SummaryStep::Axis::kAttribute) {
        const SchemaNode* p = node->parent;
        if (p != nullptr) {
          ok = i == 0 ? in_frontier[p->id] != 0 : Match(p, i - 1);
        }
      } else {
        for (const SchemaNode* a = node->parent; a != nullptr; a = a->parent) {
          if (i == 0 ? in_frontier[a->id] != 0 : Match(a, i - 1)) {
            ok = true;
            break;
          }
        }
      }
      slot = ok ? 1 : 0;
      return ok;
    }
  };
  Matcher matcher{this, steps, in_frontier, memo, nsteps};

  const SummaryStep& last = steps[nsteps - 1];
  const std::vector<SchemaNode*>* bucket = &all_;
  if (last.name != "*") {
    auto it = by_name_.find(last.name);
    if (it == by_name_.end()) return {};
    bucket = &it->second;
  }
  std::vector<SchemaNode*> out;
  for (SchemaNode* node : *bucket) {
    if (matcher.Match(node, nsteps - 1)) out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace sedna
