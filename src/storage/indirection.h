// Indirection table (paper Sections 4.1 and 4.1.2).
//
// An entry holds the current direct Xptr of one node descriptor; the Xptr
// *of the entry itself* is the node's handle: (i) unique in the database,
// (ii) one dereference from the node, (iii) immutable for the node's whole
// lifetime even as block splits move the descriptor. Parent pointers in
// node descriptors are handles, so moving a node updates exactly one entry
// instead of one field per child — the paper's constant-work guarantee for
// updates.

#ifndef SEDNA_STORAGE_INDIRECTION_H_
#define SEDNA_STORAGE_INDIRECTION_H_

#include "common/status.h"
#include "storage/layout.h"
#include "storage/storage_env.h"

namespace sedna {

class IndirectionTable {
 public:
  IndirectionTable(StorageEnv* env, uint32_t doc_id)
      : env_(env), doc_id_(doc_id) {}

  /// Persisted state (catalog).
  Xptr head() const { return head_; }
  Xptr free_head() const { return free_head_; }
  void Restore(Xptr head, Xptr free_head) {
    head_ = head;
    free_head_ = free_head;
  }

  /// Allocates an entry pointing at `target`; returns the handle.
  StatusOr<Xptr> Alloc(const OpCtx& ctx, Xptr target);

  /// Current direct pointer behind `handle`.
  StatusOr<Xptr> Get(const OpCtx& ctx, Xptr handle) const;

  /// Redirects `handle` to a new location (node moved).
  Status Set(const OpCtx& ctx, Xptr handle, Xptr target);

  /// Releases the entry. The paper garbage-collects handles at commit; here
  /// deletion returns entries to a free list immediately, which is
  /// equivalent for a single-version handle space.
  Status Free(const OpCtx& ctx, Xptr handle);

  /// Frees all indirection pages of the document (document drop).
  Status FreeAll(const OpCtx& ctx);

 private:
  StorageEnv* env_;
  uint32_t doc_id_;
  Xptr head_;       // chain of indirection pages
  Xptr free_head_;  // head of the free-entry list (tagged entries)
};

}  // namespace sedna

#endif  // SEDNA_STORAGE_INDIRECTION_H_
