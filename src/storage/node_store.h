// Node-block management: the schema-driven clustering core of Section 4.1.
//
// Every descriptive-schema node owns a bidirectional list of node blocks.
// Descriptors are partly ordered: all labels in block i precede all labels
// in block j when i < j; within a block an in-slot chain keeps document
// order while slots themselves are assigned from a free list (the paper's
// "within a block, nodes are unordered").
//
// The update-friendliness invariants (paper Section 4.1):
//   * descriptors have fixed size within a block (arity in the header);
//   * parent pointers are node handles (indirection), so moving a node
//     touches a constant number of fields: its indirection entry, its two
//     sibling neighbours' direct pointers, and at most one parent child
//     slot;
//   * schema growth upgrades descriptor arity block-by-block, lazily.
//
// NodeStore is per-document and not itself thread-safe; concurrency control
// is provided above it by the lock manager (document-level S2PL).

#ifndef SEDNA_STORAGE_NODE_STORE_H_
#define SEDNA_STORAGE_NODE_STORE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "numbering/nid.h"
#include "storage/indirection.h"
#include "storage/layout.h"
#include "storage/schema.h"
#include "storage/storage_env.h"
#include "storage/text_store.h"

namespace sedna {

/// Snapshot of one descriptor's fixed part, safe to hold across faults.
struct NodeInfo {
  Xptr addr;            // direct pointer to the descriptor
  uint32_t schema_id = 0;
  XmlKind kind = XmlKind::kElement;
  NidLabel label;
  Xptr handle;
  Xptr parent_handle;
  Xptr left_sibling;
  Xptr right_sibling;
};

class NodeStore {
 public:
  NodeStore(StorageEnv* env, DescriptiveSchema* schema, TextStore* text,
            IndirectionTable* indirection, uint32_t doc_id)
      : env_(env),
        schema_(schema),
        text_(text),
        indirection_(indirection),
        doc_id_(doc_id) {}

  DescriptiveSchema* schema() { return schema_; }
  IndirectionTable* indirection() { return indirection_; }
  TextStore* text_store() { return text_; }

  // --- reading ------------------------------------------------------------

  /// Reads the fixed descriptor part at `addr`.
  StatusOr<NodeInfo> Info(const OpCtx& ctx, Xptr addr) const;

  /// Resolves a handle to the current direct pointer, then reads it.
  StatusOr<NodeInfo> InfoByHandle(const OpCtx& ctx, Xptr handle) const;

  /// Text content of a text-carrying node ("" for elements).
  StatusOr<std::string> Text(const OpCtx& ctx, Xptr addr) const;

  /// First node of `sn`'s block list in document order (null if none).
  StatusOr<Xptr> FirstOfSchema(const OpCtx& ctx, const SchemaNode* sn) const;

  /// Successor of `addr` within its schema-node chain (document order),
  /// crossing block boundaries; null at the end.
  StatusOr<Xptr> NextSameSchema(const OpCtx& ctx, Xptr addr) const;
  StatusOr<Xptr> PrevSameSchema(const OpCtx& ctx, Xptr addr) const;

  /// Direct pointer in child slot `slot` of element `elem` (null if the
  /// block's arity does not cover `slot` or the slot is empty). The pointer
  /// is to the FIRST child with that schema node.
  StatusOr<Xptr> ChildSlot(const OpCtx& ctx, Xptr elem, int slot) const;

  /// First child of `elem` in document order, across all schema kinds.
  StatusOr<Xptr> FirstChild(const OpCtx& ctx, Xptr elem) const;

  /// Next child of the same parent and same schema node after `addr`
  /// (follows the chain while the parent handle matches).
  StatusOr<Xptr> NextSibSameSchema(const OpCtx& ctx, Xptr addr) const;

  /// Page bases of `sn`'s block chain, in chain (document) order. Morsel
  /// exchanges split this list into block ranges: descriptors are partly
  /// ordered across blocks, so a partition by chain position is a partition
  /// by document order.
  StatusOr<std::vector<Xptr>> SchemaBlocks(const OpCtx& ctx,
                                           const SchemaNode* sn) const;

  /// Appends the descriptor Xptrs of one block in in-block chain (document)
  /// order to *out. One page pin for the whole block — the per-block unit
  /// of work of a morsel scan.
  Status ScanBlockNodes(const OpCtx& ctx, Xptr block,
                        std::vector<Xptr>* out) const;

  // --- writing ------------------------------------------------------------

  /// Creates the document-root descriptor (schema root). Returns its handle.
  StatusOr<Xptr> CreateRoot(const OpCtx& ctx);

  /// Inserts a new node under `parent_handle` between `left_handle` and
  /// `right_handle` (either may be null; both null appends as last child —
  /// pass kNullXptr explicitly). `name` names elements/attributes/PIs;
  /// `text` is the content for text-carrying kinds. Returns the handle.
  StatusOr<Xptr> InsertNode(const OpCtx& ctx, Xptr parent_handle,
                            Xptr left_handle, Xptr right_handle, XmlKind kind,
                            std::string_view name, std::string_view text);

  /// Result of AppendNode: the loader needs both the handle (for children)
  /// and the direct address (for sibling linking).
  struct NewNodeResult {
    Xptr addr;
    Xptr handle;
  };

  /// Fast-path used by the bulk loader: label precomputed, guaranteed to
  /// append at the end of its schema chain; sibling link to `prev_sibling`
  /// (direct pointer, never moves during loading). The caller is
  /// responsible for setting the parent's child slot.
  StatusOr<NewNodeResult> AppendNode(const OpCtx& ctx, SchemaNode* sn,
                                     const NidLabel& label, Xptr parent_handle,
                                     Xptr prev_sibling_addr,
                                     std::string_view text);

  /// Writes child-slot `slot` of the element behind `handle` (upgrading the
  /// block arity if needed). Used by the bulk loader for first-child links.
  Status SetChildSlot(const OpCtx& ctx, Xptr handle, int slot, Xptr child);

  /// Deletes the node (must have no children) and detaches it from its
  /// siblings, parent slot and chain. Frees its handle and text.
  Status DeleteLeaf(const OpCtx& ctx, Xptr handle);

  /// Deletes the whole subtree rooted at `handle`.
  Status DeleteSubtree(const OpCtx& ctx, Xptr handle);

  /// Replaces the text content of a text-carrying node.
  Status UpdateText(const OpCtx& ctx, Xptr handle, std::string_view text);

  /// Last child of `elem` in document order (null if childless).
  StatusOr<Xptr> LastChild(const OpCtx& ctx, Xptr elem) const;

  // --- statistics ---------------------------------------------------------

  /// Number of nodes moved by block splits/upgrades so far (benchmarks use
  /// this to validate the constant-work-per-update claim, E4).
  uint64_t moved_nodes() const { return moved_nodes_; }
  uint64_t block_splits() const { return block_splits_; }

 private:
  struct ChainPos {
    Xptr block;          // target block (null = chain empty, create first)
    uint16_t pred_slot;  // predecessor in the in-block chain (kNoSlot = head)
  };

  StatusOr<NidLabel> ReadLabel(const OpCtx& ctx,
                               const NodeDescriptor* d) const;
  Status WriteLabel(const OpCtx& ctx, NodeDescriptor* d,
                    const NidLabel& label);
  Status FreeLabel(const OpCtx& ctx, const NodeDescriptor* d);

  /// Finds the block and in-chain predecessor for a new label.
  StatusOr<ChainPos> FindPosition(const OpCtx& ctx, SchemaNode* sn,
                                  const std::string& label_prefix) const;

  /// Allocates a descriptor slot in `block` after `pred_slot`, splitting the
  /// block first if full. Returns the new descriptor's Xptr.
  StatusOr<Xptr> AllocDescriptor(const OpCtx& ctx, SchemaNode* sn,
                                 ChainPos pos, const NidLabel& label);

  /// Creates an empty block for `sn` with the given arity, linked after
  /// `prev` (null = front of the chain).
  StatusOr<Xptr> NewBlock(const OpCtx& ctx, SchemaNode* sn,
                          uint16_t child_slots, Xptr prev);

  /// Rewrites `block`'s descriptors into >= `min_blocks` fresh blocks with
  /// `new_child_slots` arity, preserving chain order and fixing all inbound
  /// pointers (indirection entries, sibling neighbours, parent slots).
  Status RewriteBlock(const OpCtx& ctx, SchemaNode* sn, Xptr block,
                      uint16_t new_child_slots, size_t min_blocks);

  /// Ensures the element descriptor behind `handle` can address child slot
  /// `slot` (upgrading its block's arity if needed). Returns the (possibly
  /// new) direct pointer.
  StatusOr<Xptr> EnsureArity(const OpCtx& ctx, Xptr handle, int slot);

  /// Updates the inbound pointers of a moved node: indirection entry,
  /// sibling neighbours' direct pointers and the parent's child slot.
  /// `moved` maps old addresses to new ones for nodes moved in the same
  /// operation.
  Status FixInboundPointers(
      const OpCtx& ctx, Xptr old_addr, Xptr new_addr,
      const std::vector<std::pair<Xptr, Xptr>>& moved);

  Status SetParentSlotIfPointsTo(const OpCtx& ctx, Xptr parent_handle,
                                 uint32_t child_schema_id, Xptr expect,
                                 Xptr replacement);

  StorageEnv* env_;
  DescriptiveSchema* schema_;
  TextStore* text_;
  IndirectionTable* indirection_;
  uint32_t doc_id_;

  uint64_t moved_nodes_ = 0;
  uint64_t block_splits_ = 0;
};

}  // namespace sedna

#endif  // SEDNA_STORAGE_NODE_STORE_H_
