#include "storage/text_store.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace sedna {

namespace {

constexpr size_t kSlotDirStart = sizeof(TextPageHeader);

inline TextSlot* SlotArray(uint8_t* page) {
  return reinterpret_cast<TextSlot*>(page + kSlotDirStart);
}
inline const TextSlot* SlotArray(const uint8_t* page) {
  return reinterpret_cast<const TextSlot*>(page + kSlotDirStart);
}

/// Largest payload we place in a single cell; longer strings chain.
constexpr size_t kMaxCellPayload =
    kPageSize - sizeof(TextPageHeader) - sizeof(TextSlot) -
    sizeof(TextCellHeader) - 64;

}  // namespace

uint16_t TextStore::ContiguousFree(const uint8_t* page) {
  const TextPageHeader* h = reinterpret_cast<const TextPageHeader*>(page);
  size_t dir_end = kSlotDirStart + h->slot_count * sizeof(TextSlot);
  size_t cell_start = h->cell_start == 0 ? kPageSize : h->cell_start;
  if (cell_start <= dir_end) return 0;
  return static_cast<uint16_t>(cell_start - dir_end);
}

void TextStore::CompactPage(uint8_t* page) {
  TextPageHeader* h = reinterpret_cast<TextPageHeader*>(page);
  TextSlot* slots = SlotArray(page);
  // Collect live cells, sorted by offset descending, then re-pack from the
  // top of the page.
  std::vector<uint16_t> live;
  for (uint16_t i = 0; i < h->slot_count; ++i) {
    if (slots[i].offset != 0) live.push_back(i);
  }
  std::sort(live.begin(), live.end(), [&](uint16_t a, uint16_t b) {
    return (slots[a].offset & ~kChainedBit) >
           (slots[b].offset & ~kChainedBit);
  });
  uint16_t top = static_cast<uint16_t>(kPageSize);
  // Work on a scratch copy of the cell area to avoid overlap hazards.
  std::vector<uint8_t> scratch(page, page + kPageSize);
  for (uint16_t i : live) {
    uint16_t flag = slots[i].offset & kChainedBit;
    uint16_t off = slots[i].offset & ~kChainedBit;
    uint16_t len = slots[i].length;
    top = static_cast<uint16_t>(top - len);
    std::memcpy(page + top, scratch.data() + off, len);
    slots[i].offset = static_cast<uint16_t>(top | flag);
  }
  h->cell_start = top;
  h->free_bytes = 0;
}

StatusOr<Xptr> TextStore::Insert(const OpCtx& ctx, std::string_view s) {
  if (s.empty()) return kNullXptr;
  if (s.size() > kMaxCellPayload) return InsertChunked(ctx, s);
  return InsertCell(ctx, s, /*chained=*/false);
}

StatusOr<Xptr> TextStore::InsertChunked(const OpCtx& ctx,
                                        std::string_view s) {
  // Build the chain back to front so each cell knows its successor.
  size_t chunks = (s.size() + kMaxCellPayload - 1) / kMaxCellPayload;
  Xptr next;
  for (size_t i = chunks; i-- > 0;) {
    size_t begin = i * kMaxCellPayload;
    size_t len = std::min(kMaxCellPayload, s.size() - begin);
    std::string cell(sizeof(TextCellHeader), '\0');
    TextCellHeader hdr;
    hdr.total_len = static_cast<uint32_t>(s.size());
    hdr.this_len = static_cast<uint32_t>(len);
    hdr.next = next;
    std::memcpy(cell.data(), &hdr, sizeof(hdr));
    cell.append(s.substr(begin, len));
    SEDNA_ASSIGN_OR_RETURN(next, InsertCell(ctx, cell, /*chained=*/true));
  }
  return next;
}

StatusOr<Xptr> TextStore::InsertCell(const OpCtx& ctx, std::string_view bytes,
                                     bool chained) {
  size_t need = bytes.size() + sizeof(TextSlot);
  // Try the current fill page.
  if (fill_page_) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(fill_page_, ctx));
    uint8_t* page = guard.data();
    TextPageHeader* h = reinterpret_cast<TextPageHeader*>(page);
    bool has_free_slot = h->free_slot_head != kNoSlot;
    size_t slot_need = has_free_slot ? bytes.size() : need;
    if (ContiguousFree(page) < slot_need &&
        h->free_bytes >= bytes.size()) {
      CompactPage(page);
    }
    if (ContiguousFree(page) >= slot_need) {
      TextSlot* slots = SlotArray(page);
      uint16_t slot;
      if (has_free_slot) {
        slot = h->free_slot_head;
        h->free_slot_head = slots[slot].length;
      } else {
        slot = h->slot_count++;
      }
      uint16_t cell_start = h->cell_start == 0
                                ? static_cast<uint16_t>(kPageSize)
                                : h->cell_start;
      uint16_t off = static_cast<uint16_t>(cell_start - bytes.size());
      std::memcpy(page + off, bytes.data(), bytes.size());
      h->cell_start = off;
      slots[slot].offset =
          static_cast<uint16_t>(off | (chained ? kChainedBit : 0));
      slots[slot].length = static_cast<uint16_t>(bytes.size());
      guard.MarkDirty();
      return fill_page_ + static_cast<uint32_t>(kSlotDirStart +
                                                slot * sizeof(TextSlot));
    }
  }
  // Allocate a fresh page and retry there.
  SEDNA_ASSIGN_OR_RETURN(Xptr page_base, env_->allocator->AllocPage(ctx));
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(page_base, ctx));
    uint8_t* page = guard.data();
    std::memset(page, 0, kPageSize);
    TextPageHeader* h = reinterpret_cast<TextPageHeader*>(page);
    *h = TextPageHeader{};
    h->doc_id = doc_id_;
    h->self = page_base;
    h->next_page = head_;
    h->cell_start = static_cast<uint16_t>(kPageSize);
    guard.MarkDirty();
  }
  head_ = page_base;
  fill_page_ = page_base;
  return InsertCell(ctx, bytes, chained);
}

StatusOr<std::string> TextStore::Read(const OpCtx& ctx, Xptr ref) const {
  std::string out;
  Xptr cur = ref;
  while (cur) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(cur.PageBase(), ctx));
    const uint8_t* page = guard.data();
    const TextPageHeader* h = reinterpret_cast<const TextPageHeader*>(page);
    if (h->magic != kTextPageMagic) {
      return Status::Corruption("text ref does not point into a text page");
    }
    const TextSlot* slot =
        reinterpret_cast<const TextSlot*>(page + cur.PageOffset());
    uint16_t off = slot->offset & ~kChainedBit;
    if (off == 0) return Status::Corruption("dangling text reference");
    if (slot->offset & kChainedBit) {
      TextCellHeader hdr;
      std::memcpy(&hdr, page + off, sizeof(hdr));
      out.append(reinterpret_cast<const char*>(page + off + sizeof(hdr)),
                 hdr.this_len);
      cur = hdr.next;
    } else {
      out.append(reinterpret_cast<const char*>(page + off), slot->length);
      cur = kNullXptr;
    }
  }
  return out;
}

Status TextStore::Delete(const OpCtx& ctx, Xptr ref) {
  Xptr cur = ref;
  while (cur) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Write(cur.PageBase(), ctx));
    uint8_t* page = guard.data();
    TextPageHeader* h = reinterpret_cast<TextPageHeader*>(page);
    if (h->magic != kTextPageMagic) {
      return Status::Corruption("text ref does not point into a text page");
    }
    TextSlot* slot = reinterpret_cast<TextSlot*>(page + cur.PageOffset());
    uint16_t off = slot->offset & ~kChainedBit;
    if (off == 0) return Status::Corruption("double free of text reference");
    Xptr next;
    if (slot->offset & kChainedBit) {
      TextCellHeader hdr;
      std::memcpy(&hdr, page + off, sizeof(hdr));
      next = hdr.next;
    }
    h->free_bytes = static_cast<uint16_t>(h->free_bytes + slot->length);
    uint16_t slot_index = static_cast<uint16_t>(
        (cur.PageOffset() - kSlotDirStart) / sizeof(TextSlot));
    slot->offset = 0;
    slot->length = h->free_slot_head;
    h->free_slot_head = slot_index;
    guard.MarkDirty();
    cur = next;
  }
  return Status::OK();
}

StatusOr<Xptr> TextStore::Update(const OpCtx& ctx, Xptr ref,
                                 std::string_view s) {
  SEDNA_RETURN_IF_ERROR(Delete(ctx, ref));
  return Insert(ctx, s);
}

Status TextStore::FreeAll(const OpCtx& ctx) {
  Xptr cur = head_;
  while (cur) {
    Xptr next;
    {
      SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(cur, ctx));
      next = reinterpret_cast<const TextPageHeader*>(guard.data())->next_page;
    }
    SEDNA_RETURN_IF_ERROR(env_->allocator->FreePage(cur, ctx));
    cur = next;
  }
  head_ = kNullXptr;
  fill_page_ = kNullXptr;
  return Status::OK();
}

}  // namespace sedna
