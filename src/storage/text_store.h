// Slotted-page storage for variable-length strings (paper Section 4.1:
// "text values ... are stored in blocks according to the well-known
// slotted-page structure method").
//
// A stored string is addressed by the Xptr of its slot-directory entry;
// in-page compaction moves cells but never slots, so references stay valid.
// Strings larger than a page are chained across pages transparently.

#ifndef SEDNA_STORAGE_TEXT_STORE_H_
#define SEDNA_STORAGE_TEXT_STORE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/layout.h"
#include "storage/storage_env.h"

namespace sedna {

class TextStore {
 public:
  TextStore(StorageEnv* env, uint32_t doc_id) : env_(env), doc_id_(doc_id) {}

  /// Head of this document's text-page chain (persisted in the catalog).
  Xptr head() const { return head_; }
  Xptr fill_page() const { return fill_page_; }
  void Restore(Xptr head, Xptr fill) {
    head_ = head;
    fill_page_ = fill;
  }

  /// Stores `s`; returns the reference to hand to a node descriptor.
  /// Returns a null Xptr for the empty string.
  StatusOr<Xptr> Insert(const OpCtx& ctx, std::string_view s);

  /// Reads the full string behind `ref` (empty for null ref).
  StatusOr<std::string> Read(const OpCtx& ctx, Xptr ref) const;

  /// Releases the string's storage. Null ref is a no-op.
  Status Delete(const OpCtx& ctx, Xptr ref);

  /// Replace: delete + insert; returns the new reference.
  StatusOr<Xptr> Update(const OpCtx& ctx, Xptr ref, std::string_view s);

  /// Frees every text page of this document (document drop).
  Status FreeAll(const OpCtx& ctx);

 private:
  // Chained cells carry a TextCellHeader; the flag lives in the slot's
  // offset high bit (page offsets fit in 14 bits).
  static constexpr uint16_t kChainedBit = 0x8000;

  StatusOr<Xptr> InsertChunked(const OpCtx& ctx, std::string_view s);
  StatusOr<Xptr> InsertCell(const OpCtx& ctx, std::string_view bytes,
                            bool chained);
  static void CompactPage(uint8_t* page);
  static uint16_t ContiguousFree(const uint8_t* page);

  StorageEnv* env_;
  uint32_t doc_id_;
  Xptr head_;
  Xptr fill_page_;
};

}  // namespace sedna

#endif  // SEDNA_STORAGE_TEXT_STORE_H_
