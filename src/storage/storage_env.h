// Shared plumbing for the storage sub-stores (node blocks, text pages,
// indirection table): access to the buffer manager and a page-allocation
// interface that the transaction layer can interpose on (to track pages
// allocated by a transaction for rollback).

#ifndef SEDNA_STORAGE_STORAGE_ENV_H_
#define SEDNA_STORAGE_STORAGE_ENV_H_

#include "common/status.h"
#include "sas/buffer_manager.h"
#include "sas/page_directory.h"
#include "sas/xptr.h"

namespace sedna {

/// Context of one storage operation: which transaction/snapshot performs it.
struct OpCtx {
  ResolveContext resolve;

  static OpCtx System() { return OpCtx{}; }
};

/// Allocation interface; implemented directly by SimplePageDirectory via the
/// adapter below, and by the transaction layer with allocation tracking.
class PageAllocator {
 public:
  virtual ~PageAllocator() = default;
  virtual StatusOr<Xptr> AllocPage(const OpCtx& ctx) = 0;
  virtual Status FreePage(Xptr page_base, const OpCtx& ctx) = 0;

  /// Called once the buffer manager exists; implementations that free pages
  /// must discard resident frames before releasing the physical page, or a
  /// later flush would clobber the free-list link on disk.
  virtual void BindBuffers(BufferManager* buffers) { buffers_ = buffers; }

 protected:
  BufferManager* buffers_ = nullptr;
};

/// Pass-through allocator over the page directory.
class DirectoryAllocator : public PageAllocator {
 public:
  explicit DirectoryAllocator(SimplePageDirectory* directory)
      : directory_(directory) {}

  StatusOr<Xptr> AllocPage(const OpCtx&) override {
    return directory_->AllocLogicalPage();
  }

  Status FreePage(Xptr page_base, const OpCtx&) override {
    if (buffers_ != nullptr) {
      StatusOr<PhysPageId> ppn =
          directory_->Resolve(PageIdOf(page_base), ResolveContext{});
      if (ppn.ok()) buffers_->DiscardPhysical(*ppn);
    }
    return directory_->FreeLogicalPage(page_base);
  }

 private:
  SimplePageDirectory* directory_;
};

/// Everything a storage component needs to touch pages.
struct StorageEnv {
  BufferManager* buffers = nullptr;
  PageAllocator* allocator = nullptr;

  /// Pins for read under `ctx`.
  StatusOr<PageGuard> Read(Xptr addr, const OpCtx& ctx) const {
    return buffers->Pin(addr, ctx.resolve, /*for_write=*/false);
  }

  /// Pins for write under `ctx` (may create a page version under MVCC).
  StatusOr<PageGuard> Write(Xptr addr, const OpCtx& ctx) const {
    return buffers->Pin(addr, ctx.resolve, /*for_write=*/true);
  }
};

}  // namespace sedna

#endif  // SEDNA_STORAGE_STORAGE_ENV_H_
