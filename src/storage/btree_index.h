// Persistent B+tree for value indexes (paper Sections 4.1.2 and 6.4).
//
// The paper indexes *node handles* — indirection-table entries that stay
// valid while block splits move descriptors — so the tree maps a composite
// key (string value, handle) to nothing: the key itself carries the handle,
// which makes every entry unique and gives equal-value entries a stable
// total order. Pages are ordinary buffer-pool pages in the SAS (allocated
// through the storage env's PageAllocator, versioned by MVCC like node
// blocks), so checkpointing and transaction rollback need no index-specific
// machinery; durability of index *maintenance* comes from the statement-
// level WAL replaying the update statements that drove it.
//
// Page format (slotted, CalicoDB-style explicit offsets):
//   [BtreeNodeHeader | slot directory: u16 cell offsets, sorted by key | ...
//    free gap ... | cells packed downward from the page end]
// Leaf cell:      varint32 key_len | key bytes | fixed64 handle
// Internal cell:  varint32 key_len | key bytes | fixed64 handle
//                 | fixed64 child page  (separator = first key of child)
// Leaves form a singly-linked chain (header `next`) for range scans.
//
// Simplifications, deliberate and documented (DESIGN section 12): no
// underflow merging (an emptied leaf stays in the tree until the index is
// rebuilt or dropped) and keys longer than kBtreeMaxKeyBytes are stored as
// a prefix (lookups on such keys post-verify against the live node value).

#ifndef SEDNA_STORAGE_BTREE_INDEX_H_
#define SEDNA_STORAGE_BTREE_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "sas/xptr.h"
#include "storage/storage_env.h"

namespace sedna {

inline constexpr uint32_t kBtreeMetaMagic = 0x5eb7ee04;
inline constexpr uint32_t kBtreeNodeMagic = 0x5eb7ee05;

/// Keys are stored up to this many bytes; longer values are indexed by
/// prefix and must be re-verified by the caller against the node value.
inline constexpr size_t kBtreeMaxKeyBytes = 2048;

/// Anchor page of one index tree. Carries the cardinality statistics the
/// cost-based plan choice reads (entry count, distinct keys, height).
struct BtreeMetaHeader {
  uint32_t magic = kBtreeMetaMagic;
  uint32_t height = 1;  // levels; 1 = the root is a leaf
  Xptr self;
  Xptr root;
  Xptr leftmost_leaf;        // head of the leaf chain
  uint64_t entry_count = 0;
  uint64_t distinct_keys = 0;
};
static_assert(sizeof(BtreeMetaHeader) == 48);

struct BtreeNodeHeader {
  uint32_t magic = kBtreeNodeMagic;
  uint16_t level = 0;       // 0 = leaf
  uint16_t count = 0;       // live cells
  uint16_t cell_start = 0;  // lowest byte offset of any cell (cells grow down)
  uint16_t reserved16 = 0;
  uint32_t reserved32 = 0;
  Xptr self;
  Xptr next;      // leaf chain (null for internal nodes and the last leaf)
  Xptr leftmost;  // internal: child for keys below the first separator
};
static_assert(sizeof(BtreeNodeHeader) == 40);

class BtreeIndex {
 public:
  /// Opens an existing tree anchored at `meta` (no I/O until first use).
  BtreeIndex(StorageEnv* env, Xptr meta) : env_(env), meta_(meta) {}

  /// Allocates a meta page plus an empty root leaf; returns the meta Xptr
  /// (the durable identity of the tree, persisted in the catalog).
  static StatusOr<Xptr> Create(StorageEnv* env, const OpCtx& op);

  /// Frees every page of the tree including the meta page.
  Status Destroy(const OpCtx& op);

  /// Inserts (key, handle). Idempotent: re-inserting an existing entry is a
  /// no-op (keeps WAL-replay double-application harmless).
  Status Insert(const OpCtx& op, std::string_view key, Xptr handle);

  /// Removes (key, handle). Idempotent: absent entries are a no-op.
  Status Erase(const OpCtx& op, std::string_view key, Xptr handle);

  /// All handles whose stored key equals `key` (truncated to the prefix
  /// limit), in (key, handle) order.
  Status ScanEqual(const OpCtx& op, std::string_view key,
                   std::vector<Xptr>* handles) const;

  /// All (key, handle) entries with lo <= key and key <(=) hi, in order.
  Status ScanRange(const OpCtx& op, std::string_view lo, std::string_view hi,
                   bool hi_inclusive,
                   std::vector<std::pair<std::string, Xptr>>* out) const;

  /// Every entry in key order (fresh-rebuild comparisons, validation).
  Status ScanAll(const OpCtx& op,
                 std::vector<std::pair<std::string, Xptr>>* out) const;

  struct Stats {
    uint64_t entry_count = 0;
    uint64_t distinct_keys = 0;
    uint32_t height = 1;
  };
  StatusOr<Stats> GetStats(const OpCtx& op) const;

  /// Deep structural sweep: magics and self pointers on every page, key
  /// order within and across pages, separator invariants, leaf-chain ==
  /// in-order traversal, and meta counts matching the entries found.
  Status Validate(const OpCtx& op) const;

  Xptr meta() const { return meta_; }

 private:
  struct Descent {
    Xptr page;
    int child_index;  // -1 = leftmost pointer
  };

  StatusOr<Xptr> FindLeaf(const OpCtx& op, std::string_view key, Xptr handle,
                          std::vector<Descent>* path) const;
  Status SplitAndInsert(const OpCtx& op, std::vector<Descent>& path,
                        Xptr leaf, std::string_view key, Xptr handle);
  Status InsertIntoParent(const OpCtx& op, std::vector<Descent>& path,
                          std::string_view sep_key, Xptr sep_handle,
                          Xptr new_child);
  /// True iff some entry with exactly this (truncated) key exists.
  StatusOr<bool> KeyExists(const OpCtx& op, std::string_view key) const;

  StorageEnv* env_;
  Xptr meta_;
};

}  // namespace sedna

#endif  // SEDNA_STORAGE_BTREE_INDEX_H_
