#include "storage/schema.h"

#include <atomic>

#include "common/coding.h"
#include "common/logging.h"

namespace sedna {

namespace {
// Process-global stamp source: a restored schema must never reuse a version
// an earlier incarnation handed out, or a cache keyed by (schema, version)
// would read through an abort-rollback unrefreshed.
std::atomic<uint64_t> g_schema_version{1};
}  // namespace

SchemaNode* SchemaNode::FindChild(XmlKind k, std::string_view n) const {
  for (SchemaNode* c : children) {
    if (c->kind == k && c->name == n) return c;
  }
  return nullptr;
}

int SchemaNode::Depth() const {
  int d = 0;
  for (const SchemaNode* p = parent; p != nullptr; p = p->parent) ++d;
  return d;
}

std::string SchemaNode::Path() const {
  if (parent == nullptr) return "/";
  std::string p = parent->Path();
  if (p.back() != '/') p += '/';
  switch (kind) {
    case XmlKind::kAttribute:
      return p + "@" + name;
    case XmlKind::kText:
      return p + "text()";
    case XmlKind::kComment:
      return p + "comment()";
    case XmlKind::kPi:
      return p + "processing-instruction(" + name + ")";
    default:
      return p + name;
  }
}

DescriptiveSchema::DescriptiveSchema() {
  auto root = std::make_unique<SchemaNode>();
  root->id = 0;
  root->kind = XmlKind::kDocument;
  root_ = root.get();
  nodes_.push_back(std::move(root));
  version_ = g_schema_version.fetch_add(1, std::memory_order_relaxed);
}

SchemaNode* DescriptiveSchema::GetOrAddChild(SchemaNode* parent, XmlKind kind,
                                             std::string_view name) {
  SchemaNode* existing = parent->FindChild(kind, name);
  if (existing != nullptr) return existing;
  auto child = std::make_unique<SchemaNode>();
  child->id = static_cast<uint32_t>(nodes_.size());
  child->kind = kind;
  child->name = std::string(name);
  child->parent = parent;
  child->slot_in_parent = static_cast<int>(parent->children.size());
  SchemaNode* raw = child.get();
  parent->children.push_back(raw);
  nodes_.push_back(std::move(child));
  version_ = g_schema_version.fetch_add(1, std::memory_order_relaxed);
  return raw;
}

namespace {
void CollectDescendants(const SchemaNode* n, XmlKind kind,
                        std::string_view name,
                        std::vector<SchemaNode*>* out) {
  for (SchemaNode* c : n->children) {
    if (c->kind == kind && (name == "*" || c->name == name)) {
      out->push_back(c);
    }
    CollectDescendants(c, kind, name, out);
  }
}
}  // namespace

std::vector<SchemaNode*> DescriptiveSchema::FindDescendants(
    const SchemaNode* under, XmlKind kind, std::string_view name) const {
  std::vector<SchemaNode*> out;
  CollectDescendants(under, kind, name, &out);
  return out;
}

std::string DescriptiveSchema::Serialize() const {
  std::string blob;
  PutVarint64(&blob, nodes_.size());
  for (const auto& n : nodes_) {
    PutVarint32(&blob, n->id);
    blob.push_back(static_cast<char>(n->kind));
    PutLengthPrefixed(&blob, n->name);
    PutVarint32(&blob, n->parent != nullptr ? n->parent->id + 1 : 0);
    PutFixed64(&blob, n->first_block.raw);
    PutFixed64(&blob, n->last_block.raw);
    PutVarint64(&blob, n->node_count);
  }
  return blob;
}

Status DescriptiveSchema::Deserialize(const std::string& blob) {
  Decoder d(blob);
  uint64_t count = 0;
  if (!d.GetVarint64(&count) || count == 0) {
    return Status::Corruption("bad schema blob");
  }
  nodes_.clear();
  nodes_.reserve(count);
  std::vector<uint32_t> parent_ids(count);
  for (uint64_t i = 0; i < count; ++i) {
    auto n = std::make_unique<SchemaNode>();
    uint32_t id = 0;
    uint8_t kind = 0;
    std::string_view name;
    uint32_t parent_plus1 = 0;
    uint64_t first = 0, last = 0, node_count = 0;
    if (!d.GetVarint32(&id) || !d.GetRaw(&kind, 1) ||
        !d.GetLengthPrefixed(&name) || !d.GetVarint32(&parent_plus1) ||
        !d.GetFixed64(&first) || !d.GetFixed64(&last) ||
        !d.GetVarint64(&node_count)) {
      return Status::Corruption("truncated schema blob");
    }
    if (id != i) return Status::Corruption("non-dense schema ids");
    n->id = id;
    n->kind = static_cast<XmlKind>(kind);
    n->name = std::string(name);
    n->first_block = Xptr(first);
    n->last_block = Xptr(last);
    n->node_count = node_count;
    parent_ids[i] = parent_plus1;
    nodes_.push_back(std::move(n));
  }
  root_ = nodes_[0].get();
  for (uint64_t i = 0; i < count; ++i) {
    if (parent_ids[i] == 0) continue;
    uint32_t pid = parent_ids[i] - 1;
    if (pid >= count) return Status::Corruption("bad schema parent id");
    SchemaNode* parent = nodes_[pid].get();
    nodes_[i]->parent = parent;
    nodes_[i]->slot_in_parent = static_cast<int>(parent->children.size());
    parent->children.push_back(nodes_[i].get());
  }
  version_ = g_schema_version.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace sedna
