// On-page data structures of the schema-driven storage (paper Section 4.1,
// Figure 3).
//
// Three page types live in the SAS:
//
//  * Node blocks — hold fixed-size node descriptors for ONE schema node.
//    Blocks of a schema node form a bidirectional list; descriptors are
//    partly ordered across the list (every descriptor in block i precedes
//    every descriptor in block j in document order iff i < j) and unordered
//    within a block, where an in-block slot chain reconstructs the order.
//    The descriptor size is fixed *per block*: the number of child-pointer
//    slots is a block-header field, so expanding the descriptive schema
//    never rewrites existing blocks (the paper's delayed per-block
//    expansion).
//
//  * Text pages — classic slotted pages holding variable-length strings
//    (text-node content, attribute values, long numbering labels). A string
//    is addressed by the Xptr of its 4-byte slot entry; compaction moves
//    cells but never slots, so references stay valid.
//
//  * Indirection pages — arrays of 8-byte entries holding the current
//    direct Xptr of a node. The entry's own Xptr is the node handle
//    (Section 4.1.2): immutable for the node's lifetime and used for parent
//    pointers so that moving a node updates one entry instead of one field
//    per child.

#ifndef SEDNA_STORAGE_LAYOUT_H_
#define SEDNA_STORAGE_LAYOUT_H_

#include <cstdint>
#include <cstring>

#include "sas/xptr.h"
#include "xml/xml_tree.h"

namespace sedna {

inline constexpr uint32_t kNodeBlockMagic = 0x5eb10c01;
inline constexpr uint32_t kTextPageMagic = 0x5e7e0702;
inline constexpr uint32_t kIndirPageMagic = 0x5e1d1203;

inline constexpr uint16_t kNoSlot = 0xffff;

/// Node-descriptor labels up to this many bytes are stored inline; longer
/// prefixes overflow into text storage.
inline constexpr uint16_t kInlineLabelBytes = 14;

// ---------------------------------------------------------------------------
// Node blocks
// ---------------------------------------------------------------------------

/// Header of a node block (lives at offset 0 of the page).
struct BlockHeader {
  uint32_t magic = kNodeBlockMagic;
  uint32_t schema_id = 0;     // owning schema node
  Xptr self;                  // page base (integrity checking)
  Xptr next_block;            // block list, document order
  Xptr prev_block;
  uint16_t desc_size = 0;     // descriptor size in bytes (fixed per block)
  uint16_t child_slots = 0;   // child-pointer slots per descriptor
  uint16_t capacity = 0;      // descriptor slots in this block
  uint16_t count = 0;         // live descriptors
  uint16_t first_slot = kNoSlot;  // in-block doc-order chain head
  uint16_t last_slot = kNoSlot;   // in-block doc-order chain tail
  uint16_t free_head = kNoSlot;   // free-slot chain head
  uint16_t high_water = 0;        // slots ever used (next fresh slot index)
};
static_assert(sizeof(BlockHeader) == 48);

/// Fixed part of every node descriptor (Figure 3). Kind-specific payload
/// follows: element descriptors carry `child_slots` direct child pointers
/// (one per schema child — pointers to the *first* child of that schema
/// node); text/attribute/comment/PI descriptors carry one text reference.
struct NodeDescriptor {
  // In-block doc-order chain (next-in-block / prev-in-block in the paper).
  uint16_t next_in_block = kNoSlot;
  uint16_t prev_in_block = kNoSlot;
  // Numbering-scheme label: length, delimiter and either an inline prefix
  // or an overflow reference into text storage.
  uint16_t label_len = 0;
  uint8_t delimiter = 0xff;
  uint8_t flags = 0;  // kLabelOverflow
  uint8_t label_inline[kInlineLabelBytes] = {};
  // Node handle: the indirection-table entry that points back at this
  // descriptor (immutable identity, Section 4.1.2).
  Xptr handle;
  // Parent pointer, indirect: the parent's node handle.
  Xptr parent_handle;
  // Direct sibling pointers (support document order across schema nodes).
  Xptr left_sibling;
  Xptr right_sibling;

  static constexpr uint8_t kLabelOverflow = 0x01;

  bool has_overflow_label() const { return flags & kLabelOverflow; }
};
static_assert(sizeof(NodeDescriptor) == 56);

/// Payload of element descriptors: child pointers, indexed by the schema
/// child position. Slot i points at the FIRST child whose schema node is
/// the i-th child of this node's schema node (or null).
inline Xptr* ElementChildSlots(NodeDescriptor* d) {
  return reinterpret_cast<Xptr*>(reinterpret_cast<char*>(d) +
                                 sizeof(NodeDescriptor));
}
inline const Xptr* ElementChildSlots(const NodeDescriptor* d) {
  return reinterpret_cast<const Xptr*>(reinterpret_cast<const char*>(d) +
                                       sizeof(NodeDescriptor));
}

/// Payload of text-carrying descriptors (text, attribute, comment, PI):
/// reference into text storage (null for an empty string).
struct TextPayload {
  Xptr text_ref;
};

inline TextPayload* TextPayloadOf(NodeDescriptor* d) {
  return reinterpret_cast<TextPayload*>(reinterpret_cast<char*>(d) +
                                        sizeof(NodeDescriptor));
}
inline const TextPayload* TextPayloadOf(const NodeDescriptor* d) {
  return reinterpret_cast<const TextPayload*>(
      reinterpret_cast<const char*>(d) + sizeof(NodeDescriptor));
}

/// Descriptor size for a node of `kind` in a block with `child_slots`.
inline uint16_t DescriptorSize(XmlKind kind, uint16_t child_slots) {
  if (kind == XmlKind::kElement || kind == XmlKind::kDocument) {
    return static_cast<uint16_t>(sizeof(NodeDescriptor) +
                                 child_slots * sizeof(Xptr));
  }
  return static_cast<uint16_t>(sizeof(NodeDescriptor) + sizeof(TextPayload));
}

/// Accessors for descriptors within a page whose bytes start at `page`.
inline NodeDescriptor* DescriptorAt(uint8_t* page, uint16_t slot) {
  BlockHeader* h = reinterpret_cast<BlockHeader*>(page);
  return reinterpret_cast<NodeDescriptor*>(page + sizeof(BlockHeader) +
                                           static_cast<size_t>(slot) *
                                               h->desc_size);
}

/// Xptr of the descriptor in `block_base`'s page at `slot`.
inline Xptr DescriptorXptr(Xptr block_base, uint16_t slot,
                           uint16_t desc_size) {
  return block_base + (sizeof(BlockHeader) +
                       static_cast<uint32_t>(slot) * desc_size);
}

/// Slot index of a descriptor Xptr within its block.
inline uint16_t SlotOf(Xptr desc, uint16_t desc_size) {
  return static_cast<uint16_t>((desc.PageOffset() - sizeof(BlockHeader)) /
                               desc_size);
}

// ---------------------------------------------------------------------------
// Text pages (slotted)
// ---------------------------------------------------------------------------

struct TextPageHeader {
  uint32_t magic = kTextPageMagic;
  uint32_t doc_id = 0;        // owning document (for bulk free)
  Xptr self;
  Xptr next_page;             // all text pages of a document, chained
  uint16_t slot_count = 0;    // entries in the slot directory
  uint16_t free_slot_head = kNoSlot;  // reusable slot entries
  uint16_t cell_start = 0;    // lowest used byte of the cell area
  uint16_t free_bytes = 0;    // reclaimable bytes (deleted cells)
};
static_assert(sizeof(TextPageHeader) == 32);

/// Slot directory entry: cell offset within page and cell length. A free
/// slot has offset == 0 and length holding the next free slot index.
struct TextSlot {
  uint16_t offset = 0;
  uint16_t length = 0;
};

/// Per-cell header for strings that continue on another page.
struct TextCellHeader {
  uint32_t total_len = 0;  // full string length (this cell holds a prefix)
  uint32_t this_len = 0;
  Xptr next;               // slot of the continuation cell
};

inline constexpr uint8_t kTextCellChainedFlag = 0x80;

// ---------------------------------------------------------------------------
// Indirection pages
// ---------------------------------------------------------------------------

struct IndirPageHeader {
  uint32_t magic = kIndirPageMagic;
  uint32_t doc_id = 0;
  Xptr self;
  Xptr next_page;
  uint32_t entry_count = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(IndirPageHeader) == 32);

/// An indirection entry is a raw Xptr (8 bytes). Free entries are tagged by
/// bit 63 (real layers never reach 2^31) and link to the next free entry.
inline constexpr uint64_t kIndirFreeTag = 1ull << 63;

inline constexpr uint32_t kIndirEntriesPerPage =
    (kPageSize - sizeof(IndirPageHeader)) / sizeof(Xptr);

}  // namespace sedna

#endif  // SEDNA_STORAGE_LAYOUT_H_
