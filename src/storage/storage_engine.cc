#include "storage/storage_engine.h"

#include "common/coding.h"
#include "common/logging.h"

namespace sedna {

StatusOr<std::unique_ptr<StorageEngine>> StorageEngine::Create(
    const StorageOptions& options, StorageHooks hooks) {
  std::unique_ptr<StorageEngine> engine(new StorageEngine());
  SEDNA_RETURN_IF_ERROR(engine->Init(options, std::move(hooks), true));
  return engine;
}

StatusOr<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const StorageOptions& options, StorageHooks hooks) {
  std::unique_ptr<StorageEngine> engine(new StorageEngine());
  SEDNA_RETURN_IF_ERROR(engine->Init(options, std::move(hooks), false));
  return engine;
}

StorageEngine::~StorageEngine() {
  // Buffer manager flushes on destruction; the catalog is only persisted by
  // explicit Checkpoint (crash-consistency is the WAL's job).
  buffers_.reset();
  Status st = file_.Close();
  if (!st.ok()) {
    SEDNA_LOG(kError) << "closing database file failed: " << st.ToString();
  }
}

Status StorageEngine::Init(const StorageOptions& options, StorageHooks hooks,
                           bool create) {
  file_.set_vfs(options.vfs);
  if (create) {
    SEDNA_RETURN_IF_ERROR(file_.Create(options.path));
  } else {
    SEDNA_RETURN_IF_ERROR(file_.Open(options.path));
  }
  directory_ = std::make_unique<SimplePageDirectory>(&file_);
  if (!create) {
    MasterRecord master = file_.master();
    if (master.directory_blob != kInvalidPhysPage) {
      SEDNA_ASSIGN_OR_RETURN(std::string blob,
                             file_.ReadMetaBlob(master.directory_blob));
      SEDNA_RETURN_IF_ERROR(directory_->Deserialize(blob));
    }
  }
  if (hooks.resolver_factory) {
    owned_resolver_ = hooks.resolver_factory(&file_, directory_.get());
    resolver_ = owned_resolver_.get();
  } else {
    resolver_ = directory_.get();
  }
  if (hooks.allocator_factory) {
    allocator_ = hooks.allocator_factory(directory_.get());
  } else {
    allocator_ = std::make_unique<DirectoryAllocator>(directory_.get());
  }
  buffers_ = std::make_unique<BufferManager>(&file_, resolver_,
                                             options.buffer_frames,
                                             options.pool);
  allocator_->BindBuffers(buffers_.get());
  env_.buffers = buffers_.get();
  env_.allocator = allocator_.get();

  if (!create) {
    MasterRecord master = file_.master();
    if (master.catalog_blob != kInvalidPhysPage) {
      SEDNA_ASSIGN_OR_RETURN(std::string blob,
                             file_.ReadMetaBlob(master.catalog_blob));
      SEDNA_RETURN_IF_ERROR(RestoreCatalog(blob));
    }
  }
  return Status::OK();
}

StatusOr<DocumentStore*> StorageEngine::CreateDocument(
    const OpCtx& ctx, const std::string& name) {
  if (documents_.count(name) > 0) {
    return Status::AlreadyExists("document '" + name + "' already exists");
  }
  auto doc = std::make_unique<DocumentStore>(&env_, next_doc_id_++, name);
  SEDNA_RETURN_IF_ERROR(doc->Create(ctx));
  DocumentStore* raw = doc.get();
  documents_[name] = std::move(doc);
  return raw;
}

StatusOr<DocumentStore*> StorageEngine::GetDocument(const std::string& name) {
  auto it = documents_.find(name);
  if (it == documents_.end()) {
    return Status::NotFound("document '" + name + "' does not exist");
  }
  return it->second.get();
}

Status StorageEngine::DropDocument(const OpCtx& ctx, const std::string& name) {
  auto it = documents_.find(name);
  if (it == documents_.end()) {
    return Status::NotFound("document '" + name + "' does not exist");
  }
  SEDNA_RETURN_IF_ERROR(it->second->Drop(ctx));
  documents_.erase(it);
  return Status::OK();
}

StatusOr<std::string> StorageEngine::SnapshotDocumentMeta(
    const std::string& name) const {
  auto it = documents_.find(name);
  if (it == documents_.end()) {
    return Status::NotFound("document '" + name + "' does not exist");
  }
  return it->second->SerializeMeta();
}

Status StorageEngine::RestoreDocumentMeta(const std::string& name,
                                          const std::string& blob) {
  auto it = documents_.find(name);
  if (it == documents_.end()) {
    auto doc = std::make_unique<DocumentStore>(
        const_cast<StorageEnv*>(&env_), 0, name);
    SEDNA_RETURN_IF_ERROR(doc->RestoreMeta(blob));
    documents_[name] = std::move(doc);
    return Status::OK();
  }
  return it->second->RestoreMeta(blob);
}

Status StorageEngine::RemoveDocumentEntry(const std::string& name) {
  documents_.erase(name);
  return Status::OK();
}

std::vector<std::string> StorageEngine::DocumentNames() const {
  std::vector<std::string> names;
  names.reserve(documents_.size());
  for (const auto& [name, _] : documents_) names.push_back(name);
  return names;
}

std::string StorageEngine::SerializeCatalog() const {
  std::string blob;
  PutFixed32(&blob, next_doc_id_);
  PutVarint64(&blob, documents_.size());
  for (const auto& [name, doc] : documents_) {
    PutLengthPrefixed(&blob, doc->SerializeMeta());
  }
  PutVarint64(&blob, index_defs_.size());
  for (const auto& [name, def] : index_defs_) {
    PutLengthPrefixed(&blob, name);
    PutLengthPrefixed(&blob, def.doc);
    PutLengthPrefixed(&blob, def.path);
    PutFixed64(&blob, def.meta);
  }
  return blob;
}

Status StorageEngine::RestoreCatalog(const std::string& blob) {
  Decoder d(blob);
  uint64_t count = 0;
  if (!d.GetFixed32(&next_doc_id_) || !d.GetVarint64(&count)) {
    return Status::Corruption("bad catalog blob");
  }
  documents_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view meta;
    if (!d.GetLengthPrefixed(&meta)) {
      return Status::Corruption("truncated catalog blob");
    }
    auto doc = std::make_unique<DocumentStore>(&env_, 0, "");
    SEDNA_RETURN_IF_ERROR(doc->RestoreMeta(std::string(meta)));
    std::string name = doc->name();
    documents_[name] = std::move(doc);
  }
  index_defs_.clear();
  uint64_t index_count = 0;
  if (d.GetVarint64(&index_count)) {
    for (uint64_t i = 0; i < index_count; ++i) {
      std::string_view name, doc, path;
      uint64_t meta = 0;
      if (!d.GetLengthPrefixed(&name) || !d.GetLengthPrefixed(&doc) ||
          !d.GetLengthPrefixed(&path) || !d.GetFixed64(&meta)) {
        return Status::Corruption("truncated index definitions");
      }
      index_defs_[std::string(name)] = {std::string(doc), std::string(path),
                                        meta};
    }
  }
  return Status::OK();
}

Status StorageEngine::Checkpoint() {
  SEDNA_RETURN_IF_ERROR(buffers_->FlushAll());
  // Crash-safety ordering: write the new directory/catalog chains into
  // *fresh* pages, make the master that points at them durable, and only
  // then free the superseded chains. Freeing first would let the allocator
  // reuse (and overwrite) pages the still-durable old master points at — a
  // crash between the overwrite and the master sync would then recover into
  // a master whose meta chains are garbage.
  MasterRecord old_master = file_.master();
  SEDNA_ASSIGN_OR_RETURN(PhysPageId dir_head,
                         file_.WriteMetaBlob(directory_->Serialize()));
  SEDNA_ASSIGN_OR_RETURN(PhysPageId cat_head,
                         file_.WriteMetaBlob(SerializeCatalog()));
  // Sync the chain pages (and flushed data pages) before the master write:
  // a disk may persist in-flight sectors in any order, so without this
  // barrier a crash could keep the new master while dropping the chains it
  // points at.
  SEDNA_RETURN_IF_ERROR(file_.Sync());
  MasterRecord master = file_.master();  // WriteMetaBlob grew the file
  master.directory_blob = dir_head;
  master.catalog_blob = cat_head;
  file_.set_master(master);
  SEDNA_RETURN_IF_ERROR(file_.WriteMaster());  // durable (syncs internally)
  SEDNA_RETURN_IF_ERROR(file_.FreeMetaBlob(old_master.directory_blob));
  SEDNA_RETURN_IF_ERROR(file_.FreeMetaBlob(old_master.catalog_blob));
  return file_.Sync();
}

Status StorageEngine::CheckConsistency() {
  for (auto& [name, doc] : documents_) {
    SEDNA_RETURN_IF_ERROR(doc->Validate(OpCtx::System()));
  }
  return Status::OK();
}

}  // namespace sedna
