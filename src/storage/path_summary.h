// Path summary over the descriptive schema (Arion et al., "Path Summaries
// and Path Partitioning in Modern XML Databases").
//
// The descriptive schema is itself a path summary: every distinct root-to-
// node path in the document appears exactly once. What this structure adds
// is the *inverted* access path — a name -> schema-node bucket map — so a
// structural pattern like //a/b resolves by looking up the LAST step's
// bucket and verifying each candidate's ancestor chain backward, instead of
// walking the schema tree forward from the root through every intermediate
// level. For selective names on wide schemas the backward check touches a
// handful of nodes where the forward walk enumerates whole subtrees.
//
// The summary is derived data: it caches the schema version it was built
// from, and DocumentStore::summary() rebuilds it when the schema has grown
// (updates may add schema nodes) or was restored (abort rollback).

#ifndef SEDNA_STORAGE_PATH_SUMMARY_H_
#define SEDNA_STORAGE_PATH_SUMMARY_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "storage/schema.h"

namespace sedna {

/// One structural step of a path pattern, pre-lowered from the query AST
/// (storage has no dependency on the XQuery layer).
struct SummaryStep {
  enum class Axis { kChild, kDescendant, kAttribute };
  Axis axis = Axis::kChild;
  XmlKind kind = XmlKind::kElement;  // the kind the node test selects
  std::string name;                  // "*" matches any name
  bool any_node = false;  // node() test: any kind except attributes
};

class PathSummary {
 public:
  /// Builds the inverted buckets; O(schema size).
  explicit PathSummary(const DescriptiveSchema* schema);

  PathSummary(const PathSummary&) = delete;
  PathSummary& operator=(const PathSummary&) = delete;

  /// Schema version this summary was built from (staleness check).
  uint64_t schema_version() const { return version_; }

  /// All schema nodes reached by the pattern from the schema root, sorted
  /// by node pointer and deduplicated — the same contract as the forward
  /// frontier walk it replaces.
  std::vector<SchemaNode*> Resolve(const std::vector<SummaryStep>& steps) const;

  /// Resolves `steps` starting from an explicit frontier instead of the
  /// root (used to locate predicate target nodes below path results).
  std::vector<SchemaNode*> ResolveFrom(
      const std::vector<SchemaNode*>& frontier,
      const std::vector<SummaryStep>& steps) const;

 private:
  bool StepMatches(const SummaryStep& step, const SchemaNode* node) const;

  const DescriptiveSchema* schema_;
  uint64_t version_;
  // name -> schema nodes with that name (kind filtering happens at resolve
  // time; the schema is small enough that per-kind buckets would not pay).
  std::map<std::string, std::vector<SchemaNode*>, std::less<>> by_name_;
  std::vector<SchemaNode*> all_;
};

}  // namespace sedna

#endif  // SEDNA_STORAGE_PATH_SUMMARY_H_
