#include "storage/btree_index.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"

namespace sedna {

namespace {

constexpr size_t kHdr = sizeof(BtreeNodeHeader);
constexpr size_t kSlotSize = 2;

BtreeNodeHeader* Hdr(uint8_t* page) {
  return reinterpret_cast<BtreeNodeHeader*>(page);
}
const BtreeNodeHeader* Hdr(const uint8_t* page) {
  return reinterpret_cast<const BtreeNodeHeader*>(page);
}

uint16_t Slot(const uint8_t* page, int i) {
  uint16_t v;
  std::memcpy(&v, page + kHdr + kSlotSize * static_cast<size_t>(i), 2);
  return v;
}
void SetSlot(uint8_t* page, int i, uint16_t off) {
  std::memcpy(page + kHdr + kSlotSize * static_cast<size_t>(i), &off, 2);
}

size_t CellBytes(size_t key_len, bool internal) {
  return 2 + key_len + 8 + (internal ? 8 : 0);
}

struct CellView {
  std::string_view key;
  Xptr handle;
  Xptr child;  // internal cells only
};

StatusOr<CellView> CellAt(const uint8_t* page, int i) {
  const BtreeNodeHeader* h = Hdr(page);
  if (i < 0 || i >= h->count) {
    return Status::Corruption("btree cell index out of range");
  }
  uint16_t off = Slot(page, i);
  bool internal = h->level > 0;
  if (off < kHdr + kSlotSize * h->count || off >= kPageSize) {
    return Status::Corruption("btree cell offset out of range");
  }
  uint16_t klen;
  std::memcpy(&klen, page + off, 2);
  if (off + CellBytes(klen, internal) > kPageSize) {
    return Status::Corruption("btree cell overruns the page");
  }
  CellView v;
  v.key = std::string_view(reinterpret_cast<const char*>(page + off + 2), klen);
  v.handle =
      Xptr(DecodeFixed64(reinterpret_cast<const char*>(page + off + 2 + klen)));
  if (internal) {
    v.child = Xptr(
        DecodeFixed64(reinterpret_cast<const char*>(page + off + 10 + klen)));
  }
  return v;
}

int CompareEntry(std::string_view ak, uint64_t ah, std::string_view bk,
                 uint64_t bh) {
  int c = ak.compare(bk);
  if (c != 0) return c < 0 ? -1 : 1;
  if (ah != bh) return ah < bh ? -1 : 1;
  return 0;
}

std::string_view Trunc(std::string_view key) {
  return key.size() > kBtreeMaxKeyBytes ? key.substr(0, kBtreeMaxKeyBytes)
                                        : key;
}

/// First index whose cell is >= (key, handle).
StatusOr<int> LowerBound(const uint8_t* page, std::string_view key,
                         uint64_t handle) {
  int lo = 0, hi = Hdr(page)->count;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    SEDNA_ASSIGN_OR_RETURN(CellView c, CellAt(page, mid));
    if (CompareEntry(c.key, c.handle.raw, key, handle) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First index whose cell is > (key, handle).
StatusOr<int> UpperBound(const uint8_t* page, std::string_view key,
                         uint64_t handle) {
  int lo = 0, hi = Hdr(page)->count;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    SEDNA_ASSIGN_OR_RETURN(CellView c, CellAt(page, mid));
    if (CompareEntry(c.key, c.handle.raw, key, handle) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t FreeGap(const uint8_t* page) {
  const BtreeNodeHeader* h = Hdr(page);
  size_t slot_end = kHdr + kSlotSize * h->count;
  return h->cell_start > slot_end ? h->cell_start - slot_end : 0;
}

/// A cell copied out of a page (owning storage; survives unpinning).
struct OwnedCell {
  std::string key;
  uint64_t handle = 0;
  uint64_t child = 0;
};

StatusOr<std::vector<OwnedCell>> CopyCells(const uint8_t* page) {
  const BtreeNodeHeader* h = Hdr(page);
  std::vector<OwnedCell> out;
  out.reserve(h->count);
  for (int i = 0; i < h->count; ++i) {
    SEDNA_ASSIGN_OR_RETURN(CellView c, CellAt(page, i));
    out.push_back(OwnedCell{std::string(c.key), c.handle.raw, c.child.raw});
  }
  return out;
}

void WriteCell(uint8_t* page, uint16_t off, const OwnedCell& cell,
               bool internal) {
  uint16_t klen = static_cast<uint16_t>(cell.key.size());
  std::memcpy(page + off, &klen, 2);
  std::memcpy(page + off + 2, cell.key.data(), cell.key.size());
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(cell.handle >> (8 * i));
  std::memcpy(page + off + 2 + klen, buf, 8);
  if (internal) {
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(cell.child >> (8 * i));
    std::memcpy(page + off + 10 + klen, buf, 8);
  }
}

/// Reinitializes a page with the given cells, packed from the page end.
void RebuildPage(uint8_t* page, uint16_t level, Xptr self, Xptr next,
                 Xptr leftmost, const std::vector<OwnedCell>& cells) {
  BtreeNodeHeader h;
  h.level = level;
  h.count = static_cast<uint16_t>(cells.size());
  h.self = self;
  h.next = next;
  h.leftmost = leftmost;
  uint16_t cell_start = static_cast<uint16_t>(kPageSize);
  std::memcpy(page, &h, sizeof(h));
  bool internal = level > 0;
  for (size_t i = 0; i < cells.size(); ++i) {
    size_t cb = CellBytes(cells[i].key.size(), internal);
    cell_start = static_cast<uint16_t>(cell_start - cb);
    WriteCell(page, cell_start, cells[i], internal);
    SetSlot(page, static_cast<int>(i), cell_start);
  }
  Hdr(page)->cell_start = cell_start;
}

/// Compacts in place (rewrites the cell area packed, keeping slot order).
Status CompactPage(uint8_t* page) {
  SEDNA_ASSIGN_OR_RETURN(std::vector<OwnedCell> cells, CopyCells(page));
  const BtreeNodeHeader* h = Hdr(page);
  RebuildPage(page, h->level, h->self, h->next, h->leftmost, cells);
  return Status::OK();
}

/// Inserts a cell at slot position `pos`; false if the page is full even
/// after compaction.
StatusOr<bool> InsertCellIntoPage(uint8_t* page, int pos,
                                  const OwnedCell& cell) {
  BtreeNodeHeader* h = Hdr(page);
  bool internal = h->level > 0;
  size_t need = CellBytes(cell.key.size(), internal) + kSlotSize;
  if (FreeGap(page) < need) {
    SEDNA_RETURN_IF_ERROR(CompactPage(page));
    if (FreeGap(page) < need) return false;
  }
  size_t cb = CellBytes(cell.key.size(), internal);
  uint16_t off = static_cast<uint16_t>(h->cell_start - cb);
  WriteCell(page, off, cell, internal);
  h->cell_start = off;
  std::memmove(page + kHdr + kSlotSize * (pos + 1),
               page + kHdr + kSlotSize * pos,
               kSlotSize * static_cast<size_t>(h->count - pos));
  SetSlot(page, pos, off);
  h->count++;
  return true;
}

void EraseCellFromPage(uint8_t* page, int pos) {
  BtreeNodeHeader* h = Hdr(page);
  // The cell bytes become a hole; CompactPage reclaims them on demand when
  // a later insert needs the space.
  std::memmove(page + kHdr + kSlotSize * pos,
               page + kHdr + kSlotSize * (pos + 1),
               kSlotSize * static_cast<size_t>(h->count - pos - 1));
  h->count--;
}

Status CheckNodeMagic(const uint8_t* page, Xptr addr) {
  const BtreeNodeHeader* h = Hdr(page);
  if (h->magic != kBtreeNodeMagic) {
    return Status::Corruption("bad btree node magic");
  }
  if (h->self != addr.PageBase()) {
    return Status::Corruption("btree node self pointer mismatch");
  }
  return Status::OK();
}

}  // namespace

StatusOr<Xptr> BtreeIndex::Create(StorageEnv* env, const OpCtx& op) {
  SEDNA_ASSIGN_OR_RETURN(Xptr meta_page, env->allocator->AllocPage(op));
  SEDNA_ASSIGN_OR_RETURN(Xptr root_page, env->allocator->AllocPage(op));
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env->Write(root_page, op));
    RebuildPage(g.data(), /*level=*/0, root_page, kNullXptr, kNullXptr, {});
    g.MarkDirty();
  }
  SEDNA_ASSIGN_OR_RETURN(PageGuard g, env->Write(meta_page, op));
  BtreeMetaHeader meta;
  meta.self = meta_page;
  meta.root = root_page;
  meta.leftmost_leaf = root_page;
  std::memcpy(g.data(), &meta, sizeof(meta));
  g.MarkDirty();
  return meta_page;
}

Status BtreeIndex::Destroy(const OpCtx& op) {
  SEDNA_ASSIGN_OR_RETURN(Stats stats, GetStats(op));
  (void)stats;  // stats read doubles as a meta-magic check
  // Iterative post-order free: collect internal levels breadth-first (the
  // tree is shallow), then free every page.
  std::vector<Xptr> to_free;
  std::vector<Xptr> frontier;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(meta_, op));
    BtreeMetaHeader meta;
    std::memcpy(&meta, g.data(), sizeof(meta));
    frontier.push_back(meta.root);
  }
  while (!frontier.empty()) {
    std::vector<Xptr> next_level;
    for (Xptr addr : frontier) {
      to_free.push_back(addr);
      SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(addr, op));
      SEDNA_RETURN_IF_ERROR(CheckNodeMagic(g.data(), addr));
      const BtreeNodeHeader* h = Hdr(g.data());
      if (h->level == 0) continue;
      next_level.push_back(h->leftmost);
      for (int i = 0; i < h->count; ++i) {
        SEDNA_ASSIGN_OR_RETURN(CellView c, CellAt(g.data(), i));
        next_level.push_back(c.child);
      }
    }
    frontier = std::move(next_level);
  }
  for (Xptr addr : to_free) {
    SEDNA_RETURN_IF_ERROR(env_->allocator->FreePage(addr.PageBase(), op));
  }
  return env_->allocator->FreePage(meta_.PageBase(), op);
}

StatusOr<Xptr> BtreeIndex::FindLeaf(const OpCtx& op, std::string_view key,
                                    Xptr handle,
                                    std::vector<Descent>* path) const {
  BtreeMetaHeader meta;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(meta_, op));
    std::memcpy(&meta, g.data(), sizeof(meta));
  }
  if (meta.magic != kBtreeMetaMagic) {
    return Status::Corruption("bad btree meta magic");
  }
  Xptr addr = meta.root;
  for (;;) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(addr, op));
    SEDNA_RETURN_IF_ERROR(CheckNodeMagic(g.data(), addr));
    const BtreeNodeHeader* h = Hdr(g.data());
    if (h->level == 0) return addr;
    SEDNA_ASSIGN_OR_RETURN(int j, UpperBound(g.data(), key, handle.raw));
    Xptr child;
    if (j == 0) {
      child = h->leftmost;
    } else {
      SEDNA_ASSIGN_OR_RETURN(CellView c, CellAt(g.data(), j - 1));
      child = c.child;
    }
    if (path != nullptr) path->push_back(Descent{addr, j - 1});
    addr = child;
  }
}

StatusOr<bool> BtreeIndex::KeyExists(const OpCtx& op,
                                     std::string_view key) const {
  SEDNA_ASSIGN_OR_RETURN(Xptr leaf, FindLeaf(op, key, Xptr(0), nullptr));
  Xptr addr = leaf;
  for (;;) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(addr, op));
    SEDNA_RETURN_IF_ERROR(CheckNodeMagic(g.data(), addr));
    const BtreeNodeHeader* h = Hdr(g.data());
    SEDNA_ASSIGN_OR_RETURN(int pos, LowerBound(g.data(), key, 0));
    if (pos < h->count) {
      SEDNA_ASSIGN_OR_RETURN(CellView c, CellAt(g.data(), pos));
      return c.key == key;
    }
    if (!h->next) return false;
    addr = h->next;
  }
}

Status BtreeIndex::Insert(const OpCtx& op, std::string_view full_key,
                          Xptr handle) {
  std::string_view key = Trunc(full_key);
  SEDNA_ASSIGN_OR_RETURN(bool existed, KeyExists(op, key));
  std::vector<Descent> path;
  SEDNA_ASSIGN_OR_RETURN(Xptr leaf, FindLeaf(op, key, handle, &path));
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Write(leaf, op));
    SEDNA_RETURN_IF_ERROR(CheckNodeMagic(g.data(), leaf));
    SEDNA_ASSIGN_OR_RETURN(int pos, LowerBound(g.data(), key, handle.raw));
    if (pos < Hdr(g.data())->count) {
      SEDNA_ASSIGN_OR_RETURN(CellView c, CellAt(g.data(), pos));
      if (c.key == key && c.handle == handle) return Status::OK();  // no-op
    }
    OwnedCell cell{std::string(key), handle.raw, 0};
    SEDNA_ASSIGN_OR_RETURN(bool fit, InsertCellIntoPage(g.data(), pos, cell));
    if (fit) {
      g.MarkDirty();
    } else {
      g.Release();
      SEDNA_RETURN_IF_ERROR(SplitAndInsert(op, path, leaf, key, handle));
    }
  }
  SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Write(meta_, op));
  BtreeMetaHeader* meta = reinterpret_cast<BtreeMetaHeader*>(g.data());
  meta->entry_count++;
  if (!existed) meta->distinct_keys++;
  g.MarkDirty();
  return Status::OK();
}

Status BtreeIndex::SplitAndInsert(const OpCtx& op, std::vector<Descent>& path,
                                  Xptr leaf, std::string_view key,
                                  Xptr handle) {
  std::vector<OwnedCell> cells;
  Xptr old_next;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(leaf, op));
    SEDNA_ASSIGN_OR_RETURN(cells, CopyCells(g.data()));
    old_next = Hdr(g.data())->next;
  }
  OwnedCell entry{std::string(key), handle.raw, 0};
  auto it = std::lower_bound(
      cells.begin(), cells.end(), entry, [](const OwnedCell& a, const OwnedCell& b) {
        return CompareEntry(a.key, a.handle, b.key, b.handle) < 0;
      });
  cells.insert(it, entry);

  SEDNA_ASSIGN_OR_RETURN(Xptr right_page, env_->allocator->AllocPage(op));
  size_t mid = cells.size() / 2;
  std::vector<OwnedCell> left_cells(cells.begin(), cells.begin() + mid);
  std::vector<OwnedCell> right_cells(cells.begin() + mid, cells.end());
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Write(right_page, op));
    RebuildPage(g.data(), /*level=*/0, right_page, old_next, kNullXptr,
                right_cells);
    g.MarkDirty();
  }
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Write(leaf, op));
    RebuildPage(g.data(), /*level=*/0, leaf, right_page, kNullXptr,
                left_cells);
    g.MarkDirty();
  }
  return InsertIntoParent(op, path, right_cells.front().key,
                          Xptr(right_cells.front().handle), right_page);
}

Status BtreeIndex::InsertIntoParent(const OpCtx& op,
                                    std::vector<Descent>& path,
                                    std::string_view sep_key, Xptr sep_handle,
                                    Xptr new_child) {
  if (path.empty()) {
    // Root split: the tree grows one level.
    BtreeMetaHeader meta;
    {
      SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(meta_, op));
      std::memcpy(&meta, g.data(), sizeof(meta));
    }
    SEDNA_ASSIGN_OR_RETURN(Xptr new_root, env_->allocator->AllocPage(op));
    {
      SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Write(new_root, op));
      std::vector<OwnedCell> cells{
          OwnedCell{std::string(sep_key), sep_handle.raw, new_child.raw}};
      RebuildPage(g.data(), static_cast<uint16_t>(meta.height), new_root,
                  kNullXptr, meta.root, cells);
      g.MarkDirty();
    }
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Write(meta_, op));
    BtreeMetaHeader* m = reinterpret_cast<BtreeMetaHeader*>(g.data());
    m->root = new_root;
    m->height++;
    g.MarkDirty();
    return Status::OK();
  }

  Descent at = path.back();
  path.pop_back();
  std::vector<OwnedCell> cells;
  uint16_t level;
  Xptr leftmost;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Write(at.page, op));
    SEDNA_RETURN_IF_ERROR(CheckNodeMagic(g.data(), at.page));
    SEDNA_ASSIGN_OR_RETURN(int pos,
                           LowerBound(g.data(), sep_key, sep_handle.raw));
    OwnedCell cell{std::string(sep_key), sep_handle.raw, new_child.raw};
    SEDNA_ASSIGN_OR_RETURN(bool fit, InsertCellIntoPage(g.data(), pos, cell));
    if (fit) {
      g.MarkDirty();
      return Status::OK();
    }
    SEDNA_ASSIGN_OR_RETURN(cells, CopyCells(g.data()));
    level = Hdr(g.data())->level;
    leftmost = Hdr(g.data())->leftmost;
    auto it = std::lower_bound(cells.begin(), cells.end(), cell,
                               [](const OwnedCell& a, const OwnedCell& b) {
                                 return CompareEntry(a.key, a.handle, b.key,
                                                     b.handle) < 0;
                               });
    cells.insert(it, cell);
  }

  // Internal split: the middle separator moves up, its child becomes the
  // new right node's leftmost pointer.
  size_t mid = cells.size() / 2;
  OwnedCell promoted = cells[mid];
  std::vector<OwnedCell> left_cells(cells.begin(), cells.begin() + mid);
  std::vector<OwnedCell> right_cells(cells.begin() + mid + 1, cells.end());
  SEDNA_ASSIGN_OR_RETURN(Xptr right_page, env_->allocator->AllocPage(op));
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Write(right_page, op));
    RebuildPage(g.data(), level, right_page, kNullXptr, Xptr(promoted.child),
                right_cells);
    g.MarkDirty();
  }
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Write(at.page, op));
    RebuildPage(g.data(), level, at.page, kNullXptr, leftmost, left_cells);
    g.MarkDirty();
  }
  return InsertIntoParent(op, path, promoted.key, Xptr(promoted.handle),
                          right_page);
}

Status BtreeIndex::Erase(const OpCtx& op, std::string_view full_key,
                         Xptr handle) {
  std::string_view key = Trunc(full_key);
  SEDNA_ASSIGN_OR_RETURN(Xptr leaf, FindLeaf(op, key, handle, nullptr));
  bool removed = false;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Write(leaf, op));
    SEDNA_RETURN_IF_ERROR(CheckNodeMagic(g.data(), leaf));
    SEDNA_ASSIGN_OR_RETURN(int pos, LowerBound(g.data(), key, handle.raw));
    if (pos < Hdr(g.data())->count) {
      SEDNA_ASSIGN_OR_RETURN(CellView c, CellAt(g.data(), pos));
      if (c.key == key && c.handle == handle) {
        EraseCellFromPage(g.data(), pos);
        g.MarkDirty();
        removed = true;
      }
    }
  }
  if (!removed) return Status::OK();  // idempotent
  SEDNA_ASSIGN_OR_RETURN(bool still_exists, KeyExists(op, key));
  SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Write(meta_, op));
  BtreeMetaHeader* meta = reinterpret_cast<BtreeMetaHeader*>(g.data());
  if (meta->entry_count > 0) meta->entry_count--;
  if (!still_exists && meta->distinct_keys > 0) meta->distinct_keys--;
  g.MarkDirty();
  return Status::OK();
}

Status BtreeIndex::ScanEqual(const OpCtx& op, std::string_view full_key,
                             std::vector<Xptr>* handles) const {
  std::string_view key = Trunc(full_key);
  SEDNA_ASSIGN_OR_RETURN(Xptr leaf, FindLeaf(op, key, Xptr(0), nullptr));
  Xptr addr = leaf;
  bool first = true;
  while (addr) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(addr, op));
    SEDNA_RETURN_IF_ERROR(CheckNodeMagic(g.data(), addr));
    const BtreeNodeHeader* h = Hdr(g.data());
    int pos = 0;
    if (first) {
      SEDNA_ASSIGN_OR_RETURN(pos, LowerBound(g.data(), key, 0));
      first = false;
    }
    for (; pos < h->count; ++pos) {
      SEDNA_ASSIGN_OR_RETURN(CellView c, CellAt(g.data(), pos));
      if (c.key != key) return Status::OK();
      handles->push_back(c.handle);
    }
    addr = h->next;
  }
  return Status::OK();
}

Status BtreeIndex::ScanRange(
    const OpCtx& op, std::string_view lo, std::string_view hi,
    bool hi_inclusive, std::vector<std::pair<std::string, Xptr>>* out) const {
  std::string_view lo_key = Trunc(lo);
  SEDNA_ASSIGN_OR_RETURN(Xptr leaf, FindLeaf(op, lo_key, Xptr(0), nullptr));
  Xptr addr = leaf;
  bool first = true;
  while (addr) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(addr, op));
    SEDNA_RETURN_IF_ERROR(CheckNodeMagic(g.data(), addr));
    const BtreeNodeHeader* h = Hdr(g.data());
    int pos = 0;
    if (first) {
      SEDNA_ASSIGN_OR_RETURN(pos, LowerBound(g.data(), lo_key, 0));
      first = false;
    }
    for (; pos < h->count; ++pos) {
      SEDNA_ASSIGN_OR_RETURN(CellView c, CellAt(g.data(), pos));
      int cmp = c.key.compare(hi);
      if (cmp > 0 || (cmp == 0 && !hi_inclusive)) return Status::OK();
      out->emplace_back(std::string(c.key), c.handle);
    }
    addr = h->next;
  }
  return Status::OK();
}

Status BtreeIndex::ScanAll(
    const OpCtx& op, std::vector<std::pair<std::string, Xptr>>* out) const {
  Xptr addr;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(meta_, op));
    BtreeMetaHeader meta;
    std::memcpy(&meta, g.data(), sizeof(meta));
    if (meta.magic != kBtreeMetaMagic) {
      return Status::Corruption("bad btree meta magic");
    }
    addr = meta.leftmost_leaf;
  }
  while (addr) {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(addr, op));
    SEDNA_RETURN_IF_ERROR(CheckNodeMagic(g.data(), addr));
    const BtreeNodeHeader* h = Hdr(g.data());
    for (int pos = 0; pos < h->count; ++pos) {
      SEDNA_ASSIGN_OR_RETURN(CellView c, CellAt(g.data(), pos));
      out->emplace_back(std::string(c.key), c.handle);
    }
    addr = h->next;
  }
  return Status::OK();
}

StatusOr<BtreeIndex::Stats> BtreeIndex::GetStats(const OpCtx& op) const {
  SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(meta_, op));
  BtreeMetaHeader meta;
  std::memcpy(&meta, g.data(), sizeof(meta));
  if (meta.magic != kBtreeMetaMagic) {
    return Status::Corruption("bad btree meta magic");
  }
  Stats s;
  s.entry_count = meta.entry_count;
  s.distinct_keys = meta.distinct_keys;
  s.height = meta.height;
  return s;
}

namespace {

struct ValidateState {
  std::vector<Xptr> leaves_in_order;
  uint64_t entries = 0;
  uint64_t distinct = 0;
  std::string prev_key;
  uint64_t prev_handle = 0;
  bool have_prev = false;
};

}  // namespace

Status BtreeIndex::Validate(const OpCtx& op) const {
  BtreeMetaHeader meta;
  {
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(meta_, op));
    std::memcpy(&meta, g.data(), sizeof(meta));
  }
  if (meta.magic != kBtreeMetaMagic) {
    return Status::Corruption("bad btree meta magic");
  }

  // Recursive in-order walk checking levels, separator bounds and cell
  // sanity. Every entry in a subtree must satisfy lo <= entry < hi (the
  // separators on the descent path) — global ordering alone would not catch
  // entries a root-to-leaf search could never reach.
  ValidateState state;
  struct Walker {
    const BtreeIndex* tree;
    const OpCtx& op;
    ValidateState* state;
    Status Walk(Xptr addr, int expected_level, const OwnedCell* lo,
                const OwnedCell* hi) {
      SEDNA_ASSIGN_OR_RETURN(PageGuard g, tree->env_->Read(addr, op));
      SEDNA_RETURN_IF_ERROR(CheckNodeMagic(g.data(), addr));
      const BtreeNodeHeader* h = Hdr(g.data());
      if (h->level != expected_level) {
        return Status::Corruption("btree level mismatch");
      }
      if (h->level == 0) {
        state->leaves_in_order.push_back(addr);
        for (int i = 0; i < h->count; ++i) {
          SEDNA_ASSIGN_OR_RETURN(CellView c, CellAt(g.data(), i));
          if (state->have_prev &&
              CompareEntry(state->prev_key, state->prev_handle, c.key,
                           c.handle.raw) >= 0) {
            return Status::Corruption("btree keys out of order");
          }
          if (lo != nullptr &&
              CompareEntry(c.key, c.handle.raw, lo->key, lo->handle) < 0) {
            return Status::Corruption("btree entry below subtree separator");
          }
          if (hi != nullptr &&
              CompareEntry(c.key, c.handle.raw, hi->key, hi->handle) >= 0) {
            return Status::Corruption("btree entry above subtree separator");
          }
          if (!state->have_prev || state->prev_key != c.key) {
            state->distinct++;
          }
          state->prev_key = std::string(c.key);
          state->prev_handle = c.handle.raw;
          state->have_prev = true;
          state->entries++;
        }
        return Status::OK();
      }
      // Internal node: copy the cells so the guard need not stay pinned
      // across recursion.
      SEDNA_ASSIGN_OR_RETURN(std::vector<OwnedCell> cells, CopyCells(g.data()));
      Xptr leftmost = h->leftmost;
      int level = h->level;
      g.Release();
      for (size_t i = 0; i < cells.size(); ++i) {
        if (i > 0 && CompareEntry(cells[i - 1].key, cells[i - 1].handle,
                                  cells[i].key, cells[i].handle) >= 0) {
          return Status::Corruption("btree separators out of order");
        }
      }
      const OwnedCell* first_sep = cells.empty() ? hi : &cells.front();
      SEDNA_RETURN_IF_ERROR(Walk(leftmost, level - 1, lo, first_sep));
      for (size_t i = 0; i < cells.size(); ++i) {
        const OwnedCell* next_sep = i + 1 < cells.size() ? &cells[i + 1] : hi;
        SEDNA_RETURN_IF_ERROR(
            Walk(Xptr(cells[i].child), level - 1, &cells[i], next_sep));
      }
      return Status::OK();
    }
  };
  Walker walker{this, op, &state};
  SEDNA_RETURN_IF_ERROR(walker.Walk(
      meta.root, static_cast<int>(meta.height) - 1, nullptr, nullptr));

  if (state.entries != meta.entry_count) {
    return Status::Corruption("btree entry count does not match meta");
  }
  if (state.distinct != meta.distinct_keys) {
    return Status::Corruption("btree distinct-key count does not match meta");
  }
  // The leaf chain must enumerate exactly the in-order leaves.
  Xptr addr = meta.leftmost_leaf;
  size_t i = 0;
  while (addr) {
    if (i >= state.leaves_in_order.size() ||
        state.leaves_in_order[i] != addr) {
      return Status::Corruption("btree leaf chain diverges from tree order");
    }
    SEDNA_ASSIGN_OR_RETURN(PageGuard g, env_->Read(addr, op));
    addr = Hdr(g.data())->next;
    i++;
  }
  if (i != state.leaves_in_order.size()) {
    return Status::Corruption("btree leaf chain shorter than tree");
  }
  return Status::OK();
}

}  // namespace sedna
