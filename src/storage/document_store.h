// Per-document storage facade: wires the descriptive schema, node blocks,
// text store and indirection table of one XML document, and provides bulk
// load (XML tree -> storage) and materialization (storage -> XML tree).

#ifndef SEDNA_STORAGE_DOCUMENT_STORE_H_
#define SEDNA_STORAGE_DOCUMENT_STORE_H_

#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "storage/indirection.h"
#include "storage/node_store.h"
#include "storage/path_summary.h"
#include "storage/schema.h"
#include "storage/storage_env.h"
#include "storage/text_store.h"
#include "xml/xml_tree.h"

namespace sedna {

class DocumentStore {
 public:
  DocumentStore(StorageEnv* env, uint32_t doc_id, std::string name);

  const std::string& name() const { return name_; }
  uint32_t doc_id() const { return doc_id_; }
  Xptr root_handle() const { return root_handle_; }

  NodeStore* nodes() { return &nodes_; }
  const NodeStore* nodes() const { return &nodes_; }
  DescriptiveSchema* schema() { return &schema_; }
  const DescriptiveSchema* schema() const { return &schema_; }
  TextStore* text() { return &text_; }
  IndirectionTable* indirection() { return &indirection_; }

  /// Path summary over the current schema, built lazily and rebuilt when
  /// the schema version moves (updates grow the schema only under an
  /// exclusive document lock, so a pointer handed to a shared-lock reader
  /// stays valid for the duration of its statement).
  PathSummary* summary() const;

  /// Creates the (empty) document: just the root descriptor.
  Status Create(const OpCtx& ctx);

  /// Bulk-loads the children of `doc` (an XmlKind::kDocument tree) under the
  /// root. Pre-scans the tree to register the full descriptive schema so
  /// that block arities are final and loading never relocates nodes.
  Status Load(const OpCtx& ctx, const XmlNode& doc);

  /// Materializes the subtree rooted at the node behind `handle`.
  StatusOr<std::unique_ptr<XmlNode>> Materialize(const OpCtx& ctx,
                                                 Xptr handle) const;

  /// Materializes the whole document.
  StatusOr<std::unique_ptr<XmlNode>> MaterializeDocument(
      const OpCtx& ctx) const;

  /// Total stored nodes (excluding the document node itself).
  uint64_t node_count() const;

  /// Frees every page owned by this document.
  Status Drop(const OpCtx& ctx);

  /// Deep consistency check: walks the indirection page chain and free
  /// list, every schema node's block chain (headers, slot chains, free
  /// slots) and cross-checks each live descriptor's handle against the
  /// indirection table. Returns kCorruption with a diagnostic naming the
  /// first inconsistent page. Used by crash-recovery tests and Database
  /// consistency checks; cost is linear in document size.
  Status Validate(const OpCtx& ctx) const;

  /// Catalog (de)serialization.
  std::string SerializeMeta() const;
  Status RestoreMeta(const std::string& blob);

 private:
  Status LoadChildren(const OpCtx& ctx, const XmlNode& elem, SchemaNode* esn,
                      Xptr elem_handle, const NidLabel& elem_label);
  void RegisterSchema(const XmlNode& node, SchemaNode* sn);
  StatusOr<std::unique_ptr<XmlNode>> MaterializeAt(const OpCtx& ctx,
                                                   Xptr addr) const;

  StorageEnv* env_;
  uint32_t doc_id_;
  std::string name_;
  DescriptiveSchema schema_;
  TextStore text_;
  IndirectionTable indirection_;
  NodeStore nodes_;
  Xptr root_handle_;
  mutable std::mutex summary_mu_;
  mutable std::unique_ptr<PathSummary> summary_;
};

}  // namespace sedna

#endif  // SEDNA_STORAGE_DOCUMENT_STORE_H_
