#include "storage/document_store.h"

#include <unordered_map>

#include "common/coding.h"
#include "common/logging.h"

namespace sedna {

DocumentStore::DocumentStore(StorageEnv* env, uint32_t doc_id,
                             std::string name)
    : env_(env),
      doc_id_(doc_id),
      name_(std::move(name)),
      text_(env, doc_id),
      indirection_(env, doc_id),
      nodes_(env, &schema_, &text_, &indirection_, doc_id) {}

Status DocumentStore::Create(const OpCtx& ctx) {
  SEDNA_ASSIGN_OR_RETURN(root_handle_, nodes_.CreateRoot(ctx));
  return Status::OK();
}

void DocumentStore::RegisterSchema(const XmlNode& node, SchemaNode* sn) {
  for (const auto& child : node.children) {
    SchemaNode* csn = schema_.GetOrAddChild(sn, child->kind, child->name);
    if (child->kind == XmlKind::kElement) {
      RegisterSchema(*child, csn);
    }
  }
}

Status DocumentStore::Load(const OpCtx& ctx, const XmlNode& doc) {
  if (doc.kind != XmlKind::kDocument) {
    return Status::InvalidArgument("Load expects a document node");
  }
  if (!root_handle_) {
    return Status::FailedPrecondition("document not created");
  }
  RegisterSchema(doc, schema_.root());
  return LoadChildren(ctx, doc, schema_.root(), root_handle_,
                      NidLabel::Root());
}

Status DocumentStore::LoadChildren(const OpCtx& ctx, const XmlNode& elem,
                                   SchemaNode* esn, Xptr elem_handle,
                                   const NidLabel& elem_label) {
  if (elem.children.empty()) return Status::OK();
  std::vector<NidLabel> labels =
      nid::AllocChildren(elem_label, elem.children.size());
  Xptr prev_addr;
  std::unordered_map<SchemaNode*, Xptr> first_of_kind;
  for (size_t i = 0; i < elem.children.size(); ++i) {
    const XmlNode& child = *elem.children[i];
    SchemaNode* csn = esn->FindChild(child.kind, child.name);
    SEDNA_CHECK(csn != nullptr) << "schema pre-scan missed a child";
    std::string_view text =
        child.kind == XmlKind::kElement ? std::string_view() : child.value;
    SEDNA_ASSIGN_OR_RETURN(
        NodeStore::NewNodeResult r,
        nodes_.AppendNode(ctx, csn, labels[i], elem_handle, prev_addr, text));
    first_of_kind.emplace(csn, r.addr);
    if (child.kind == XmlKind::kElement) {
      SEDNA_RETURN_IF_ERROR(
          LoadChildren(ctx, child, csn, r.handle, labels[i]));
    }
    prev_addr = r.addr;
  }
  for (const auto& [csn, first_addr] : first_of_kind) {
    SEDNA_RETURN_IF_ERROR(nodes_.SetChildSlot(ctx, elem_handle,
                                              csn->slot_in_parent,
                                              first_addr));
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<XmlNode>> DocumentStore::MaterializeAt(
    const OpCtx& ctx, Xptr addr) const {
  SEDNA_ASSIGN_OR_RETURN(NodeInfo info, nodes_.Info(ctx, addr));
  const SchemaNode* sn = schema_.node(info.schema_id);
  auto out = std::make_unique<XmlNode>(sn->kind, sn->name);
  if (sn->kind == XmlKind::kElement || sn->kind == XmlKind::kDocument) {
    SEDNA_ASSIGN_OR_RETURN(Xptr child, nodes_.FirstChild(ctx, addr));
    while (child) {
      SEDNA_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> c,
                             MaterializeAt(ctx, child));
      out->Add(std::move(c));
      SEDNA_ASSIGN_OR_RETURN(NodeInfo ci, nodes_.Info(ctx, child));
      child = ci.right_sibling;
    }
  } else {
    SEDNA_ASSIGN_OR_RETURN(out->value, nodes_.Text(ctx, addr));
  }
  return out;
}

StatusOr<std::unique_ptr<XmlNode>> DocumentStore::Materialize(
    const OpCtx& ctx, Xptr handle) const {
  SEDNA_ASSIGN_OR_RETURN(Xptr addr, indirection_.Get(ctx, handle));
  return MaterializeAt(ctx, addr);
}

StatusOr<std::unique_ptr<XmlNode>> DocumentStore::MaterializeDocument(
    const OpCtx& ctx) const {
  return Materialize(ctx, root_handle_);
}

uint64_t DocumentStore::node_count() const {
  uint64_t total = 0;
  for (size_t i = 1; i < schema_.size(); ++i) {
    total += schema_.node(static_cast<uint32_t>(i))->node_count;
  }
  return total;
}

Status DocumentStore::Drop(const OpCtx& ctx) {
  // Free all node blocks of every schema node.
  for (size_t i = 0; i < schema_.size(); ++i) {
    const SchemaNode* sn = schema_.node(static_cast<uint32_t>(i));
    Xptr block = sn->first_block;
    while (block) {
      Xptr next;
      {
        SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(block, ctx));
        next = reinterpret_cast<const BlockHeader*>(guard.data())->next_block;
      }
      SEDNA_RETURN_IF_ERROR(env_->allocator->FreePage(block, ctx));
      block = next;
    }
  }
  SEDNA_RETURN_IF_ERROR(text_.FreeAll(ctx));
  SEDNA_RETURN_IF_ERROR(indirection_.FreeAll(ctx));
  root_handle_ = kNullXptr;
  return Status::OK();
}

std::string DocumentStore::SerializeMeta() const {
  std::string blob;
  PutLengthPrefixed(&blob, name_);
  PutFixed32(&blob, doc_id_);
  PutFixed64(&blob, root_handle_.raw);
  PutFixed64(&blob, text_.head().raw);
  PutFixed64(&blob, text_.fill_page().raw);
  PutFixed64(&blob, indirection_.head().raw);
  PutFixed64(&blob, indirection_.free_head().raw);
  PutLengthPrefixed(&blob, schema_.Serialize());
  return blob;
}

Status DocumentStore::RestoreMeta(const std::string& blob) {
  Decoder d(blob);
  std::string_view name;
  uint64_t root = 0, text_head = 0, text_fill = 0, ind_head = 0,
           ind_free = 0;
  std::string_view schema_blob;
  if (!d.GetLengthPrefixed(&name) || !d.GetFixed32(&doc_id_) ||
      !d.GetFixed64(&root) || !d.GetFixed64(&text_head) ||
      !d.GetFixed64(&text_fill) || !d.GetFixed64(&ind_head) ||
      !d.GetFixed64(&ind_free) || !d.GetLengthPrefixed(&schema_blob)) {
    return Status::Corruption("bad document meta blob");
  }
  name_ = std::string(name);
  root_handle_ = Xptr(root);
  text_.Restore(Xptr(text_head), Xptr(text_fill));
  indirection_.Restore(Xptr(ind_head), Xptr(ind_free));
  return schema_.Deserialize(std::string(schema_blob));
}

}  // namespace sedna
