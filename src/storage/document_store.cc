#include "storage/document_store.h"

#include <set>
#include <unordered_map>
#include <vector>

#include "common/coding.h"
#include "common/logging.h"

namespace sedna {

DocumentStore::DocumentStore(StorageEnv* env, uint32_t doc_id,
                             std::string name)
    : env_(env),
      doc_id_(doc_id),
      name_(std::move(name)),
      text_(env, doc_id),
      indirection_(env, doc_id),
      nodes_(env, &schema_, &text_, &indirection_, doc_id) {}

Status DocumentStore::Create(const OpCtx& ctx) {
  SEDNA_ASSIGN_OR_RETURN(root_handle_, nodes_.CreateRoot(ctx));
  return Status::OK();
}

void DocumentStore::RegisterSchema(const XmlNode& node, SchemaNode* sn) {
  for (const auto& child : node.children) {
    SchemaNode* csn = schema_.GetOrAddChild(sn, child->kind, child->name);
    if (child->kind == XmlKind::kElement) {
      RegisterSchema(*child, csn);
    }
  }
}

Status DocumentStore::Load(const OpCtx& ctx, const XmlNode& doc) {
  if (doc.kind != XmlKind::kDocument) {
    return Status::InvalidArgument("Load expects a document node");
  }
  if (!root_handle_) {
    return Status::FailedPrecondition("document not created");
  }
  RegisterSchema(doc, schema_.root());
  return LoadChildren(ctx, doc, schema_.root(), root_handle_,
                      NidLabel::Root());
}

Status DocumentStore::LoadChildren(const OpCtx& ctx, const XmlNode& elem,
                                   SchemaNode* esn, Xptr elem_handle,
                                   const NidLabel& elem_label) {
  if (elem.children.empty()) return Status::OK();
  std::vector<NidLabel> labels =
      nid::AllocChildren(elem_label, elem.children.size());
  Xptr prev_addr;
  std::unordered_map<SchemaNode*, Xptr> first_of_kind;
  for (size_t i = 0; i < elem.children.size(); ++i) {
    const XmlNode& child = *elem.children[i];
    SchemaNode* csn = esn->FindChild(child.kind, child.name);
    SEDNA_CHECK(csn != nullptr) << "schema pre-scan missed a child";
    std::string_view text =
        child.kind == XmlKind::kElement ? std::string_view() : child.value;
    SEDNA_ASSIGN_OR_RETURN(
        NodeStore::NewNodeResult r,
        nodes_.AppendNode(ctx, csn, labels[i], elem_handle, prev_addr, text));
    first_of_kind.emplace(csn, r.addr);
    if (child.kind == XmlKind::kElement) {
      SEDNA_RETURN_IF_ERROR(
          LoadChildren(ctx, child, csn, r.handle, labels[i]));
    }
    prev_addr = r.addr;
  }
  for (const auto& [csn, first_addr] : first_of_kind) {
    SEDNA_RETURN_IF_ERROR(nodes_.SetChildSlot(ctx, elem_handle,
                                              csn->slot_in_parent,
                                              first_addr));
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<XmlNode>> DocumentStore::MaterializeAt(
    const OpCtx& ctx, Xptr addr) const {
  SEDNA_ASSIGN_OR_RETURN(NodeInfo info, nodes_.Info(ctx, addr));
  const SchemaNode* sn = schema_.node(info.schema_id);
  auto out = std::make_unique<XmlNode>(sn->kind, sn->name);
  if (sn->kind == XmlKind::kElement || sn->kind == XmlKind::kDocument) {
    SEDNA_ASSIGN_OR_RETURN(Xptr child, nodes_.FirstChild(ctx, addr));
    while (child) {
      SEDNA_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> c,
                             MaterializeAt(ctx, child));
      out->Add(std::move(c));
      SEDNA_ASSIGN_OR_RETURN(NodeInfo ci, nodes_.Info(ctx, child));
      child = ci.right_sibling;
    }
  } else {
    SEDNA_ASSIGN_OR_RETURN(out->value, nodes_.Text(ctx, addr));
  }
  return out;
}

StatusOr<std::unique_ptr<XmlNode>> DocumentStore::Materialize(
    const OpCtx& ctx, Xptr handle) const {
  SEDNA_ASSIGN_OR_RETURN(Xptr addr, indirection_.Get(ctx, handle));
  return MaterializeAt(ctx, addr);
}

StatusOr<std::unique_ptr<XmlNode>> DocumentStore::MaterializeDocument(
    const OpCtx& ctx) const {
  return Materialize(ctx, root_handle_);
}

PathSummary* DocumentStore::summary() const {
  std::lock_guard<std::mutex> lock(summary_mu_);
  if (summary_ == nullptr || summary_->schema_version() != schema_.version()) {
    summary_ = std::make_unique<PathSummary>(&schema_);
  }
  return summary_.get();
}

uint64_t DocumentStore::node_count() const {
  uint64_t total = 0;
  for (size_t i = 1; i < schema_.size(); ++i) {
    total += schema_.node(static_cast<uint32_t>(i))->node_count;
  }
  return total;
}

Status DocumentStore::Drop(const OpCtx& ctx) {
  // Free all node blocks of every schema node.
  for (size_t i = 0; i < schema_.size(); ++i) {
    const SchemaNode* sn = schema_.node(static_cast<uint32_t>(i));
    Xptr block = sn->first_block;
    while (block) {
      Xptr next;
      {
        SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(block, ctx));
        next = reinterpret_cast<const BlockHeader*>(guard.data())->next_block;
      }
      SEDNA_RETURN_IF_ERROR(env_->allocator->FreePage(block, ctx));
      block = next;
    }
  }
  SEDNA_RETURN_IF_ERROR(text_.FreeAll(ctx));
  SEDNA_RETURN_IF_ERROR(indirection_.FreeAll(ctx));
  root_handle_ = kNullXptr;
  return Status::OK();
}

namespace {

Status ValidationError(const std::string& doc, const std::string& what) {
  return Status::Corruption("document '" + doc + "': " + what);
}

}  // namespace

Status DocumentStore::Validate(const OpCtx& ctx) const {
  // --- Indirection page chain -------------------------------------------
  std::set<uint64_t> indir_pages;
  {
    Xptr cur = indirection_.head();
    while (cur) {
      if (!indir_pages.insert(cur.raw).second) {
        return ValidationError(name_, "cycle in indirection page chain at " +
                                          cur.ToString());
      }
      SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(cur, ctx));
      const IndirPageHeader* h =
          reinterpret_cast<const IndirPageHeader*>(guard.data());
      if (h->magic != kIndirPageMagic || h->self != cur ||
          h->doc_id != doc_id_) {
        return ValidationError(
            name_, "indirection chain reaches foreign page " + cur.ToString() +
                       " (magic " + std::to_string(h->magic) + ", self " +
                       Xptr(h->self).ToString() + ", doc " +
                       std::to_string(h->doc_id) + ")");
      }
      cur = h->next_page;
    }
  }
  auto valid_entry_addr = [&](Xptr addr) {
    if (indir_pages.count(addr.PageBase().raw) == 0) return false;
    uint32_t off = addr.PageOffset();
    return off >= sizeof(IndirPageHeader) && off % sizeof(uint64_t) == 0 &&
           off + sizeof(uint64_t) <= kPageSize;
  };

  // --- Indirection free list --------------------------------------------
  std::set<uint64_t> free_entries;
  {
    Xptr cur = indirection_.free_head();
    while (cur) {
      if (!valid_entry_addr(cur)) {
        return ValidationError(name_,
                               "indirection free list leaves the document's "
                               "indirection pages at " +
                                   cur.ToString());
      }
      if (!free_entries.insert(cur.raw).second) {
        return ValidationError(
            name_, "cycle in indirection free list at " + cur.ToString());
      }
      SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(cur.PageBase(), ctx));
      uint64_t entry;
      std::memcpy(&entry, guard.data() + cur.PageOffset(), sizeof(entry));
      if ((entry & kIndirFreeTag) == 0) {
        return ValidationError(
            name_, "indirection free list points at live entry " +
                       cur.ToString() + " -> " + Xptr(entry).ToString());
      }
      cur = Xptr(entry & ~kIndirFreeTag);
    }
  }

  // --- Text page chain ---------------------------------------------------
  std::set<uint64_t> text_pages;
  {
    Xptr cur = text_.head();
    while (cur) {
      if (!text_pages.insert(cur.raw).second) {
        return ValidationError(name_,
                               "cycle in text page chain at " + cur.ToString());
      }
      SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(cur, ctx));
      const TextPageHeader* h =
          reinterpret_cast<const TextPageHeader*>(guard.data());
      if (h->magic != kTextPageMagic || h->self != cur ||
          h->doc_id != doc_id_) {
        return ValidationError(
            name_, "text chain reaches foreign page " + cur.ToString() +
                       " (magic " + std::to_string(h->magic) + ", self " +
                       Xptr(h->self).ToString() + ", doc " +
                       std::to_string(h->doc_id) + ")");
      }
      cur = h->next_page;
    }
  }

  // --- Node blocks, per schema node --------------------------------------
  std::set<uint64_t> seen_blocks;  // across ALL schema nodes: cross-links
  uint64_t live_descriptors = 0;
  for (size_t i = 0; i < schema_.size(); ++i) {
    const SchemaNode* sn = schema_.node(static_cast<uint32_t>(i));
    uint64_t sn_live = 0;
    Xptr block = sn->first_block;
    Xptr expect_prev = kNullXptr;
    while (block) {
      if (!seen_blocks.insert(block.raw).second) {
        return ValidationError(name_, "node block " + block.ToString() +
                                          " appears on two block chains "
                                          "(schema '" +
                                          sn->Path() + "')");
      }
      SEDNA_ASSIGN_OR_RETURN(PageGuard guard, env_->Read(block, ctx));
      const uint8_t* page = guard.data();
      const BlockHeader* h = reinterpret_cast<const BlockHeader*>(page);
      if (h->magic != kNodeBlockMagic || h->self != block ||
          h->schema_id != sn->id) {
        return ValidationError(
            name_, "block chain of schema '" + sn->Path() +
                       "' reaches foreign page " + block.ToString() +
                       " (magic " + std::to_string(h->magic) + ", self " +
                       Xptr(h->self).ToString() + ", schema " +
                       std::to_string(h->schema_id) + ")");
      }
      if (h->prev_block != expect_prev) {
        return ValidationError(name_, "broken prev_block link at " +
                                          block.ToString());
      }
      if (h->desc_size < sizeof(NodeDescriptor) ||
          sizeof(BlockHeader) +
                  static_cast<size_t>(h->capacity) * h->desc_size >
              kPageSize ||
          h->high_water > h->capacity || h->count > h->high_water) {
        return ValidationError(
            name_, "implausible block header in " + block.ToString() +
                       " (desc_size " + std::to_string(h->desc_size) +
                       ", capacity " + std::to_string(h->capacity) +
                       ", count " + std::to_string(h->count) +
                       ", high_water " + std::to_string(h->high_water) + ")");
      }
      // Walk the in-block doc-order chain; every live slot exactly once.
      std::vector<bool> live(h->high_water, false);
      uint16_t slot = h->first_slot;
      uint16_t prev = kNoSlot;
      uint16_t walked = 0;
      while (slot != kNoSlot) {
        if (slot >= h->high_water || live[slot]) {
          return ValidationError(
              name_, "in-block chain of " + block.ToString() +
                         " is out of range or cyclic at slot " +
                         std::to_string(slot));
        }
        live[slot] = true;
        const NodeDescriptor* d = DescriptorAt(
            const_cast<uint8_t*>(page), slot);
        if (d->prev_in_block != prev) {
          return ValidationError(name_,
                                 "broken prev_in_block link in " +
                                     block.ToString() + " at slot " +
                                     std::to_string(slot));
        }
        // Handle must resolve back to this descriptor.
        if (!valid_entry_addr(d->handle)) {
          return ValidationError(
              name_, "descriptor " + block.ToString() + "#" +
                         std::to_string(slot) + " carries handle " +
                         d->handle.ToString() +
                         " outside the document's indirection pages");
        }
        {
          SEDNA_ASSIGN_OR_RETURN(PageGuard ig,
                                 env_->Read(d->handle.PageBase(), ctx));
          uint64_t entry;
          std::memcpy(&entry, ig.data() + d->handle.PageOffset(),
                      sizeof(entry));
          Xptr expect = DescriptorXptr(block, slot, h->desc_size);
          if (entry & kIndirFreeTag) {
            return ValidationError(name_, "live descriptor " +
                                              expect.ToString() +
                                              " has a freed handle " +
                                              d->handle.ToString());
          }
          if (Xptr(entry) != expect) {
            return ValidationError(
                name_, "handle " + d->handle.ToString() + " resolves to " +
                           Xptr(entry).ToString() + " but the descriptor "
                           "lives at " + expect.ToString());
          }
        }
        // Text-carrying descriptors must reference this document's pages.
        if (sn->kind != XmlKind::kElement && sn->kind != XmlKind::kDocument) {
          Xptr ref = TextPayloadOf(d)->text_ref;
          if (ref && text_pages.count(ref.PageBase().raw) == 0) {
            return ValidationError(
                name_, "descriptor " + block.ToString() + "#" +
                           std::to_string(slot) + " references text " +
                           ref.ToString() +
                           " outside the document's text pages");
          }
        }
        prev = slot;
        slot = d->next_in_block;
        ++walked;
      }
      if (walked != h->count || prev != h->last_slot) {
        return ValidationError(
            name_, "in-block chain of " + block.ToString() + " walks " +
                       std::to_string(walked) + " slots, header says " +
                       std::to_string(h->count));
      }
      // Walk the free-slot chain: disjoint from live, covers the rest.
      std::vector<bool> freed(h->high_water, false);
      slot = h->free_head;
      uint16_t free_walked = 0;
      while (slot != kNoSlot) {
        if (slot >= h->high_water || live[slot] || freed[slot]) {
          return ValidationError(
              name_, "free-slot chain of " + block.ToString() +
                         " is out of range, cyclic, or overlaps live slots "
                         "at slot " +
                         std::to_string(slot));
        }
        freed[slot] = true;
        slot = DescriptorAt(const_cast<uint8_t*>(page), slot)->next_in_block;
        ++free_walked;
      }
      if (static_cast<uint32_t>(walked) + free_walked != h->high_water) {
        return ValidationError(
            name_, "slots of " + block.ToString() + " leak: " +
                       std::to_string(walked) + " live + " +
                       std::to_string(free_walked) + " free != high_water " +
                       std::to_string(h->high_water));
      }
      sn_live += walked;
      expect_prev = block;
      block = h->next_block;
    }
    if (sn->last_block != expect_prev) {
      return ValidationError(name_, "last_block of schema '" + sn->Path() +
                                        "' does not match the chain tail");
    }
    if (sn_live != sn->node_count) {
      return ValidationError(
          name_, "schema '" + sn->Path() + "' counts " +
                     std::to_string(sn->node_count) + " nodes but its blocks "
                     "hold " + std::to_string(sn_live));
    }
    live_descriptors += sn_live;
  }

  // --- Entry accounting ---------------------------------------------------
  // Every entry of every indirection page is either on the free list or the
  // handle of exactly one live descriptor (handles are unique: each resolves
  // to a distinct descriptor address, checked above).
  uint64_t total_entries =
      static_cast<uint64_t>(indir_pages.size()) * kIndirEntriesPerPage;
  if (free_entries.size() + live_descriptors != total_entries) {
    return ValidationError(
        name_, "indirection entries leak: " +
                   std::to_string(free_entries.size()) + " free + " +
                   std::to_string(live_descriptors) + " live != " +
                   std::to_string(total_entries) + " total");
  }
  if (root_handle_ && !valid_entry_addr(root_handle_)) {
    return ValidationError(name_, "root handle " + root_handle_.ToString() +
                                      " lies outside the indirection pages");
  }
  return Status::OK();
}

std::string DocumentStore::SerializeMeta() const {
  std::string blob;
  PutLengthPrefixed(&blob, name_);
  PutFixed32(&blob, doc_id_);
  PutFixed64(&blob, root_handle_.raw);
  PutFixed64(&blob, text_.head().raw);
  PutFixed64(&blob, text_.fill_page().raw);
  PutFixed64(&blob, indirection_.head().raw);
  PutFixed64(&blob, indirection_.free_head().raw);
  PutLengthPrefixed(&blob, schema_.Serialize());
  return blob;
}

Status DocumentStore::RestoreMeta(const std::string& blob) {
  Decoder d(blob);
  std::string_view name;
  uint64_t root = 0, text_head = 0, text_fill = 0, ind_head = 0,
           ind_free = 0;
  std::string_view schema_blob;
  if (!d.GetLengthPrefixed(&name) || !d.GetFixed32(&doc_id_) ||
      !d.GetFixed64(&root) || !d.GetFixed64(&text_head) ||
      !d.GetFixed64(&text_fill) || !d.GetFixed64(&ind_head) ||
      !d.GetFixed64(&ind_free) || !d.GetLengthPrefixed(&schema_blob)) {
    return Status::Corruption("bad document meta blob");
  }
  name_ = std::string(name);
  root_handle_ = Xptr(root);
  text_.Restore(Xptr(text_head), Xptr(text_fill));
  indirection_.Restore(Xptr(ind_head), Xptr(ind_free));
  return schema_.Deserialize(std::string(schema_blob));
}

}  // namespace sedna
