// The Sedna numbering scheme (paper Section 4.1.1).
//
// A label is a pair (id, d): a byte-string *prefix* and a one-byte
// *delimiter*. Writing `+` for concatenation, the open string interval
// (id, id+d) is the range of labels of all descendants of the node. The two
// mechanisms the paper requires:
//
//   1. x is an ancestor of y        iff  id_x < id_y < id_x + d_x
//   2. x precedes y in doc order    iff  id_x < id_y
//
// (comparisons are plain lexicographic byte comparisons). Because for any
// two strings S1 < S2 there is a string strictly between them, inserting a
// node anywhere allocates a fresh label without ever relabeling existing
// nodes — the property the paper contrasts with XISS-style interval schemes
// (see baselines/xiss_numbering.h and bench_numbering).
//
// Alphabet discipline: prefixes use bytes 0x01..0xFF only (0x00 is reserved
// so serialized labels can be treated as C strings if needed), and every
// allocated prefix ends with a byte >= 0x02. `Between` never returns a
// prefix of its upper bound. Together these invariants guarantee that
// allocation always succeeds.

#ifndef SEDNA_NUMBERING_NID_H_
#define SEDNA_NUMBERING_NID_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sedna {

/// A numbering-scheme label ("nid" in Sedna terminology).
struct NidLabel {
  std::string prefix;
  uint8_t delimiter = 0xFF;

  /// Label of a document root.
  static NidLabel Root() { return NidLabel{std::string("\x80", 1), 0xFF}; }

  /// Paper condition 1: is `this` a proper ancestor of `other`?
  bool IsAncestorOf(const NidLabel& other) const;

  /// Paper condition 2: negative/zero/positive like strcmp on prefixes.
  /// Zero means "same node" (labels are unique identities).
  int CompareDocOrder(const NidLabel& other) const {
    return prefix.compare(other.prefix);
  }

  bool SameNode(const NidLabel& other) const { return prefix == other.prefix; }

  /// Exclusive upper bound of this node's descendant range: prefix + d.
  std::string RangeEnd() const {
    std::string s = prefix;
    s.push_back(static_cast<char>(delimiter));
    return s;
  }

  std::string ToString() const;  // hex dump for debugging
};

namespace nid {

/// Returns a string strictly between `low` and `high` (lexicographically).
/// Requires low < high and that both are valid label bounds (see header
/// comment); the result never is a prefix of `high` and ends with a byte
/// >= 0x02. CHECK-fails if low >= high.
std::string Between(std::string_view low, std::string_view high);

/// Allocates a label for a node inserted under `parent` between siblings
/// `left` and `right` (either may be null for "no sibling on that side").
/// Never modifies existing labels.
NidLabel AllocBetween(const NidLabel& parent, const NidLabel* left,
                      const NidLabel* right);

/// Bulk allocation for document loading: `n` evenly spread child labels
/// under `parent`, in document order. Even spreading keeps labels short and
/// leaves room for future inserts (mirrors Sedna's loader behaviour).
std::vector<NidLabel> AllocChildren(const NidLabel& parent, size_t n);

}  // namespace nid

}  // namespace sedna

#endif  // SEDNA_NUMBERING_NID_H_
