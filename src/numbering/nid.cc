#include "numbering/nid.h"

#include "common/logging.h"

namespace sedna {

bool NidLabel::IsAncestorOf(const NidLabel& other) const {
  // id_x < id_y < id_x + d_x  <=>  id_x is a proper prefix of id_y and the
  // byte following the prefix is < d_x.
  if (other.prefix.size() <= prefix.size()) return false;
  if (other.prefix.compare(0, prefix.size(), prefix) != 0) return false;
  return static_cast<uint8_t>(other.prefix[prefix.size()]) < delimiter;
}

std::string NidLabel::ToString() const {
  static const char* kHex = "0123456789abcdef";
  std::string out = "(";
  for (unsigned char c : prefix) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  out += ", ";
  out.push_back(kHex[delimiter >> 4]);
  out.push_back(kHex[delimiter & 0xf]);
  out += ")";
  return out;
}

namespace nid {

std::string Between(std::string_view low, std::string_view high) {
  SEDNA_CHECK(low < high) << "Between requires low < high";
  std::string s;
  size_t i = 0;
  for (;;) {
    // Virtual digits: 0 below the alphabet once `low` is exhausted, 256
    // above it once `high` is exhausted.
    int x = i < low.size() ? static_cast<uint8_t>(low[i]) : 0;
    int y = i < high.size() ? static_cast<uint8_t>(high[i]) : 256;
    if (x == y) {
      s.push_back(static_cast<char>(x));
      ++i;
      continue;
    }
    SEDNA_DCHECK(x < y);
    if (y - x >= 2) {
      int mid = x + (y - x) / 2;
      s.push_back(static_cast<char>(mid));
      // Keep the ends-with->=2 invariant; the appended byte cannot push the
      // result past `high` because the digit `mid` < y already decides.
      if (mid == 0x01) s.push_back(static_cast<char>(0x80));
      return s;
    }
    // y == x + 1: no digit fits strictly between at this position.
    if (x == 0) {
      // `low` is exhausted and high[i] == 0x01: match that 0x01 and keep
      // descending into `high`. Allocated labels end with a byte >= 2, so
      // `high` cannot be an all-0x01 tail and the loop terminates.
      SEDNA_CHECK(i + 1 < high.size())
          << "no label exists strictly below the given upper bound";
      s.push_back(static_cast<char>(0x01));
      ++i;
      continue;
    }
    // Copy low's digit (which is < high's digit, so the result is < high no
    // matter what follows), then exceed `low` by appending the rest of it
    // plus one extra byte. The extra byte is the LOWEST valid terminator
    // (0x03) so that the append fast path in AllocBetween gets the full
    // 0x03..0xFD increment range before the next length growth.
    s.push_back(static_cast<char>(x));
    if (i + 1 < low.size()) s.append(low.substr(i + 1));
    s.push_back(static_cast<char>(0x03));
    return s;
  }
}

NidLabel AllocBetween(const NidLabel& parent, const NidLabel* left,
                      const NidLabel* right) {
  // Append fast path: new rightmost child. Incrementing the last byte of
  // the left sibling's prefix jumps past its whole descendant range in one
  // step, so repeated appends keep labels short (Between would converge
  // against the parent's range end and grow ~2 bytes per append).
  if (left != nullptr && right == nullptr && !left->prefix.empty()) {
    uint8_t last = static_cast<uint8_t>(left->prefix.back());
    if (last < 0xfd) {
      NidLabel label;
      label.prefix = left->prefix;
      label.prefix.back() = static_cast<char>(last + 1);
      label.delimiter = 0xFF;
      if (label.prefix < parent.RangeEnd()) return label;
    }
  }
  // Prepend fast path, symmetric.
  if (right != nullptr && left == nullptr && !right->prefix.empty()) {
    uint8_t last = static_cast<uint8_t>(right->prefix.back());
    if (last > 0x03) {
      NidLabel label;
      label.prefix = right->prefix;
      label.prefix.back() = static_cast<char>(last - 1);
      label.delimiter = 0xFF;
      if (label.prefix > parent.prefix) return label;
    }
  }

  // Lower bound: everything at or below the left sibling (its whole
  // descendant range), else the parent's own prefix.
  std::string low = left != nullptr ? left->RangeEnd() : parent.prefix;
  // Upper bound: the right sibling's prefix, else the end of the parent's
  // descendant range.
  std::string high = right != nullptr ? right->prefix : parent.RangeEnd();
  NidLabel label;
  label.prefix = Between(low, high);
  // `Between` never returns a prefix of `high`, so the full range
  // (prefix, prefix+0xFF) stays below `high`; 0xFF maximizes headroom for
  // this node's future descendants.
  label.delimiter = 0xFF;
  return label;
}

std::vector<NidLabel> AllocChildren(const NidLabel& parent, size_t n) {
  std::vector<NidLabel> out;
  out.reserve(n);
  if (n == 0) return out;
  // Fixed-width base-250 counters over bytes 0x02..0xFB, evenly spread
  // across the available space so later point-inserts have room.
  size_t width = 1;
  uint64_t space = 250;
  while (space < n + 2) {
    width++;
    space *= 250;
    SEDNA_CHECK(width <= 8) << "implausible fan-out";
  }
  // step >= 1 because space >= n + 2.
  uint64_t step = space / (n + 1);
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = step * (i + 1);
    std::string ext(width, '\0');
    for (size_t k = width; k-- > 0;) {
      ext[k] = static_cast<char>(0x02 + (v % 250));
      v /= 250;
    }
    NidLabel label;
    label.prefix = parent.prefix + ext;
    label.delimiter = 0xFF;
    out.push_back(std::move(label));
  }
  return out;
}

}  // namespace nid

}  // namespace sedna
