#include "xmlgen/generators.h"

#include <string>
#include <vector>

namespace sedna::xmlgen {

namespace {

const char* kFirstNames[] = {"Ada",   "Edgar", "Michael", "Jim",
                             "Grace", "Alan",  "Barbara", "Donald"};
const char* kLastNames[] = {"Codd",   "Dijkstra", "Stonebraker", "Gray",
                            "Hopper", "Turing",   "Liskov",      "Knuth"};
const char* kWords[] = {"fast",   "native", "storage", "query",  "index",
                        "page",   "buffer", "schema",  "commit", "version",
                        "xml",    "tree",   "label",   "block",  "pointer"};

std::string RandomSentence(Random& rng, size_t words) {
  std::string s;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) s += ' ';
    s += kWords[rng.Uniform(std::size(kWords))];
  }
  return s;
}

std::string PersonName(Random& rng) {
  return std::string(kFirstNames[rng.Uniform(std::size(kFirstNames))]) + " " +
         kLastNames[rng.Uniform(std::size(kLastNames))];
}

std::string FormatPrice(Random& rng) {
  return std::to_string(1 + rng.Uniform(500)) + "." +
         std::to_string(10 + rng.Uniform(90));
}

}  // namespace

std::unique_ptr<XmlNode> Library(size_t books, size_t papers, uint64_t seed) {
  Random rng(seed);
  auto doc = XmlNode::Document();
  XmlNode* library = doc->AddElement("library");
  for (size_t i = 0; i < books; ++i) {
    XmlNode* book = library->AddElement("book");
    book->AddElement("title")->AddText("Book " + std::to_string(i) + ": " +
                                       RandomSentence(rng, 3));
    size_t authors = 1 + rng.Uniform(4);
    for (size_t a = 0; a < authors; ++a) {
      book->AddElement("author")->AddText(PersonName(rng));
    }
    if (rng.Bernoulli(0.5)) {
      XmlNode* issue = book->AddElement("issue");
      issue->AddElement("publisher")->AddText(
          rng.Bernoulli(0.5) ? "Addison-Wesley" : "Morgan Kaufmann");
      issue->AddElement("year")->AddText(
          std::to_string(1970 + rng.Uniform(40)));
    }
  }
  for (size_t i = 0; i < papers; ++i) {
    XmlNode* paper = library->AddElement("paper");
    paper->AddElement("title")->AddText("Paper " + std::to_string(i) + ": " +
                                        RandomSentence(rng, 4));
    paper->AddElement("author")->AddText(PersonName(rng));
  }
  return doc;
}

std::unique_ptr<XmlNode> Auction(const AuctionParams& params) {
  Random rng(params.seed);
  const char* kRegions[] = {"africa", "asia",          "australia",
                            "europe", "namerica",      "samerica"};
  auto doc = XmlNode::Document();
  XmlNode* site = doc->AddElement("site");

  XmlNode* regions = site->AddElement("regions");
  std::vector<XmlNode*> region_nodes;
  for (const char* r : kRegions) region_nodes.push_back(regions->AddElement(r));
  for (size_t i = 0; i < params.items; ++i) {
    XmlNode* region = region_nodes[rng.Uniform(region_nodes.size())];
    XmlNode* item = region->AddElement("item");
    item->AddAttribute("id", "item" + std::to_string(i));
    item->AddElement("name")->AddText("item-" + rng.NextString(8));
    item->AddElement("quantity")->AddText(std::to_string(1 + rng.Uniform(5)));
    XmlNode* desc = item->AddElement("description");
    XmlNode* parlist = desc->AddElement("parlist");
    size_t paras = 1 + rng.Uniform(3);
    for (size_t p = 0; p < paras; ++p) {
      parlist->AddElement("listitem")->AddText(
          RandomSentence(rng, params.description_words));
    }
    XmlNode* payment = item->AddElement("payment");
    payment->AddText(rng.Bernoulli(0.5) ? "Creditcard" : "Cash");
  }

  XmlNode* people = site->AddElement("people");
  for (size_t i = 0; i < params.people; ++i) {
    XmlNode* person = people->AddElement("person");
    person->AddAttribute("id", "person" + std::to_string(i));
    person->AddElement("name")->AddText(PersonName(rng));
    person->AddElement("emailaddress")
        ->AddText("mailto:" + rng.NextString(6) + "@example.com");
    if (rng.Bernoulli(0.6)) {
      XmlNode* address = person->AddElement("address");
      address->AddElement("street")->AddText(std::to_string(rng.Uniform(99) + 1) +
                                             " " + rng.NextString(7) + " St");
      address->AddElement("city")->AddText(rng.NextString(6));
      address->AddElement("country")->AddText("United States");
    }
    if (rng.Bernoulli(0.4)) {
      person->AddElement("creditcard")
          ->AddText(std::to_string(1000 + rng.Uniform(9000)) + " " +
                    std::to_string(1000 + rng.Uniform(9000)));
    }
  }

  XmlNode* open_auctions = site->AddElement("open_auctions");
  for (size_t i = 0; i < params.open_auctions; ++i) {
    XmlNode* auction = open_auctions->AddElement("open_auction");
    auction->AddAttribute("id", "open" + std::to_string(i));
    auction->AddElement("initial")
        ->AddText(FormatPrice(rng));
    size_t bids = rng.Uniform(5);
    for (size_t b = 0; b < bids; ++b) {
      XmlNode* bidder = auction->AddElement("bidder");
      bidder->AddElement("personref")->AddAttribute(
          "person", "person" + std::to_string(rng.Uniform(
                                   params.people > 0 ? params.people : 1)));
      bidder->AddElement("increase")->AddText(FormatPrice(rng));
    }
    auction->AddElement("current")->AddText(FormatPrice(rng));
    auction->AddElement("itemref")->AddAttribute(
        "item",
        "item" + std::to_string(rng.Uniform(params.items > 0 ? params.items
                                                             : 1)));
  }

  XmlNode* closed_auctions = site->AddElement("closed_auctions");
  for (size_t i = 0; i < params.closed_auctions; ++i) {
    XmlNode* auction = closed_auctions->AddElement("closed_auction");
    auction->AddElement("seller")->AddAttribute(
        "person", "person" + std::to_string(rng.Uniform(
                                 params.people > 0 ? params.people : 1)));
    auction->AddElement("buyer")->AddAttribute(
        "person", "person" + std::to_string(rng.Uniform(
                                 params.people > 0 ? params.people : 1)));
    auction->AddElement("price")->AddText(FormatPrice(rng));
    auction->AddElement("itemref")->AddAttribute(
        "item",
        "item" + std::to_string(rng.Uniform(params.items > 0 ? params.items
                                                             : 1)));
  }
  return doc;
}

std::unique_ptr<XmlNode> DeepChain(size_t depth) {
  auto doc = XmlNode::Document();
  XmlNode* cur = doc->AddElement("d0");
  for (size_t i = 1; i < depth; ++i) {
    cur = cur->AddElement("d" + std::to_string(i));
  }
  cur->AddText("leaf");
  return doc;
}

std::unique_ptr<XmlNode> WideFan(size_t width, size_t distinct_names) {
  auto doc = XmlNode::Document();
  XmlNode* root = doc->AddElement("root");
  for (size_t i = 0; i < width; ++i) {
    XmlNode* child =
        root->AddElement("c" + std::to_string(i % distinct_names));
    child->AddText(std::to_string(i));
  }
  return doc;
}

std::unique_ptr<XmlNode> RandomTree(size_t nodes, uint64_t seed) {
  Random rng(seed);
  const char* kNames[] = {"a", "b", "c", "d", "e"};
  auto doc = XmlNode::Document();
  XmlNode* root = doc->AddElement("root");
  std::vector<XmlNode*> pool{root};
  for (size_t i = 1; i < nodes; ++i) {
    XmlNode* parent = pool[rng.Uniform(pool.size())];
    XmlNode* child = parent->AddElement(kNames[rng.Uniform(std::size(kNames))]);
    if (rng.Bernoulli(0.3)) {
      child->AddText(std::to_string(rng.Uniform(1000)));
    }
    // Bias toward recent nodes for depth; cap pool growth for width.
    pool.push_back(child);
    if (pool.size() > 64) pool.erase(pool.begin());
  }
  return doc;
}

}  // namespace sedna::xmlgen
