// Synthetic XML document generators for tests, examples and benchmarks.
//
// Three families:
//   * Library documents — the paper's Figure 2 shape (library/book/paper
//     with title, authors, optional issue), scaled by entry count.
//   * Auction documents — an XMark-like schema (regions/items, people,
//     open and closed auctions) exercising deep trees, mixed fan-out and
//     text-heavy nodes. Substitutes for the XMark data the original system
//     was evaluated with (see DESIGN.md §2).
//   * Stress shapes — parameterized deep chains and wide fans used by
//     property tests and the numbering/storage benchmarks.

#ifndef SEDNA_XMLGEN_GENERATORS_H_
#define SEDNA_XMLGEN_GENERATORS_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "xml/xml_tree.h"

namespace sedna::xmlgen {

/// Figure-2-style library: `books` book elements (title + 1..4 authors +
/// optional issue/publisher/year) and `papers` paper elements.
std::unique_ptr<XmlNode> Library(size_t books, size_t papers,
                                 uint64_t seed = 42);

/// Parameters for the XMark-like auction document.
struct AuctionParams {
  size_t items = 100;          // items spread over 6 regions
  size_t people = 50;
  size_t open_auctions = 50;
  size_t closed_auctions = 25;
  size_t description_words = 20;  // text volume per item description
  uint64_t seed = 42;
};

/// XMark-like auction site document.
std::unique_ptr<XmlNode> Auction(const AuctionParams& params);

/// A chain <d0><d1>...<dN>leaf text</dN>...</d0> of the given depth.
std::unique_ptr<XmlNode> DeepChain(size_t depth);

/// <root> with `width` children named cycling over `distinct_names` names,
/// each child holding one short text node.
std::unique_ptr<XmlNode> WideFan(size_t width, size_t distinct_names = 4);

/// Uniform random tree with `nodes` elements, bounded depth/fan-out, and a
/// small name alphabet; text leaves carry random numeric strings. Used by
/// property tests.
std::unique_ptr<XmlNode> RandomTree(size_t nodes, uint64_t seed);

}  // namespace sedna::xmlgen

#endif  // SEDNA_XMLGEN_GENERATORS_H_
