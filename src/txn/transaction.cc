#include "txn/transaction.h"

#include <chrono>
#include <map>

#include "common/logging.h"

namespace sedna {

namespace {

// Wait slice for governed blocking (checkpoint gate/drain): short enough
// that cancellation is noticed promptly, long enough that re-checking
// governance is cheap. Matches LockManager::Acquire.
constexpr auto kGovernedSlice = std::chrono::milliseconds(5);

// Maps a failed governance check to the status the caller should see: the
// statement's sticky abort status when one was recorded, else the check's.
Status GovernanceStatus(QueryContext* query, const Status& check) {
  Status abort = query->abort_status();
  return abort.ok() ? check : abort;
}

}  // namespace

Transaction::~Transaction() {
  if (active_) {
    Status st = mgr_->Abort(this);
    if (!st.ok()) {
      SEDNA_LOG(kError) << "abort in destructor failed: " << st.ToString();
    }
  }
}

OpCtx Transaction::ctx() const {
  OpCtx op;
  op.resolve.txn_id = id_;
  op.resolve.read_only = read_only_;
  op.resolve.snapshot_ts = read_only_ ? snapshot_ts_ : 0;
  return op;
}

Status Transaction::LockDocument(const std::string& name, LockMode mode,
                                 QueryContext* query) {
  if (read_only_) return Status::OK();  // snapshot isolation, non-blocking
  SEDNA_RETURN_IF_ERROR(mgr_->locks()->Acquire(id_, name, mode, query));
  if (mode == LockMode::kExclusive && meta_snapshots_.count(name) == 0) {
    // First exclusive access: remember the document's in-memory metadata so
    // an abort can restore it (pages are rolled back by the versions).
    StatusOr<std::string> meta = mgr_->storage_->SnapshotDocumentMeta(name);
    if (meta.ok()) {
      meta_snapshots_[name] = std::move(meta).value();
    } else if (meta.status().code() == StatusCode::kNotFound) {
      meta_snapshots_[name] = std::nullopt;  // created inside this txn
    } else {
      return meta.status();
    }
  }
  return Status::OK();
}

Status Transaction::LogUpdate(const std::string& statement_text) {
  if (read_only_) {
    return Status::FailedPrecondition(
        "update statement in a read-only transaction");
  }
  // The update listener fires before any mutation is applied, so a tripped
  // write gate (read-only degraded mode) rejects the statement while the
  // in-memory and on-disk state are still untouched.
  SEDNA_RETURN_IF_ERROR(mgr_->CheckWriteAllowed());
  if (mgr_->wal() == nullptr) return Status::OK();
  if (!logged_any_update_) {
    SEDNA_RETURN_IF_ERROR(
        mgr_->wal()->Append(WalRecordType::kBegin, id_, "").status());
    logged_any_update_ = true;
  }
  return mgr_->wal()
      ->Append(WalRecordType::kUpdateStatement, id_, statement_text)
      .status();
}

TransactionManager::TransactionManager(StorageEngine* storage,
                                       VersionManager* versions,
                                       WalWriter* wal)
    : storage_(storage), versions_(versions), wal_(wal) {
  uint64_t start_ts = storage_->file()->master().next_timestamp;
  clock_.store(start_ts);
  last_commit_ts_.store(start_ts);
  if (versions_ != nullptr) {
    // The on-disk state at open time is the persistent snapshot.
    Status st = versions_->SetPersistentSnapshot(start_ts);
    SEDNA_CHECK(st.ok()) << st.ToString();
  }
}

StatusOr<std::unique_ptr<Transaction>> TransactionManager::Begin(
    bool read_only, QueryContext* query) {
  if (!read_only) {
    // Checkpoint gate: while a checkpoint is draining/flipping, new update
    // transactions wait here. At this point the transaction holds no locks
    // and has logged nothing, so nobody can be waiting on it — the drain
    // cannot deadlock through this gate.
    std::unique_lock<std::mutex> lk(drain_mu_);
    while (checkpoint_pending_) {
      if (query != nullptr) {
        Status st = query->Check();
        if (!st.ok()) return GovernanceStatus(query, st);
      }
      drain_cv_.wait_for(lk, kGovernedSlice);
    }
    active_updaters_++;
  }
  uint64_t id = next_txn_id_.fetch_add(1);
  uint64_t snapshot = last_commit_ts_.load();
  if (versions_ != nullptr) {
    versions_->BeginTxn(id, read_only, snapshot);
  }
  std::unique_ptr<Transaction> txn(
      new Transaction(this, id, read_only, snapshot));
  txn->counted_updater_ = !read_only;
  live_transactions_.fetch_add(1, std::memory_order_acq_rel);
  return txn;
}

void TransactionManager::FinishUpdater(Transaction* txn) {
  if (!txn->counted_updater_) return;
  txn->counted_updater_ = false;
  {
    std::lock_guard<std::mutex> lk(drain_mu_);
    active_updaters_--;
  }
  drain_cv_.notify_all();
}

uint64_t TransactionManager::active_updaters() const {
  std::lock_guard<std::mutex> lk(drain_mu_);
  return active_updaters_;
}

Status TransactionManager::RollbackWork(Transaction* txn) {
  Status first;
  // Restore in-memory document metadata changed by this transaction.
  for (const auto& [name, meta] : txn->meta_snapshots_) {
    Status st = meta.has_value()
                    ? storage_->RestoreDocumentMeta(name, *meta)
                    : storage_->RemoveDocumentEntry(name);
    if (!st.ok() && first.ok()) first = st;
  }
  if (!txn->read_only_ && wal_ != nullptr && txn->logged_any_update_) {
    // Best effort: recovery already treats a transaction without a commit
    // record as aborted, and a degraded WAL must not wedge rollback.
    Status st = wal_->Append(WalRecordType::kAbort, txn->id_, "").status();
    if (!st.ok()) {
      SEDNA_LOG(kWarning) << "abort record not logged for txn " << txn->id_
                          << ": " << st.ToString();
    }
  }
  if (versions_ != nullptr) {
    Status st = versions_->AbortTxn(txn->id_);
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Status TransactionManager::Commit(Transaction* txn, QueryContext* query) {
  if (!txn->active_) return Status::FailedPrecondition("transaction ended");
  txn->active_ = false;
  live_transactions_.fetch_sub(1, std::memory_order_acq_rel);
  if (!txn->read_only_) {
    if (wal_ != nullptr && txn->logged_any_update_) {
      // Group commit: this may batch with concurrent committers — one
      // fsync covers the whole group. Safe to run concurrently: writers
      // hold exclusive document locks until release below, so two
      // transactions in one group never overlap.
      StatusOr<uint64_t> lsn = wal_->AppendCommitAndSync(txn->id_, query);
      if (!lsn.ok()) {
        // The commit record is missing (withdrawn, append failed) or not
        // provably durable (fsync failed): roll back so the live state
        // matches what recovery would reconstruct, and release everything.
        Status rollback = RollbackWork(txn);
        if (!rollback.ok()) {
          SEDNA_LOG(kError) << "rollback after failed commit of txn "
                            << txn->id_ << ": " << rollback.ToString();
        }
        FinishUpdater(txn);
        locks_.ReleaseAll(txn->id_);
        return lsn.status();
      }
    }
    {
      // Publish in commit-timestamp order: the ts assignment and the
      // version publication are one atomic step for snapshot readers.
      std::lock_guard<std::mutex> publish_lock(publish_mu_);
      uint64_t commit_ts = clock_.fetch_add(1) + 1;
      if (versions_ != nullptr) {
        Status st = versions_->CommitTxn(txn->id_, commit_ts);
        if (!st.ok()) {
          FinishUpdater(txn);
          locks_.ReleaseAll(txn->id_);
          return st;
        }
      }
      last_commit_ts_.store(commit_ts);
    }
    FinishUpdater(txn);
  } else if (versions_ != nullptr) {
    SEDNA_RETURN_IF_ERROR(versions_->CommitTxn(txn->id_, 0));
  }
  locks_.ReleaseAll(txn->id_);
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (!txn->active_) return Status::FailedPrecondition("transaction ended");
  txn->active_ = false;
  live_transactions_.fetch_sub(1, std::memory_order_acq_rel);
  Status result = RollbackWork(txn);
  // Whatever happened above, the transaction must leave the drain count and
  // the lock table — a wedged checkpoint or a leaked lock would outlive it.
  FinishUpdater(txn);
  locks_.ReleaseAll(txn->id_);
  return result;
}

Status TransactionManager::Checkpoint(QueryContext* query) {
  std::lock_guard<std::mutex> checkpoint_lock(checkpoint_mu_);
  // Fuzzy pre-flush: most dirty pages reach disk while update transactions
  // still run, shrinking the drained window to an incremental flush plus
  // the master flip. Working versions flushed here are unreachable from
  // the flipped master (copy-on-write), so this is safe. Frames pinned by
  // an active statement are skipped — flushing them would race with the pin
  // holder's updates; the post-drain flush writes them instead.
  SEDNA_RETURN_IF_ERROR(storage_->buffers()->FlushAll(/*skip_pinned=*/true));

  // Drain: gate new update transactions, wait for active ones to finish.
  {
    std::unique_lock<std::mutex> lk(drain_mu_);
    checkpoint_pending_ = true;
    while (active_updaters_ > 0) {
      if (query != nullptr) {
        Status st = query->Check();
        if (!st.ok()) {
          checkpoint_pending_ = false;
          lk.unlock();
          drain_cv_.notify_all();
          return GovernanceStatus(query, st);
        }
      }
      drain_cv_.wait_for(lk, kGovernedSlice);
    }
  }

  // Flip: zero update transactions are active, so the in-memory catalog,
  // directory and document metadata are all committed state.
  uint64_t checkpoint_lsn = wal_ != nullptr ? wal_->end_lsn() : 0;
  Status flip = [&]() -> Status {
    MasterRecord master = storage_->file()->master();
    master.next_timestamp = clock_.load() + 1;
    master.checkpoint_lsn = checkpoint_lsn;
    storage_->file()->set_master(master);
    SEDNA_RETURN_IF_ERROR(storage_->Checkpoint());
    if (versions_ != nullptr) {
      // The freshly flushed state becomes the new persistent snapshot;
      // pages pinned by the previous one become reclaimable.
      SEDNA_RETURN_IF_ERROR(versions_->SetPersistentSnapshot(clock_.load()));
    }
    if (wal_ != nullptr) {
      SEDNA_RETURN_IF_ERROR(
          wal_->Append(WalRecordType::kCheckpoint, 0, "").status());
      SEDNA_RETURN_IF_ERROR(wal_->Sync());
    }
    return Status::OK();
  }();

  {
    std::lock_guard<std::mutex> lk(drain_mu_);
    checkpoint_pending_ = false;
  }
  drain_cv_.notify_all();
  SEDNA_RETURN_IF_ERROR(flip);

  if (wal_ != nullptr) {
    // Everything below the checkpoint LSN is recoverable from the snapshot
    // now; the flipped master is durable (storage_->Checkpoint synced it),
    // so sealed segments wholly below it can be unlinked. Never a segment
    // at or above the checkpoint LSN.
    SEDNA_RETURN_IF_ERROR(wal_->RemoveSegmentsBelow(checkpoint_lsn));
  }
  return Status::OK();
}

Status TransactionManager::WithCheckpointLock(
    const std::function<Status()>& fn) {
  std::lock_guard<std::mutex> checkpoint_lock(checkpoint_mu_);
  return fn();
}

Status RecoverFromWal(
    const std::string& wal_path, uint64_t checkpoint_lsn,
    const std::function<Status(const std::string& statement)>& replay,
    uint64_t* replayed_statements, Vfs* vfs, uint64_t* wal_valid_end) {
  SEDNA_ASSIGN_OR_RETURN(
      std::vector<WalRecord> records,
      ReadWal(wal_path, checkpoint_lsn, vfs, wal_valid_end));
  // Collect statements per transaction; replay only committed ones, in
  // commit order.
  std::map<uint64_t, std::vector<std::string>> pending;
  uint64_t replayed = 0;
  for (const WalRecord& record : records) {
    switch (record.type) {
      case WalRecordType::kBegin:
        pending[record.txn_id].clear();
        break;
      case WalRecordType::kUpdateStatement:
        pending[record.txn_id].push_back(record.payload);
        break;
      case WalRecordType::kAbort:
        pending.erase(record.txn_id);
        break;
      case WalRecordType::kCommit: {
        auto it = pending.find(record.txn_id);
        if (it == pending.end()) break;
        for (const std::string& stmt : it->second) {
          SEDNA_RETURN_IF_ERROR(replay(stmt));
          replayed++;
        }
        pending.erase(it);
        break;
      }
      case WalRecordType::kCheckpoint:
        break;
    }
  }
  if (replayed_statements != nullptr) *replayed_statements = replayed;
  return Status::OK();
}

}  // namespace sedna
