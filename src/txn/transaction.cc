#include "txn/transaction.h"

#include <map>

#include "common/logging.h"

namespace sedna {

Transaction::~Transaction() {
  if (active_) {
    Status st = mgr_->Abort(this);
    if (!st.ok()) {
      SEDNA_LOG(kError) << "abort in destructor failed: " << st.ToString();
    }
  }
}

OpCtx Transaction::ctx() const {
  OpCtx op;
  op.resolve.txn_id = id_;
  op.resolve.read_only = read_only_;
  op.resolve.snapshot_ts = read_only_ ? snapshot_ts_ : 0;
  return op;
}

Status Transaction::LockDocument(const std::string& name, LockMode mode,
                                 QueryContext* query) {
  if (read_only_) return Status::OK();  // snapshot isolation, non-blocking
  SEDNA_RETURN_IF_ERROR(mgr_->locks()->Acquire(id_, name, mode, query));
  if (mode == LockMode::kExclusive && meta_snapshots_.count(name) == 0) {
    // First exclusive access: remember the document's in-memory metadata so
    // an abort can restore it (pages are rolled back by the versions).
    StatusOr<std::string> meta = mgr_->storage_->SnapshotDocumentMeta(name);
    if (meta.ok()) {
      meta_snapshots_[name] = std::move(meta).value();
    } else if (meta.status().code() == StatusCode::kNotFound) {
      meta_snapshots_[name] = std::nullopt;  // created inside this txn
    } else {
      return meta.status();
    }
  }
  return Status::OK();
}

Status Transaction::LogUpdate(const std::string& statement_text) {
  if (read_only_) {
    return Status::FailedPrecondition(
        "update statement in a read-only transaction");
  }
  // The update listener fires before any mutation is applied, so a tripped
  // write gate (read-only degraded mode) rejects the statement while the
  // in-memory and on-disk state are still untouched.
  SEDNA_RETURN_IF_ERROR(mgr_->CheckWriteAllowed());
  if (mgr_->wal() == nullptr) return Status::OK();
  if (!logged_any_update_) {
    SEDNA_RETURN_IF_ERROR(
        mgr_->wal()->Append(WalRecordType::kBegin, id_, "").status());
    logged_any_update_ = true;
  }
  return mgr_->wal()
      ->Append(WalRecordType::kUpdateStatement, id_, statement_text)
      .status();
}

TransactionManager::TransactionManager(StorageEngine* storage,
                                       VersionManager* versions,
                                       WalWriter* wal)
    : storage_(storage), versions_(versions), wal_(wal) {
  uint64_t start_ts = storage_->file()->master().next_timestamp;
  clock_.store(start_ts);
  last_commit_ts_.store(start_ts);
  if (versions_ != nullptr) {
    // The on-disk state at open time is the persistent snapshot.
    Status st = versions_->SetPersistentSnapshot(start_ts);
    SEDNA_CHECK(st.ok()) << st.ToString();
  }
}

StatusOr<std::unique_ptr<Transaction>> TransactionManager::Begin(
    bool read_only) {
  uint64_t id = next_txn_id_.fetch_add(1);
  uint64_t snapshot = last_commit_ts_.load();
  if (versions_ != nullptr) {
    versions_->BeginTxn(id, read_only, snapshot);
  }
  return std::unique_ptr<Transaction>(
      new Transaction(this, id, read_only, snapshot));
}

Status TransactionManager::Commit(Transaction* txn) {
  if (!txn->active_) return Status::FailedPrecondition("transaction ended");
  txn->active_ = false;
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  if (!txn->read_only_) {
    if (wal_ != nullptr && txn->logged_any_update_) {
      SEDNA_RETURN_IF_ERROR(
          wal_->Append(WalRecordType::kCommit, txn->id_, "").status());
      SEDNA_RETURN_IF_ERROR(wal_->Sync());
    }
    uint64_t commit_ts = clock_.fetch_add(1) + 1;
    if (versions_ != nullptr) {
      SEDNA_RETURN_IF_ERROR(versions_->CommitTxn(txn->id_, commit_ts));
    }
    last_commit_ts_.store(commit_ts);
  } else if (versions_ != nullptr) {
    SEDNA_RETURN_IF_ERROR(versions_->CommitTxn(txn->id_, 0));
  }
  locks_.ReleaseAll(txn->id_);
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (!txn->active_) return Status::FailedPrecondition("transaction ended");
  txn->active_ = false;
  // Restore in-memory document metadata changed by this transaction.
  for (const auto& [name, meta] : txn->meta_snapshots_) {
    if (meta.has_value()) {
      SEDNA_RETURN_IF_ERROR(storage_->RestoreDocumentMeta(name, *meta));
    } else {
      SEDNA_RETURN_IF_ERROR(storage_->RemoveDocumentEntry(name));
    }
  }
  if (!txn->read_only_ && wal_ != nullptr && txn->logged_any_update_) {
    SEDNA_RETURN_IF_ERROR(
        wal_->Append(WalRecordType::kAbort, txn->id_, "").status());
  }
  if (versions_ != nullptr) {
    SEDNA_RETURN_IF_ERROR(versions_->AbortTxn(txn->id_));
  }
  locks_.ReleaseAll(txn->id_);
  return Status::OK();
}

Status TransactionManager::Checkpoint() {
  // Block commits so the flushed state is transaction-consistent: exactly
  // the "persistent snapshot" of Section 6.4.
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  MasterRecord master = storage_->file()->master();
  master.next_timestamp = clock_.load() + 1;
  master.checkpoint_lsn = wal_ != nullptr ? wal_->end_lsn() : 0;
  storage_->file()->set_master(master);
  SEDNA_RETURN_IF_ERROR(storage_->Checkpoint());
  if (versions_ != nullptr) {
    // The freshly flushed state becomes the new persistent snapshot; pages
    // pinned by the previous one become reclaimable.
    SEDNA_RETURN_IF_ERROR(versions_->SetPersistentSnapshot(clock_.load()));
  }
  if (wal_ != nullptr) {
    SEDNA_RETURN_IF_ERROR(
        wal_->Append(WalRecordType::kCheckpoint, 0, "").status());
    SEDNA_RETURN_IF_ERROR(wal_->Sync());
  }
  return Status::OK();
}

Status RecoverFromWal(
    const std::string& wal_path, uint64_t checkpoint_lsn,
    const std::function<Status(const std::string& statement)>& replay,
    uint64_t* replayed_statements, Vfs* vfs, uint64_t* wal_valid_end) {
  SEDNA_ASSIGN_OR_RETURN(
      std::vector<WalRecord> records,
      ReadWal(wal_path, checkpoint_lsn, vfs, wal_valid_end));
  // Collect statements per transaction; replay only committed ones, in
  // commit order.
  std::map<uint64_t, std::vector<std::string>> pending;
  uint64_t replayed = 0;
  for (const WalRecord& record : records) {
    switch (record.type) {
      case WalRecordType::kBegin:
        pending[record.txn_id].clear();
        break;
      case WalRecordType::kUpdateStatement:
        pending[record.txn_id].push_back(record.payload);
        break;
      case WalRecordType::kAbort:
        pending.erase(record.txn_id);
        break;
      case WalRecordType::kCommit: {
        auto it = pending.find(record.txn_id);
        if (it == pending.end()) break;
        for (const std::string& stmt : it->second) {
          SEDNA_RETURN_IF_ERROR(replay(stmt));
          replayed++;
        }
        pending.erase(it);
        break;
      }
      case WalRecordType::kCheckpoint:
        break;
    }
  }
  if (replayed_statements != nullptr) *replayed_statements = replayed;
  return Status::OK();
}

}  // namespace sedna
