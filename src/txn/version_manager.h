// Page-level multiversioning (paper Section 6.1).
//
// "When transaction updates some page, a new version of this page is
// created" — implemented as copy-on-write physical pages resolved through
// this PageResolver. A snapshot is logically (timestamp, active set); here
// every read-only transaction reads the versions committed at or before its
// begin timestamp, updaters read last-committed plus their own working
// versions. "Old versions are purged when they are not needed anymore" —
// garbage collection runs when versions are superseded and when snapshots
// are released.
//
// Known simplification (see DESIGN.md §2): the in-memory descriptive schema
// is not versioned, so a reader concurrent with *structural* changes (new
// schema nodes / block-list head changes) may observe fresh navigation
// entry points; page *content* changes — the common case — are fully
// isolated. Pages freed by a transaction are only reclaimed once no live
// snapshot can reach them.

#ifndef SEDNA_TXN_VERSION_MANAGER_H_
#define SEDNA_TXN_VERSION_MANAGER_H_

#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/metrics.h"
#include "sas/buffer_manager.h"
#include "sas/file_manager.h"
#include "sas/page_directory.h"
#include "storage/storage_env.h"

namespace sedna {

struct VersionStats {
  uint64_t versions_created = 0;
  uint64_t versions_purged = 0;
  uint64_t snapshot_reads = 0;  // resolutions served from an old version
};

class VersionManager : public PageResolver {
 public:
  VersionManager(FileManager* file, SimplePageDirectory* directory)
      : file_(file), directory_(directory) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    m_snapshots_created_ = reg.counter("mvcc.snapshots_created");
    m_version_copies_ = reg.counter("mvcc.version_copies");
    m_versions_purged_ = reg.counter("mvcc.versions_purged");
    m_snapshot_reads_ = reg.counter("mvcc.snapshot_reads");
  }

  void BindBuffers(BufferManager* buffers) { buffers_ = buffers; }

  // --- transaction lifecycle -------------------------------------------------

  /// Registers a transaction. Read-only transactions pin the snapshot at
  /// `snapshot_ts`; updaters read last-committed state.
  void BeginTxn(uint64_t txn_id, bool read_only, uint64_t snapshot_ts);

  /// Publishes the transaction's working versions as last-committed with
  /// timestamp `commit_ts`, rebinds the directory, invalidates the shared
  /// buffer view, and garbage-collects superseded versions.
  Status CommitTxn(uint64_t txn_id, uint64_t commit_ts);

  /// Discards working versions and frees pages the transaction allocated.
  Status AbortTxn(uint64_t txn_id);

  // --- allocation hooks (called by the tracking allocator) -------------------

  void OnPageAllocated(uint64_t txn_id, LogicalPageId lpid);

  /// Defers the free of `lpid` until commit + snapshot drain; immediate on
  /// abort rollback the free is simply forgotten.
  void OnPageFreed(uint64_t txn_id, LogicalPageId lpid);

  /// True if the free of this page must be routed through OnPageFreed.
  bool InTransaction(uint64_t txn_id) const;

  /// Marks the on-disk state as the persistent snapshot at `ts` (called at
  /// every checkpoint). Versions and freed pages belonging to the
  /// persistent snapshot are never reclaimed until the next checkpoint —
  /// this is what makes the two-step recovery's step one possible.
  Status SetPersistentSnapshot(uint64_t ts);

  // --- PageResolver -----------------------------------------------------------

  StatusOr<PhysPageId> Resolve(LogicalPageId lpid,
                               const ResolveContext& ctx) override;
  StatusOr<WriteTarget> ResolveForWrite(LogicalPageId lpid,
                                        const ResolveContext& ctx) override;

  VersionStats stats() const;
  size_t live_version_count() const;

 private:
  struct CommittedVersion {
    uint64_t commit_ts;
    PhysPageId ppn;
  };
  struct PageVersions {
    std::vector<CommittedVersion> committed;  // ascending commit_ts; the
                                              // last entry mirrors the
                                              // directory mapping
    std::map<uint64_t, PhysPageId> working;   // txn -> uncommitted version
    uint64_t created_ts = 0;  // 0 = pre-existing (visible to everyone)
  };
  struct TxnState {
    bool read_only = false;
    uint64_t snapshot_ts = 0;
    std::vector<LogicalPageId> written;    // pages with working versions
    std::vector<LogicalPageId> allocated;  // fresh pages
    std::vector<LogicalPageId> freed;      // deferred frees
  };
  struct DeferredFree {
    uint64_t commit_ts;
    LogicalPageId lpid;
  };

  uint64_t MinActiveSnapshotLocked() const;
  void PurgeSupersededLocked(LogicalPageId lpid, PageVersions* pv);
  Status RunDeferredFreesLocked();
  Status FreePhysicalLocked(PhysPageId ppn);

  FileManager* file_;
  SimplePageDirectory* directory_;
  BufferManager* buffers_ = nullptr;

  mutable std::mutex mu_;
  std::map<LogicalPageId, PageVersions> versions_;
  std::map<uint64_t, TxnState> txns_;
  std::multiset<uint64_t> active_snapshots_;
  std::vector<DeferredFree> deferred_frees_;
  uint64_t persistent_snapshot_ts_ = 0;
  VersionStats stats_;

  // Process-wide registry instruments, resolved once at construction.
  Counter* m_snapshots_created_ = nullptr;
  Counter* m_version_copies_ = nullptr;
  Counter* m_versions_purged_ = nullptr;
  Counter* m_snapshot_reads_ = nullptr;
};

/// PageAllocator that tracks transactional allocation/free so aborts can
/// roll back and snapshot readers keep freed pages reachable.
class TrackingAllocator : public PageAllocator {
 public:
  TrackingAllocator(SimplePageDirectory* directory, VersionManager* versions)
      : directory_(directory), versions_(versions) {}

  StatusOr<Xptr> AllocPage(const OpCtx& ctx) override;
  Status FreePage(Xptr page_base, const OpCtx& ctx) override;

 private:
  SimplePageDirectory* directory_;
  VersionManager* versions_;
};

}  // namespace sedna

#endif  // SEDNA_TXN_VERSION_MANAGER_H_
