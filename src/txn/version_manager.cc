#include "txn/version_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace sedna {

void VersionManager::BeginTxn(uint64_t txn_id, bool read_only,
                              uint64_t snapshot_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  TxnState state;
  state.read_only = read_only;
  state.snapshot_ts = snapshot_ts;
  txns_[txn_id] = std::move(state);
  if (read_only) {
    active_snapshots_.insert(snapshot_ts);
    m_snapshots_created_->Add();
  }
}

bool VersionManager::InTransaction(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return txns_.count(txn_id) > 0;
}

uint64_t VersionManager::MinActiveSnapshotLocked() const {
  if (active_snapshots_.empty()) return ~0ull;
  return *active_snapshots_.begin();
}

Status VersionManager::FreePhysicalLocked(PhysPageId ppn) {
  if (buffers_ != nullptr) buffers_->DiscardPhysical(ppn);
  return file_->FreePage(ppn);
}

void VersionManager::PurgeSupersededLocked(LogicalPageId lpid,
                                           PageVersions* pv) {
  if (pv->committed.size() < 2) return;
  uint64_t min_snapshot = MinActiveSnapshotLocked();
  // Version i (not the last) is needed iff some active snapshot ts
  // satisfies v[i].ts <= ts < v[i+1].ts. With only the minimum tracked we
  // keep every version whose successor is newer than the oldest snapshot.
  std::vector<CommittedVersion> kept;
  for (size_t i = 0; i < pv->committed.size(); ++i) {
    if (i + 1 == pv->committed.size()) {
      kept.push_back(pv->committed[i]);
      continue;
    }
    bool needed = persistent_snapshot_ts_ >= pv->committed[i].commit_ts &&
                  persistent_snapshot_ts_ < pv->committed[i + 1].commit_ts;
    for (uint64_t ts : active_snapshots_) {
      if (ts >= pv->committed[i].commit_ts &&
          ts < pv->committed[i + 1].commit_ts) {
        needed = true;
        break;
      }
    }
    if (needed) {
      kept.push_back(pv->committed[i]);
    } else {
      stats_.versions_purged++;
      m_versions_purged_->Add();
      Status st = FreePhysicalLocked(pv->committed[i].ppn);
      if (!st.ok()) {
        SEDNA_LOG(kError) << "purging version of " << Xptr(lpid).ToString()
                          << " failed: " << st.ToString();
      }
    }
  }
  (void)min_snapshot;
  pv->committed = std::move(kept);
}

Status VersionManager::RunDeferredFreesLocked() {
  uint64_t min_snapshot = MinActiveSnapshotLocked();
  std::vector<DeferredFree> remaining;
  for (const DeferredFree& df : deferred_frees_) {
    if (min_snapshot < df.commit_ts ||
        persistent_snapshot_ts_ < df.commit_ts) {
      // A live snapshot — or the on-disk persistent snapshot — may still
      // reach this page.
      remaining.push_back(df);
      continue;
    }
    // Free every version the page ever had, then the logical page itself.
    auto it = versions_.find(df.lpid);
    if (it != versions_.end()) {
      for (const CommittedVersion& v : it->second.committed) {
        // The latest version's ppn is the directory mapping, released by
        // FreeLogicalPage below.
        if (&v != &it->second.committed.back()) {
          SEDNA_RETURN_IF_ERROR(FreePhysicalLocked(v.ppn));
        }
      }
      versions_.erase(it);
    }
    if (directory_->Contains(df.lpid)) {
      StatusOr<PhysPageId> ppn =
          directory_->Resolve(df.lpid, ResolveContext{});
      if (ppn.ok() && buffers_ != nullptr) buffers_->DiscardPhysical(*ppn);
      if (buffers_ != nullptr) buffers_->InvalidateShared(df.lpid);
      SEDNA_RETURN_IF_ERROR(directory_->FreeLogicalPage(Xptr(df.lpid)));
    }
  }
  deferred_frees_ = std::move(remaining);
  return Status::OK();
}

Status VersionManager::CommitTxn(uint64_t txn_id, uint64_t commit_ts) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown transaction");
  }
  TxnState state = std::move(it->second);
  txns_.erase(it);

  if (state.read_only) {
    active_snapshots_.erase(active_snapshots_.find(state.snapshot_ts));
    // Snapshot release can unpin old versions everywhere.
    for (auto& [lpid, pv] : versions_) PurgeSupersededLocked(lpid, &pv);
    return RunDeferredFreesLocked();
  }

  for (LogicalPageId lpid : state.written) {
    PageVersions& pv = versions_[lpid];
    auto working = pv.working.find(txn_id);
    if (working == pv.working.end()) continue;
    PhysPageId new_ppn = working->second;
    pv.working.erase(working);
    pv.committed.push_back({commit_ts, new_ppn});
    SEDNA_RETURN_IF_ERROR(directory_->Rebind(lpid, new_ppn));
    if (buffers_ != nullptr) buffers_->InvalidateShared(lpid);
    PurgeSupersededLocked(lpid, &pv);
  }
  for (LogicalPageId lpid : state.allocated) {
    PageVersions& pv = versions_[lpid];
    pv.created_ts = commit_ts;
    pv.working.erase(txn_id);
  }
  for (LogicalPageId lpid : state.freed) {
    deferred_frees_.push_back({commit_ts, lpid});
  }
  if (buffers_ != nullptr) buffers_->PublishTxnFrames(txn_id);
  return RunDeferredFreesLocked();
}

Status VersionManager::AbortTxn(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown transaction");
  }
  TxnState state = std::move(it->second);
  txns_.erase(it);

  if (state.read_only) {
    active_snapshots_.erase(active_snapshots_.find(state.snapshot_ts));
    return RunDeferredFreesLocked();
  }

  // "If it is rolled back, all its versions are simply discarded."
  for (LogicalPageId lpid : state.written) {
    auto vit = versions_.find(lpid);
    if (vit == versions_.end()) continue;
    auto working = vit->second.working.find(txn_id);
    if (working == vit->second.working.end()) continue;
    SEDNA_RETURN_IF_ERROR(FreePhysicalLocked(working->second));
    vit->second.working.erase(working);
  }
  for (LogicalPageId lpid : state.allocated) {
    versions_.erase(lpid);
    if (directory_->Contains(lpid)) {
      StatusOr<PhysPageId> ppn = directory_->Resolve(lpid, ResolveContext{});
      if (ppn.ok() && buffers_ != nullptr) buffers_->DiscardPhysical(*ppn);
      if (buffers_ != nullptr) buffers_->InvalidateShared(lpid);
      SEDNA_RETURN_IF_ERROR(directory_->FreeLogicalPage(Xptr(lpid)));
    }
  }
  // The aborted transaction will never publish or flush its frames.
  if (buffers_ != nullptr) buffers_->ForgetTxn(txn_id);
  // Deferred frees of an aborted transaction never happen: the pages stay.
  return Status::OK();
}

void VersionManager::OnPageAllocated(uint64_t txn_id, LogicalPageId lpid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  it->second.allocated.push_back(lpid);
  PageVersions& pv = versions_[lpid];
  pv.created_ts = ~0ull;  // invisible until commit
  pv.working[txn_id] = kInvalidPhysPage;  // marks creator for write routing
}

void VersionManager::OnPageFreed(uint64_t txn_id, LogicalPageId lpid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  it->second.freed.push_back(lpid);
}

StatusOr<PhysPageId> VersionManager::Resolve(LogicalPageId lpid,
                                             const ResolveContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = versions_.find(lpid);
  if (it != versions_.end() && ctx.txn_id != 0) {
    auto working = it->second.working.find(ctx.txn_id);
    if (working != it->second.working.end() &&
        working->second != kInvalidPhysPage) {
      return working->second;  // updater reads its own version
    }
  }
  if (ctx.snapshot_ts != 0) {
    if (it != versions_.end()) {
      const PageVersions& pv = it->second;
      if (pv.created_ts != 0 && pv.created_ts > ctx.snapshot_ts) {
        return Status::NotFound("page not visible in this snapshot");
      }
      // Latest committed version at or before the snapshot.
      const CommittedVersion* best = nullptr;
      for (const CommittedVersion& v : pv.committed) {
        if (v.commit_ts <= ctx.snapshot_ts) best = &v;
      }
      if (best != nullptr) {
        if (best != &pv.committed.back()) {
          stats_.snapshot_reads++;
          m_snapshot_reads_->Add();
        }
        return best->ppn;
      }
      if (!pv.committed.empty()) {
        return Status::NotFound("page not visible in this snapshot");
      }
    }
    // No version history: the page predates versioning — read it directly.
  }
  return directory_->Resolve(lpid, ctx);
}

StatusOr<PageResolver::WriteTarget> VersionManager::ResolveForWrite(
    LogicalPageId lpid, const ResolveContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ctx.txn_id == 0) {
    // System writes (loads, recovery replay) go in place.
    return directory_->ResolveForWrite(lpid, ctx);
  }
  auto txn = txns_.find(ctx.txn_id);
  if (txn == txns_.end()) {
    // Not a registered transaction: in-place.
    return directory_->ResolveForWrite(lpid, ctx);
  }
  if (txn->second.read_only) {
    return Status::FailedPrecondition(
        "read-only transaction attempted a write");
  }
  PageVersions& pv = versions_[lpid];
  auto working = pv.working.find(ctx.txn_id);
  if (working != pv.working.end()) {
    if (working->second == kInvalidPhysPage) {
      // Creator of a fresh page writes it in place.
      SEDNA_ASSIGN_OR_RETURN(PhysPageId ppn, directory_->Resolve(lpid, ctx));
      return WriteTarget{ppn, kInvalidPhysPage};
    }
    return WriteTarget{working->second, kInvalidPhysPage};
  }
  if (!pv.working.empty()) {
    // The paper's locking scheme "prevents two concurrent transactions from
    // creating uncommitted versions of the same page"; reaching this means
    // the caller bypassed document locking.
    return Status::Aborted("page already has an uncommitted version");
  }
  // First write: copy-on-write version.
  SEDNA_ASSIGN_OR_RETURN(PhysPageId last, directory_->Resolve(lpid, ctx));
  if (pv.committed.empty()) {
    // Remember the pre-existing version so older snapshots keep reading it.
    pv.committed.push_back({pv.created_ts == ~0ull ? 0 : pv.created_ts, last});
  }
  SEDNA_ASSIGN_OR_RETURN(PhysPageId fresh, file_->AllocPage());
  pv.working[ctx.txn_id] = fresh;
  txn->second.written.push_back(lpid);
  stats_.versions_created++;
  m_version_copies_->Add();
  return WriteTarget{fresh, last};
}

Status VersionManager::SetPersistentSnapshot(uint64_t ts) {
  std::lock_guard<std::mutex> lock(mu_);
  persistent_snapshot_ts_ = ts;
  // Advancing the persistent snapshot may unpin versions everywhere.
  for (auto& [lpid, pv] : versions_) PurgeSupersededLocked(lpid, &pv);
  return RunDeferredFreesLocked();
}

VersionStats VersionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t VersionManager::live_version_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [lpid, pv] : versions_) {
    n += pv.committed.size() + pv.working.size();
  }
  return n;
}

// ---------------------------------------------------------------------------
// TrackingAllocator
// ---------------------------------------------------------------------------

StatusOr<Xptr> TrackingAllocator::AllocPage(const OpCtx& ctx) {
  SEDNA_ASSIGN_OR_RETURN(Xptr page, directory_->AllocLogicalPage());
  if (ctx.resolve.txn_id != 0) {
    versions_->OnPageAllocated(ctx.resolve.txn_id, page.raw);
  }
  return page;
}

Status TrackingAllocator::FreePage(Xptr page_base, const OpCtx& ctx) {
  if (ctx.resolve.txn_id != 0 &&
      versions_->InTransaction(ctx.resolve.txn_id)) {
    versions_->OnPageFreed(ctx.resolve.txn_id, page_base.raw);
    return Status::OK();
  }
  if (buffers_ != nullptr) {
    StatusOr<PhysPageId> ppn =
        directory_->Resolve(PageIdOf(page_base), ResolveContext{});
    if (ppn.ok()) buffers_->DiscardPhysical(*ppn);
  }
  return directory_->FreeLogicalPage(page_base);
}

}  // namespace sedna
