#include "txn/backup.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/coding.h"
#include "common/logging.h"

namespace sedna {

namespace {

namespace fs = std::filesystem;

Status CopyFileTo(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::copy_file(from, to, fs::copy_options::overwrite_existing, ec);
  if (ec) {
    return Status::IOError("copy " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

/// Appends bytes [offset, end) of `from` to `to`.
Status AppendFileRange(const std::string& from, uint64_t offset,
                       const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  if (!in) return Status::IOError("open " + from);
  in.seekg(static_cast<std::streamoff>(offset));
  std::ofstream out(to, std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("open " + to);
  char buf[1 << 16];
  while (in) {
    in.read(buf, sizeof(buf));
    std::streamsize n = in.gcount();
    if (n <= 0) break;
    out.write(buf, n);
  }
  if (!out) return Status::IOError("write " + to);
  return Status::OK();
}

struct Manifest {
  uint64_t log_bytes_backed_up = 0;
};

Status WriteManifest(const std::string& dir, const Manifest& m) {
  std::ofstream out(dir + "/MANIFEST", std::ios::trunc);
  if (!out) return Status::IOError("write manifest");
  out << m.log_bytes_backed_up << "\n";
  return out ? Status::OK() : Status::IOError("write manifest");
}

StatusOr<Manifest> ReadManifest(const std::string& dir) {
  std::ifstream in(dir + "/MANIFEST");
  if (!in) return Status::NotFound("no backup manifest in " + dir);
  Manifest m;
  in >> m.log_bytes_backed_up;
  return m;
}

}  // namespace

Status BackupManager::FullBackup(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("mkdir " + dir + ": " + ec.message());

  uint64_t log_end;
  {
    // Hold the commit mutex so no transaction commits (and no checkpoint
    // rewrites pages) while the data file is copied — the paper's answer to
    // the split-block problem via consistent copying.
    std::lock_guard<std::mutex> lock(txns_->commit_mutex());
    SEDNA_RETURN_IF_ERROR(storage_->buffers()->FlushAll());
    // Persist catalog + directory so the copied file is self-contained.
    MasterRecord master = storage_->file()->master();
    master.checkpoint_lsn =
        txns_->wal() != nullptr ? txns_->wal()->end_lsn() : 0;
    storage_->file()->set_master(master);
    SEDNA_RETURN_IF_ERROR(storage_->Checkpoint());
    SEDNA_RETURN_IF_ERROR(
        CopyFileTo(storage_->file()->path(), dir + "/data.sedna"));
    log_end = txns_->wal() != nullptr ? txns_->wal()->end_lsn() : 0;
  }
  // "Second, log is fixated and its files are copied."
  if (txns_->wal() != nullptr) {
    SEDNA_RETURN_IF_ERROR(txns_->wal()->Sync());
    std::ofstream clear(dir + "/wal.log", std::ios::trunc | std::ios::binary);
    clear.close();
    SEDNA_RETURN_IF_ERROR(
        AppendFileRange(txns_->wal()->path(), 0, dir + "/wal.log"));
  }
  return WriteManifest(dir, Manifest{log_end});
}

Status BackupManager::IncrementalBackup(const std::string& dir) {
  SEDNA_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dir));
  if (txns_->wal() == nullptr) {
    return Status::FailedPrecondition("incremental backup requires a WAL");
  }
  SEDNA_RETURN_IF_ERROR(txns_->wal()->Sync());
  uint64_t end = txns_->wal()->end_lsn();
  if (end > manifest.log_bytes_backed_up) {
    SEDNA_RETURN_IF_ERROR(AppendFileRange(
        txns_->wal()->path(), manifest.log_bytes_backed_up,
        dir + "/wal.log"));
    manifest.log_bytes_backed_up = end;
  }
  return WriteManifest(dir, manifest);
}

Status BackupManager::Restore(const std::string& dir,
                              const std::string& db_path,
                              const std::string& wal_path) {
  SEDNA_RETURN_IF_ERROR(ReadManifest(dir).status());  // sanity check
  SEDNA_RETURN_IF_ERROR(CopyFileTo(dir + "/data.sedna", db_path));
  if (fs::exists(dir + "/wal.log")) {
    SEDNA_RETURN_IF_ERROR(CopyFileTo(dir + "/wal.log", wal_path));
  } else {
    std::remove(wal_path.c_str());
  }
  return Status::OK();
}

}  // namespace sedna
