#include "txn/backup.h"

#include <filesystem>
#include <fstream>
#include <vector>

#include "common/logging.h"
#include "txn/wal.h"

namespace sedna {

namespace {

namespace fs = std::filesystem;

// Segment files are stored in the backup directory under their
// base-independent name "wal.seg-<20-digit start LSN>", so a backup can be
// restored to a database with any WAL path.
std::string LocalSegmentName(uint64_t start_lsn) {
  return WalSegmentFileName("wal", start_lsn);
}

Status CopyFileTo(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::copy_file(from, to, fs::copy_options::overwrite_existing, ec);
  if (ec) {
    return Status::IOError("copy " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

struct Manifest {
  // LSN through which the log is known fully backed up (the durable end at
  // the last backup). Segments are re-copied whole when they extend past
  // this point.
  uint64_t log_backed_up_lsn = 0;
};

Status WriteManifest(const std::string& dir, const Manifest& m) {
  std::ofstream out(dir + "/MANIFEST", std::ios::trunc);
  if (!out) return Status::IOError("write manifest");
  out << m.log_backed_up_lsn << "\n";
  return out ? Status::OK() : Status::IOError("write manifest");
}

StatusOr<Manifest> ReadManifest(const std::string& dir) {
  std::ifstream in(dir + "/MANIFEST");
  if (!in) return Status::NotFound("no backup manifest in " + dir);
  Manifest m;
  in >> m.log_backed_up_lsn;
  return m;
}

/// Copies every live segment whose records extend past `from_lsn` into
/// `dir` under its local name. The active segment may grow (or even rotate)
/// during the copy; the copied prefix then ends mid-record, which recovery
/// tolerates as a torn tail because this is the newest backed-up segment.
Status CopySegments(WalWriter* wal, const std::string& dir,
                    uint64_t from_lsn) {
  SEDNA_ASSIGN_OR_RETURN(std::vector<WalSegment> segments,
                         wal->LiveSegments());
  for (const WalSegment& seg : segments) {
    if (seg.end_lsn <= from_lsn && seg.end_lsn > 0) continue;
    SEDNA_RETURN_IF_ERROR(CopyFileTo(
        seg.file_path, dir + "/" + LocalSegmentName(seg.start_lsn)));
  }
  return Status::OK();
}

}  // namespace

Status BackupManager::FullBackup(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("mkdir " + dir + ": " + ec.message());

  // Fresh persistent snapshot first: the data file copy is then
  // self-contained and the log to copy is minimal.
  SEDNA_RETURN_IF_ERROR(txns_->Checkpoint());

  // Copy under the checkpoint lock: commits keep running (they only append
  // to the log and write NEW page versions — the snapshot's pages are
  // copy-on-write-immutable), but no further checkpoint can rewrite the
  // master record or unlink segments mid-copy.
  return txns_->WithCheckpointLock([&]() -> Status {
    // Drop segments from a previous backup in this directory; the set is
    // rebuilt below and stale ones would corrupt the restored log.
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      std::string name = entry.path().filename().string();
      if (name.rfind("wal.seg-", 0) == 0) {
        fs::remove(entry.path(), ec);
      }
    }
    SEDNA_RETURN_IF_ERROR(
        CopyFileTo(storage_->file()->path(), dir + "/data.sedna"));
    uint64_t backed_up = 0;
    if (txns_->wal() != nullptr) {
      // "Second, log is fixated and its files are copied."
      SEDNA_RETURN_IF_ERROR(txns_->wal()->Sync());
      backed_up = txns_->wal()->durable_lsn();
      SEDNA_RETURN_IF_ERROR(CopySegments(txns_->wal(), dir, 0));
    }
    return WriteManifest(dir, Manifest{backed_up});
  });
}

Status BackupManager::IncrementalBackup(const std::string& dir) {
  SEDNA_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dir));
  if (txns_->wal() == nullptr) {
    return Status::FailedPrecondition("incremental backup requires a WAL");
  }
  return txns_->WithCheckpointLock([&]() -> Status {
    WalWriter* wal = txns_->wal();
    SEDNA_RETURN_IF_ERROR(wal->Sync());
    SEDNA_ASSIGN_OR_RETURN(std::vector<WalSegment> segments,
                           wal->LiveSegments());
    if (!segments.empty() &&
        segments.front().start_lsn > manifest.log_backed_up_lsn) {
      // Checkpoint truncation already unlinked records this chain would
      // need: the backed-up prefix no longer connects to the live log.
      return Status::FailedPrecondition(
          "log truncated past the last backup point (backed up to LSN " +
          std::to_string(manifest.log_backed_up_lsn) +
          ", oldest live segment starts at LSN " +
          std::to_string(segments.front().start_lsn) +
          "); take a new full backup");
    }
    SEDNA_RETURN_IF_ERROR(
        CopySegments(wal, dir, manifest.log_backed_up_lsn));
    manifest.log_backed_up_lsn = wal->durable_lsn();
    return WriteManifest(dir, manifest);
  });
}

Status BackupManager::Restore(const std::string& dir,
                              const std::string& db_path,
                              const std::string& wal_path) {
  SEDNA_RETURN_IF_ERROR(ReadManifest(dir).status());  // sanity check
  SEDNA_RETURN_IF_ERROR(CopyFileTo(dir + "/data.sedna", db_path));
  // Clear whatever log lives at the target, then materialize the backed-up
  // segments under the target base path.
  SEDNA_RETURN_IF_ERROR(RemoveWalLog(wal_path));
  std::error_code ec;
  std::vector<fs::path> segment_files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("wal.seg-", 0) == 0) {
      segment_files.push_back(entry.path());
    }
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  for (const fs::path& src : segment_files) {
    // "wal.seg-<digits>" -> "<wal_path>.seg-<digits>".
    std::string suffix = src.filename().string().substr(3);
    SEDNA_RETURN_IF_ERROR(CopyFileTo(src.string(), wal_path + suffix));
  }
  return Status::OK();
}

}  // namespace sedna
