#include "txn/lock_manager.h"

#include <algorithm>
#include <cstdint>

namespace sedna {

namespace {

// splitmix64 finalizer: cheap, well-mixed 64-bit hash for jitter derivation.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

LockManager::LockManager(std::chrono::milliseconds default_timeout)
    : default_timeout_(default_timeout) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  m_acquired_ = reg.counter("lock.acquired");
  m_waits_ = reg.counter("lock.waits");
  m_deadlock_aborts_ = reg.counter("lock.deadlock_aborts");
  m_governance_aborts_ = reg.counter("lock.governance_aborts");
  m_wait_ns_ = reg.histogram("lock.wait_ns");
}

std::chrono::milliseconds LockManager::JitteredTimeout(
    uint64_t txn_id, std::chrono::milliseconds timeout) const {
  if (jitter_fraction_ <= 0.0 || timeout.count() <= 0) return timeout;
  double unit = static_cast<double>(Mix64(txn_id)) /
                static_cast<double>(UINT64_MAX);  // in [0, 1]
  double extra = static_cast<double>(timeout.count()) * jitter_fraction_ * unit;
  return timeout + std::chrono::milliseconds(static_cast<int64_t>(extra));
}

bool LockManager::CanGrantLocked(const LockState& state, uint64_t txn_id,
                                 LockMode mode) const {
  for (const auto& [holder, held] : state.holders) {
    if (holder == txn_id) continue;  // own lock never conflicts
    if (mode == LockMode::kExclusive || held == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::Acquire(uint64_t txn_id, const std::string& resource,
                            LockMode mode, QueryContext* query) {
  return Acquire(txn_id, resource, mode, default_timeout_, query);
}

Status LockManager::Acquire(uint64_t txn_id, const std::string& resource,
                            LockMode mode, std::chrono::milliseconds timeout,
                            QueryContext* query) {
  std::unique_lock<std::mutex> lock(mu_);
  LockState& state = locks_[resource];

  auto held = state.holders.find(txn_id);
  if (held != state.holders.end()) {
    if (held->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // already strong enough
    }
    // Upgrade S -> X below (falls through to the wait loop).
  }

  if (!CanGrantLocked(state, txn_id, mode)) {
    // A governed statement must not even start waiting when it is already
    // cancelled or past its deadline.
    if (query != nullptr) {
      Status st = query->Check();
      if (!st.ok()) {
        stats_.governance_aborts++;
        m_governance_aborts_->Add();
        return st;
      }
    }
    stats_.waits++;
    m_waits_->Add();
    state.waiters++;
    auto wait_start = std::chrono::steady_clock::now();
    auto wait_end = wait_start + JitteredTimeout(txn_id, timeout);
    // The cancellation token has no notify channel into this condvar, so a
    // governed wait is sliced: each slice re-runs the governance check, so
    // cancellation and the statement deadline are observed within one slice
    // (the deadline exactly, by capping the slice at it).
    constexpr auto kGovernedSlice = std::chrono::milliseconds(5);
    bool granted = false;
    Status governance = Status::OK();
    for (;;) {
      auto now = std::chrono::steady_clock::now();
      if (query != nullptr) {
        governance = query->Check();
        if (!governance.ok()) break;
      }
      granted = CanGrantLocked(state, txn_id, mode);
      if (granted || now >= wait_end) break;
      auto until = wait_end;
      if (query != nullptr) {
        until = std::min(until, now + kGovernedSlice);
        if (query->has_deadline()) until = std::min(until, query->deadline());
      }
      cv_.wait_until(lock, until, [&] {
        return CanGrantLocked(state, txn_id, mode);
      });
    }
    m_wait_ns_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count()));
    state.waiters--;
    if (!governance.ok()) {
      stats_.governance_aborts++;
      m_governance_aborts_->Add();
      return governance;
    }
    if (!granted) {
      stats_.deadlock_aborts++;
      m_deadlock_aborts_->Add();
      return Status::TimedOut("lock wait on '" + resource +
                              "' timed out (possible deadlock); abort the "
                              "transaction and retry");
    }
  }
  state.holders[txn_id] = mode;
  stats_.acquired++;
  m_acquired_->Add();
  return Status::OK();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  bool released = false;
  for (auto it = locks_.begin(); it != locks_.end();) {
    released |= it->second.holders.erase(txn_id) > 0;
    if (it->second.holders.empty() && it->second.waiters == 0) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  if (released) cv_.notify_all();
}

bool LockManager::Holds(uint64_t txn_id, const std::string& resource,
                        LockMode* mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(resource);
  if (it == locks_.end()) return false;
  auto held = it->second.holders.find(txn_id);
  if (held == it->second.holders.end()) return false;
  if (mode != nullptr) *mode = held->second;
  return true;
}

size_t LockManager::TotalHeldLocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t held = 0;
  for (const auto& [resource, state] : locks_) held += state.holders.size();
  return held;
}

LockStats LockManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sedna
