// Transaction manager (paper Section 6): ties S2PL locking, page-level
// multiversioning, WAL and checkpointing together.
//
//  * Every statement executes within a transaction (autocommit wraps one).
//  * Updaters hold exclusive document locks to commit; read-only
//    transactions read a snapshot and take no locks (Section 6.3).
//  * Durability: update statements are WAL-logged before their mutations
//    apply; commit forces the log through the WAL's group commit — one
//    fsync covers every transaction in the batch (Section 6.4).
//  * Checkpoint creates the paper's "persistent snapshot": it drains
//    active update transactions (new ones are gated at Begin, where they
//    hold no locks), flushes all committed state, serializes catalog +
//    directory, stamps the checkpoint LSN into the master record, and then
//    unlinks WAL segments wholly below it. Commits of already-running
//    transactions are never blocked — they are exactly what the drain
//    waits for.
//
// Why drain instead of a fuzzy flip: working page versions never enter the
// page directory (copy-on-write), but the in-memory catalog and document
// metadata are mutated in place by active update transactions and restored
// on abort. A master-record flip concurrent with such a transaction would
// persist unacknowledged metadata. With zero update transactions active,
// everything the flip captures is committed.

#ifndef SEDNA_TXN_TRANSACTION_H_
#define SEDNA_TXN_TRANSACTION_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "common/query_context.h"
#include "storage/storage_engine.h"
#include "txn/lock_manager.h"
#include "txn/version_manager.h"
#include "txn/wal.h"

namespace sedna {

class TransactionManager;

/// A running transaction. Obtained from TransactionManager::Begin; must be
/// finished with Commit or Abort (the destructor aborts a live one).
class Transaction {
 public:
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  uint64_t id() const { return id_; }
  bool read_only() const { return read_only_; }
  bool active() const { return active_; }
  uint64_t snapshot_ts() const { return snapshot_ts_; }

  /// Storage context carrying this transaction's identity/snapshot.
  OpCtx ctx() const;

  /// Acquires a document lock (no-op for read-only transactions, which are
  /// isolated by the snapshot instead). A non-null `query` lets the lock
  /// wait wake early on the statement's cancellation or deadline.
  Status LockDocument(const std::string& name, LockMode mode,
                      QueryContext* query = nullptr);

  /// Appends an update-statement record to the WAL (called by the statement
  /// executor's update listener before mutations are applied).
  Status LogUpdate(const std::string& statement_text);

 private:
  friend class TransactionManager;
  Transaction(TransactionManager* mgr, uint64_t id, bool read_only,
              uint64_t snapshot_ts)
      : mgr_(mgr), id_(id), read_only_(read_only), snapshot_ts_(snapshot_ts) {}

  TransactionManager* mgr_;
  uint64_t id_;
  bool read_only_;
  uint64_t snapshot_ts_;
  bool active_ = true;
  bool logged_any_update_ = false;
  bool counted_updater_ = false;  // registered in the checkpoint drain count
  // Documents locked exclusively: name -> metadata at first lock (nullopt
  // if the document did not exist yet). Restored on abort.
  std::map<std::string, std::optional<std::string>> meta_snapshots_;
};

class TransactionManager {
 public:
  /// Returns OK when update statements may proceed; a non-OK status (e.g.
  /// Status::ReadOnlyDegraded) blocks every update before it mutates any
  /// state. Installed by the database layer.
  using WriteGate = std::function<Status()>;

  /// `wal` may be null (no durability — used by some benchmarks).
  TransactionManager(StorageEngine* storage, VersionManager* versions,
                     WalWriter* wal);

  /// Install during initialization, before transactions run.
  void set_write_gate(WriteGate gate) { write_gate_ = std::move(gate); }

  /// OK, or the gate's error if updates are currently disallowed.
  Status CheckWriteAllowed() const {
    return write_gate_ ? write_gate_() : Status::OK();
  }

  /// Starts a transaction. A non-read-only Begin waits (in governed slices
  /// when `query` is non-null) while a checkpoint is flipping — the gate
  /// sits before any lock or WAL record, so a gated transaction holds
  /// nothing another transaction could wait on.
  StatusOr<std::unique_ptr<Transaction>> Begin(bool read_only = false,
                                               QueryContext* query = nullptr);

  /// Commits. For updaters this goes through the WAL's group commit; a
  /// non-null `query` lets the wait for the group leader end early on the
  /// statement's cancellation/deadline. On any commit failure (I/O error,
  /// withdrawn from the group) the transaction is rolled back internally —
  /// metadata restored, versions aborted, locks released — and the commit
  /// error is returned.
  Status Commit(Transaction* txn, QueryContext* query = nullptr);
  Status Abort(Transaction* txn);

  /// Persistent snapshot (Section 6.4): drains active update transactions,
  /// flushes + serializes catalog/directory + checkpoint LSN, then unlinks
  /// WAL segments wholly below the new checkpoint. Safe under concurrent
  /// writers; a non-null `query` bounds the drain wait by the caller's
  /// deadline/cancellation. Serialized against itself.
  Status Checkpoint(QueryContext* query = nullptr);

  /// Runs `fn` holding the checkpoint serialization lock: no checkpoint can
  /// flip the master record or unlink WAL segments while it runs. Commits
  /// proceed normally. Backup copies the data file and log segments under
  /// this — copy-on-write keeps the persistent snapshot's pages immutable
  /// between checkpoints, so the copy is consistent without blocking
  /// writers.
  Status WithCheckpointLock(const std::function<Status()>& fn);

  LockManager* locks() { return &locks_; }
  VersionManager* versions() { return versions_; }
  WalWriter* wal() { return wal_; }
  uint64_t last_commit_ts() const { return last_commit_ts_.load(); }

  /// Update transactions currently counted by the checkpoint drain
  /// (observability/tests).
  uint64_t active_updaters() const;

  /// Transactions begun but not yet committed or aborted, read-only ones
  /// included. Zero when no client holds an open transaction — the network
  /// torture suites assert this after every injected fault to prove no
  /// disconnect/drain path orphans a transaction.
  uint64_t live_transactions() const {
    return live_transactions_.load(std::memory_order_acquire);
  }

 private:
  friend class Transaction;

  /// Best-effort rollback shared by Abort and the failed-commit path:
  /// restores document metadata, logs the abort record (errors ignored —
  /// recovery treats missing-commit as aborted anyway), aborts the
  /// versions. Returns the first hard error but keeps going.
  Status RollbackWork(Transaction* txn);

  /// Removes the transaction from the drain count (idempotent per txn).
  void FinishUpdater(Transaction* txn);

  StorageEngine* storage_;
  VersionManager* versions_;
  WalWriter* wal_;
  LockManager locks_;

  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> clock_;
  std::atomic<uint64_t> last_commit_ts_;
  // Commit-timestamp assignment and version publication happen together
  // under this mutex, so snapshot readers always see a prefix of the
  // commit order even when WAL durability was batched out of order.
  std::mutex publish_mu_;
  // Checkpoint drain state: count of live update transactions and the
  // gate that holds new ones while a checkpoint runs.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  uint64_t active_updaters_ = 0;
  std::atomic<uint64_t> live_transactions_{0};
  bool checkpoint_pending_ = false;
  std::mutex checkpoint_mu_;  // one checkpoint at a time
  WriteGate write_gate_;
};

/// Two-step recovery (paper Section 6.4): the caller has already restored
/// the persistent snapshot by opening the storage engine; this replays the
/// update statements of transactions that committed after the checkpoint.
/// `replay` executes one statement against the restored engine. `vfs`
/// defaults to Vfs::Default(); if `wal_valid_end` is non-null it receives
/// the end of the valid record prefix (pass it to TruncateWalTail so a torn
/// tail cannot corrupt later appends). Corruption in a sealed (non-newest)
/// WAL segment is returned as kCorruption — it cannot be a crash artifact.
Status RecoverFromWal(
    const std::string& wal_path, uint64_t checkpoint_lsn,
    const std::function<Status(const std::string& statement)>& replay,
    uint64_t* replayed_statements = nullptr, Vfs* vfs = nullptr,
    uint64_t* wal_valid_end = nullptr);

}  // namespace sedna

#endif  // SEDNA_TXN_TRANSACTION_H_
