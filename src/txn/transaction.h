// Transaction manager (paper Section 6): ties S2PL locking, page-level
// multiversioning, WAL and checkpointing together.
//
//  * Every statement executes within a transaction (autocommit wraps one).
//  * Updaters hold exclusive document locks to commit; read-only
//    transactions read a snapshot and take no locks (Section 6.3).
//  * Durability: update statements are WAL-logged before their mutations
//    apply; commit forces the log (Section 6.4).
//  * Checkpoint creates the paper's "persistent snapshot": all committed
//    state flushed, catalog + directory serialized, checkpoint LSN in the
//    master record.

#ifndef SEDNA_TXN_TRANSACTION_H_
#define SEDNA_TXN_TRANSACTION_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "storage/storage_engine.h"
#include "txn/lock_manager.h"
#include "txn/version_manager.h"
#include "txn/wal.h"

namespace sedna {

class TransactionManager;

/// A running transaction. Obtained from TransactionManager::Begin; must be
/// finished with Commit or Abort (the destructor aborts a live one).
class Transaction {
 public:
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  uint64_t id() const { return id_; }
  bool read_only() const { return read_only_; }
  bool active() const { return active_; }
  uint64_t snapshot_ts() const { return snapshot_ts_; }

  /// Storage context carrying this transaction's identity/snapshot.
  OpCtx ctx() const;

  /// Acquires a document lock (no-op for read-only transactions, which are
  /// isolated by the snapshot instead). A non-null `query` lets the lock
  /// wait wake early on the statement's cancellation or deadline.
  Status LockDocument(const std::string& name, LockMode mode,
                      QueryContext* query = nullptr);

  /// Appends an update-statement record to the WAL (called by the statement
  /// executor's update listener before mutations are applied).
  Status LogUpdate(const std::string& statement_text);

 private:
  friend class TransactionManager;
  Transaction(TransactionManager* mgr, uint64_t id, bool read_only,
              uint64_t snapshot_ts)
      : mgr_(mgr), id_(id), read_only_(read_only), snapshot_ts_(snapshot_ts) {}

  TransactionManager* mgr_;
  uint64_t id_;
  bool read_only_;
  uint64_t snapshot_ts_;
  bool active_ = true;
  bool logged_any_update_ = false;
  // Documents locked exclusively: name -> metadata at first lock (nullopt
  // if the document did not exist yet). Restored on abort.
  std::map<std::string, std::optional<std::string>> meta_snapshots_;
};

class TransactionManager {
 public:
  /// Returns OK when update statements may proceed; a non-OK status (e.g.
  /// Status::ReadOnlyDegraded) blocks every update before it mutates any
  /// state. Installed by the database layer.
  using WriteGate = std::function<Status()>;

  /// `wal` may be null (no durability — used by some benchmarks).
  TransactionManager(StorageEngine* storage, VersionManager* versions,
                     WalWriter* wal);

  /// Install during initialization, before transactions run.
  void set_write_gate(WriteGate gate) { write_gate_ = std::move(gate); }

  /// OK, or the gate's error if updates are currently disallowed.
  Status CheckWriteAllowed() const {
    return write_gate_ ? write_gate_() : Status::OK();
  }

  StatusOr<std::unique_ptr<Transaction>> Begin(bool read_only = false);
  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  /// Persistent snapshot: flush + catalog/directory + checkpoint LSN.
  /// Briefly blocks commits so the on-disk state is transaction-consistent.
  Status Checkpoint();

  LockManager* locks() { return &locks_; }
  VersionManager* versions() { return versions_; }
  WalWriter* wal() { return wal_; }
  uint64_t last_commit_ts() const { return last_commit_ts_.load(); }

  /// Serializes commits/checkpoints; exposed for hot backup (Section 6.5),
  /// which must copy the data file without a commit splitting pages.
  std::mutex& commit_mutex() { return commit_mu_; }

 private:
  friend class Transaction;

  StorageEngine* storage_;
  VersionManager* versions_;
  WalWriter* wal_;
  LockManager locks_;

  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> clock_;
  std::atomic<uint64_t> last_commit_ts_;
  std::mutex commit_mu_;
  WriteGate write_gate_;
};

/// Two-step recovery (paper Section 6.4): the caller has already restored
/// the persistent snapshot by opening the storage engine; this replays the
/// update statements of transactions that committed after the checkpoint.
/// `replay` executes one statement against the restored engine. `vfs`
/// defaults to Vfs::Default(); if `wal_valid_end` is non-null it receives
/// the end of the valid record prefix (pass it to TruncateWalTail so a torn
/// tail cannot corrupt later appends).
Status RecoverFromWal(
    const std::string& wal_path, uint64_t checkpoint_lsn,
    const std::function<Status(const std::string& statement)>& replay,
    uint64_t* replayed_statements = nullptr, Vfs* vfs = nullptr,
    uint64_t* wal_valid_end = nullptr);

}  // namespace sedna

#endif  // SEDNA_TXN_TRANSACTION_H_
