// Lock manager implementing strict two-phase locking (paper Section 6.2).
//
// Locking granularity is a whole XML document, exactly as the paper states
// ("At the present moment, locking granularity is an XML document"), with
// shared/exclusive modes, lock upgrade, and timeout-based deadlock
// resolution (the waiter times out, returns kTimedOut, and its transaction
// aborts — a standard deadlock-breaking strategy for coarse lock spaces).

#ifndef SEDNA_TXN_LOCK_MANAGER_H_
#define SEDNA_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/query_context.h"
#include "common/status.h"

namespace sedna {

enum class LockMode { kShared, kExclusive };

struct LockStats {
  uint64_t acquired = 0;
  uint64_t waits = 0;            // acquisitions that had to block
  uint64_t deadlock_aborts = 0;  // waits that timed out (deadlock resolution)
  uint64_t governance_aborts = 0;  // waits cut short by cancel/deadline
};

class LockManager {
 public:
  explicit LockManager(std::chrono::milliseconds default_timeout =
                           std::chrono::milliseconds(1000));

  /// Sets the per-transaction jitter applied to wait budgets, as a fraction
  /// of the timeout in [0, 1]. Timeout-based deadlock resolution is
  /// livelock-prone when symmetric deadlockers share one budget: both time
  /// out together, retry together, and deadlock again. Jitter breaks the
  /// symmetry. Deterministic: derived by hashing the transaction id, so a
  /// given txn always gets the same budget for a given base timeout.
  void set_timeout_jitter(double fraction) { jitter_fraction_ = fraction; }

  /// The effective wait budget for `txn_id`: `timeout` stretched by up to
  /// `jitter_fraction` (deterministically per transaction). Exposed for
  /// tests.
  std::chrono::milliseconds JitteredTimeout(
      uint64_t txn_id, std::chrono::milliseconds timeout) const;

  /// Acquires (or upgrades to) `mode` on `resource` for `txn_id`, blocking
  /// up to `timeout` (default constructor value). Re-acquiring an
  /// already-held compatible lock is a no-op; holding S and requesting X
  /// upgrades when possible.
  ///
  /// When `query` is non-null the wait also observes the statement's
  /// governance state: the wait wakes early on cancellation or deadline and
  /// returns the statement's abort status (kCancelled / kDeadlineExceeded)
  /// instead of the generic deadlock abort, so a blocked statement can be
  /// killed without waiting out the deadlock timeout.
  Status Acquire(uint64_t txn_id, const std::string& resource, LockMode mode,
                 QueryContext* query = nullptr);
  Status Acquire(uint64_t txn_id, const std::string& resource, LockMode mode,
                 std::chrono::milliseconds timeout,
                 QueryContext* query = nullptr);

  /// Releases every lock of the transaction (strict 2PL: all locks are held
  /// until commit/abort).
  void ReleaseAll(uint64_t txn_id);

  /// Mode currently held by the transaction on the resource, if any.
  bool Holds(uint64_t txn_id, const std::string& resource,
             LockMode* mode = nullptr) const;

  /// Total (txn, resource) grants currently held across all resources.
  /// Zero between transactions — torture suites assert this after every
  /// injected fault to prove no abort path leaks a lock.
  size_t TotalHeldLocks() const;

  LockStats stats() const;

 private:
  struct LockState {
    // txn -> mode. Multiple kShared holders, or exactly one kExclusive.
    std::map<uint64_t, LockMode> holders;
    int waiters = 0;
  };

  bool CanGrantLocked(const LockState& state, uint64_t txn_id,
                      LockMode mode) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, LockState> locks_;
  std::chrono::milliseconds default_timeout_;
  double jitter_fraction_ = 0.25;
  LockStats stats_;

  // Process-wide registry instruments, resolved once at construction.
  Counter* m_acquired_ = nullptr;
  Counter* m_waits_ = nullptr;
  Counter* m_deadlock_aborts_ = nullptr;
  Counter* m_governance_aborts_ = nullptr;
  Histogram* m_wait_ns_ = nullptr;
};

}  // namespace sedna

#endif  // SEDNA_TXN_LOCK_MANAGER_H_
