// Hot backup (paper Section 6.5).
//
// A full backup takes a checkpoint, then copies the data file and every
// live WAL segment while the database keeps serving requests — commits are
// never blocked. This is safe because the persistent snapshot's pages are
// copy-on-write-immutable until the next checkpoint, and that next
// checkpoint is excluded for the duration of the copy (the checkpoint
// lock). A torn tail in the copied active segment is tolerated by recovery
// exactly like a crash.
//
// Incremental backups re-copy only the segments grown or created since the
// previous backup. If checkpoint truncation has already unlinked segments
// past the last backup point, the incremental chain is broken and a new
// full backup is required (reported as kFailedPrecondition).
//
// Restore copies the data file back and materializes the backed-up
// segments at the target WAL path; opening the database then replays the
// log from the backup's checkpoint, giving point-in-time recovery over
// incremental parts.

#ifndef SEDNA_TXN_BACKUP_H_
#define SEDNA_TXN_BACKUP_H_

#include <string>

#include "common/status.h"
#include "txn/transaction.h"

namespace sedna {

class BackupManager {
 public:
  BackupManager(StorageEngine* storage, TransactionManager* txns)
      : storage_(storage), txns_(txns) {}

  /// Full hot backup into `dir` (created if needed): checkpoint, then data
  /// file + live WAL segments + backup manifest.
  Status FullBackup(const std::string& dir);

  /// Incremental backup: re-copies the WAL segments grown since the last
  /// (full or incremental) backup into `dir`. Requires a prior FullBackup
  /// in `dir`; returns kFailedPrecondition if checkpoint truncation has
  /// passed the last backup point (take a new full backup).
  Status IncrementalBackup(const std::string& dir);

  /// Restores `dir` into `db_path`/`wal_path`. The caller then opens the
  /// database normally; recovery replays the backed-up log.
  static Status Restore(const std::string& dir, const std::string& db_path,
                        const std::string& wal_path);

 private:
  StorageEngine* storage_;
  TransactionManager* txns_;
};

}  // namespace sedna

#endif  // SEDNA_TXN_BACKUP_H_
