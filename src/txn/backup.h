// Hot backup (paper Section 6.5).
//
// A full backup copies the data file while the database serves requests
// (commits are briefly blocked so no page is split mid-copy — solving the
// paper's "split-block problem"), then fixates and copies the WAL.
// Incremental backups copy only the log grown since the previous backup.
// Restore copies the data file back and replays the backed-up log chain,
// giving the paper's "point-in-time" recovery over incremental parts.

#ifndef SEDNA_TXN_BACKUP_H_
#define SEDNA_TXN_BACKUP_H_

#include <string>

#include "common/status.h"
#include "txn/transaction.h"

namespace sedna {

class BackupManager {
 public:
  BackupManager(StorageEngine* storage, TransactionManager* txns)
      : storage_(storage), txns_(txns) {}

  /// Full hot backup into `dir` (created if needed): data file + current
  /// log + backup manifest.
  Status FullBackup(const std::string& dir);

  /// Incremental backup: appends the log delta since the last (full or
  /// incremental) backup into `dir`. Requires a prior FullBackup in `dir`.
  Status IncrementalBackup(const std::string& dir);

  /// Restores `dir` into `db_path`/`wal_path`. The caller then opens the
  /// database normally; recovery replays the backed-up log.
  static Status Restore(const std::string& dir, const std::string& db_path,
                        const std::string& wal_path);

 private:
  StorageEngine* storage_;
  TransactionManager* txns_;
};

}  // namespace sedna

#endif  // SEDNA_TXN_BACKUP_H_
