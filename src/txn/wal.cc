#include "txn/wal.h"

#include "common/coding.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace sedna {

namespace {

// WAL instruments are shared by every WalWriter (and the free recovery
// functions below), so they live in one lazily-built bundle.
struct WalMetrics {
  Counter* records;
  Counter* bytes;
  Counter* syncs;
  Counter* io_errors;
  Counter* truncations;
  Histogram* fsync_ns;

  static const WalMetrics& Get() {
    static const WalMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return WalMetrics{reg.counter("wal.records"),
                        reg.counter("wal.bytes"),
                        reg.counter("wal.syncs"),
                        reg.counter("wal.io_errors"),
                        reg.counter("wal.truncations"),
                        reg.histogram("wal.fsync_ns")};
    }();
    return m;
  }
};

}  // namespace

WalWriter::WalWriter(Vfs* vfs) : vfs_(vfs != nullptr ? vfs : Vfs::Default()) {}

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    Status st = Close();
    if (!st.ok()) {
      SEDNA_LOG(kError) << "WAL close failed: " << st.ToString();
    }
  }
}

void WalWriter::set_io_failure_handler(IoFailureHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  io_failure_handler_ = std::move(handler);
}

Status WalWriter::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::FailedPrecondition("WAL already open");
  auto opened = vfs_->Open(path, OpenMode::kAppend);
  if (!opened.ok()) return opened.status();
  file_ = std::move(opened).value();
  path_ = path;
  auto size = file_->Size();
  if (!size.ok()) {
    file_->Close();
    file_.reset();
    return size.status();
  }
  end_lsn_ = *size;
  return Status::OK();
}

Status WalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  Status st = file_->Close();
  file_.reset();
  return st;
}

StatusOr<uint64_t> WalWriter::Append(WalRecordType type, uint64_t txn_id,
                                     std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  std::string body;
  body.push_back(static_cast<char>(type));
  PutFixed64(&body, txn_id);
  body.append(payload.data(), payload.size());

  std::string record;
  PutFixed32(&record, static_cast<uint32_t>(body.size()));
  PutFixed32(&record, Crc32(body.data(), body.size()));
  record += body;

  uint64_t lsn = end_lsn_;
  Status st = file_->Append(record.data(), record.size());
  if (!st.ok()) {
    if (st.code() == StatusCode::kIOError) {
      WalMetrics::Get().io_errors->Add();
      if (io_failure_handler_) io_failure_handler_(st);
    }
    return st;
  }
  end_lsn_ += record.size();
  WalMetrics::Get().records->Add();
  WalMetrics::Get().bytes->Add(record.size());
  return lsn;
}

uint64_t WalWriter::end_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_lsn_;
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  Status st;
  {
    LatencyTimer timer(WalMetrics::Get().fsync_ns);
    st = file_->Sync();
  }
  WalMetrics::Get().syncs->Add();
  if (!st.ok() && st.code() == StatusCode::kIOError) {
    WalMetrics::Get().io_errors->Add();
    if (io_failure_handler_) io_failure_handler_(st);
  }
  return st;
}

StatusOr<std::vector<WalRecord>> ReadWal(const std::string& path,
                                         uint64_t from_lsn, Vfs* vfs,
                                         uint64_t* valid_end) {
  if (vfs == nullptr) vfs = Vfs::Default();
  std::vector<WalRecord> out;
  if (valid_end != nullptr) *valid_end = from_lsn;
  auto opened = vfs->Open(path, OpenMode::kReadOnly);
  if (!opened.ok()) {
    if (valid_end != nullptr) *valid_end = 0;
    return out;  // no log = nothing to replay
  }
  std::unique_ptr<File> file = std::move(opened).value();
  auto size_or = file->Size();
  if (!size_or.ok()) return size_or.status();
  uint64_t size = *size_or;
  uint64_t pos = from_lsn;
  while (pos + 8 <= size) {
    char header[8];
    if (!file->Read(pos, 8, header).ok()) break;
    uint32_t len = DecodeFixed32(header);
    uint32_t crc = DecodeFixed32(header + 4);
    if (len == 0 || pos + 8 + len > size) break;  // torn tail
    std::string body(len, '\0');
    if (!file->Read(pos + 8, len, body.data()).ok()) break;
    if (Crc32(body.data(), body.size()) != crc) break;  // corrupt tail
    WalRecord record;
    record.type = static_cast<WalRecordType>(body[0]);
    record.txn_id = DecodeFixed64(body.data() + 1);
    record.lsn = pos;
    record.payload = body.substr(9);
    out.push_back(std::move(record));
    pos += 8 + len;
    if (valid_end != nullptr) *valid_end = pos;
  }
  return out;
}

Status TruncateWalTail(const std::string& path, uint64_t valid_end, Vfs* vfs) {
  if (vfs == nullptr) vfs = Vfs::Default();
  auto opened = vfs->Open(path, OpenMode::kReadWrite);
  if (!opened.ok()) return Status::OK();  // no log, nothing to cut
  std::unique_ptr<File> file = std::move(opened).value();
  SEDNA_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size <= valid_end) return Status::OK();
  WalMetrics::Get().truncations->Add();
  SEDNA_LOG(kWarning) << "truncating WAL " << path << " from " << size
                      << " to " << valid_end << " bytes (torn tail)";
  SEDNA_RETURN_IF_ERROR(file->Truncate(valid_end));
  SEDNA_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

}  // namespace sedna
