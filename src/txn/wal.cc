#include "txn/wal.h"

#include "common/coding.h"
#include "common/logging.h"

namespace sedna {

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    Status st = Close();
    if (!st.ok()) {
      SEDNA_LOG(kError) << "WAL close failed: " << st.ToString();
    }
  }
}

Status WalWriter::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::FailedPrecondition("WAL already open");
  // Append mode creates the file if needed and positions at the end.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::IOError("cannot open WAL " + path);
  file_ = f;
  path_ = path;
  long pos = std::ftell(file_);
  end_lsn_ = pos < 0 ? 0 : static_cast<uint64_t>(pos);
  return Status::OK();
}

Status WalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("WAL fclose failed");
  return Status::OK();
}

StatusOr<uint64_t> WalWriter::Append(WalRecordType type, uint64_t txn_id,
                                     std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  std::string body;
  body.push_back(static_cast<char>(type));
  PutFixed64(&body, txn_id);
  body.append(payload.data(), payload.size());

  std::string record;
  PutFixed32(&record, static_cast<uint32_t>(body.size()));
  PutFixed32(&record, Crc32(body.data(), body.size()));
  record += body;

  uint64_t lsn = end_lsn_;
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IOError("WAL append failed");
  }
  end_lsn_ += record.size();
  return lsn;
}

uint64_t WalWriter::end_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_lsn_;
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  if (std::fflush(file_) != 0) return Status::IOError("WAL flush failed");
  return Status::OK();
}

StatusOr<std::vector<WalRecord>> ReadWal(const std::string& path,
                                         uint64_t from_lsn) {
  std::vector<WalRecord> out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;  // no log = nothing to replay
  std::fseek(f, 0, SEEK_END);
  long size_l = std::ftell(f);
  uint64_t size = size_l < 0 ? 0 : static_cast<uint64_t>(size_l);
  uint64_t pos = from_lsn;
  while (pos + 8 <= size) {
    std::fseek(f, static_cast<long>(pos), SEEK_SET);
    char header[8];
    if (std::fread(header, 1, 8, f) != 8) break;
    uint32_t len = DecodeFixed32(header);
    uint32_t crc = DecodeFixed32(header + 4);
    if (len == 0 || pos + 8 + len > size) break;  // torn tail
    std::string body(len, '\0');
    if (std::fread(body.data(), 1, len, f) != len) break;
    if (Crc32(body.data(), body.size()) != crc) break;  // corrupt tail
    WalRecord record;
    record.type = static_cast<WalRecordType>(body[0]);
    record.txn_id = DecodeFixed64(body.data() + 1);
    record.lsn = pos;
    record.payload = body.substr(9);
    out.push_back(std::move(record));
    pos += 8 + len;
  }
  std::fclose(f);
  return out;
}

}  // namespace sedna
