#include "txn/wal.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/coding.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace sedna {

namespace {

constexpr uint32_t kWalSegmentMagic = 0x5357414c;  // "WALS"
constexpr uint32_t kWalSegmentVersion = 1;

// Follower wait slice for group commit: long enough to make re-checking
// governance cheap, short enough that a cancelled statement notices within
// one slice (same constant as LockManager::Acquire).
constexpr auto kGovernedSlice = std::chrono::milliseconds(5);

// WAL instruments are shared by every WalWriter (and the free recovery
// functions below), so they live in one lazily-built bundle.
struct WalMetrics {
  Counter* records;
  Counter* bytes;
  Counter* syncs;
  Counter* io_errors;
  Counter* truncations;
  Counter* rotations;
  Counter* segments_removed;
  Counter* group_commits;
  Histogram* fsync_ns;
  Histogram* sync_batch_size;

  static const WalMetrics& Get() {
    static const WalMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return WalMetrics{reg.counter("wal.records"),
                        reg.counter("wal.bytes"),
                        reg.counter("wal.syncs"),
                        reg.counter("wal.io_errors"),
                        reg.counter("wal.truncations"),
                        reg.counter("wal.rotations"),
                        reg.counter("wal.segments_removed"),
                        reg.counter("wal.group_commits"),
                        reg.histogram("wal.fsync_ns"),
                        reg.histogram("wal.sync_batch_size")};
    }();
    return m;
  }
};

struct SegmentFile {
  std::string path;
  uint64_t start = 0;
};

/// Existing segment files of the log rooted at `base`, sorted by start LSN.
/// Ignores the rotation temp file and anything else that is not
/// ".seg-" + 20 decimal digits.
StatusOr<std::vector<SegmentFile>> ListSegmentFiles(const std::string& base,
                                                    Vfs* vfs) {
  const std::string prefix = base + ".seg-";
  SEDNA_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         vfs->ListFiles(prefix));
  std::vector<SegmentFile> out;
  for (const std::string& name : names) {
    std::string suffix = name.substr(prefix.size());
    if (suffix.size() != 20) continue;
    uint64_t start = 0;
    bool digits = true;
    for (char c : suffix) {
      if (c < '0' || c > '9') {
        digits = false;
        break;
      }
      start = start * 10 + static_cast<uint64_t>(c - '0');
    }
    if (!digits) continue;
    out.push_back({name, start});
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.start < b.start;
            });
  return out;
}

/// Reads and validates a segment header; the start LSN must match the one
/// encoded in the file name.
Status CheckSegmentHeader(File* file, const SegmentFile& seg) {
  char hdr[kWalSegmentHeaderSize];
  SEDNA_RETURN_IF_ERROR(file->Read(0, sizeof(hdr), hdr));
  uint32_t magic = DecodeFixed32(hdr);
  uint32_t version = DecodeFixed32(hdr + 4);
  uint64_t start = DecodeFixed64(hdr + 8);
  if (magic != kWalSegmentMagic) {
    return Status::Corruption("bad magic in WAL segment " + seg.path);
  }
  if (version != kWalSegmentVersion) {
    return Status::Corruption("unsupported WAL segment version in " +
                              seg.path);
  }
  if (start != seg.start) {
    return Status::Corruption("WAL segment " + seg.path +
                              " header start LSN does not match its name");
  }
  return Status::OK();
}

}  // namespace

std::string WalSegmentFileName(const std::string& base, uint64_t start_lsn) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".seg-%020llu",
                static_cast<unsigned long long>(start_lsn));
  return base + suffix;
}

WalWriter::WalWriter(Vfs* vfs) : vfs_(vfs != nullptr ? vfs : Vfs::Default()) {}

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    Status st = Close();
    if (!st.ok()) {
      SEDNA_LOG(kError) << "WAL close failed: " << st.ToString();
    }
  }
}

void WalWriter::set_io_failure_handler(IoFailureHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  io_failure_handler_ = std::move(handler);
}

Status WalWriter::Open(const std::string& base,
                       const WalWriterOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::FailedPrecondition("WAL already open");
  path_ = base;
  options_ = options;
  if (options_.segment_bytes == 0) options_.segment_bytes = 1;
  sticky_ = Status::OK();
  // A crash during rotation can leave the temp file behind; it was never
  // renamed into the segment sequence, so its contents are irrelevant.
  SEDNA_RETURN_IF_ERROR(vfs_->Remove(base + ".seg-tmp"));
  SEDNA_ASSIGN_OR_RETURN(std::vector<SegmentFile> segs,
                         ListSegmentFiles(base, vfs_));
  if (segs.empty()) {
    end_lsn_ = 0;
    durable_lsn_ = 0;
    return CreateSegmentLocked(0);
  }
  const SegmentFile& last = segs.back();
  auto opened = vfs_->Open(last.path, OpenMode::kAppend);
  if (!opened.ok()) return opened.status();
  std::shared_ptr<File> file(std::move(opened).value());
  SEDNA_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size < kWalSegmentHeaderSize) {
    // Headers are fsynced before the rename that publishes a segment, so a
    // short segment is damage, not a crash artifact.
    return Status::Corruption("WAL segment " + last.path +
                              " is shorter than its header");
  }
  SEDNA_RETURN_IF_ERROR(CheckSegmentHeader(file.get(), last));
  file_ = std::move(file);
  segment_start_ = last.start;
  end_lsn_ = last.start + (size - kWalSegmentHeaderSize);
  // Recovery truncated the torn tail and synced before reopening; what is
  // on disk now is the durable baseline.
  durable_lsn_ = end_lsn_;
  return Status::OK();
}

Status WalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  Status st = file_->Close();
  file_.reset();
  return st;
}

Status WalWriter::CreateSegmentLocked(uint64_t start_lsn) {
  // Build the new segment under a temp name and publish it with an atomic
  // rename: a crash can leave a stray temp file (removed at Open) but never
  // a half-written segment under a real segment name.
  const std::string tmp = path_ + ".seg-tmp";
  const std::string final_path = WalSegmentFileName(path_, start_lsn);
  auto created = vfs_->Open(tmp, OpenMode::kCreate);
  if (!created.ok()) return created.status();
  std::unique_ptr<File> tmp_file = std::move(created).value();
  std::string header;
  PutFixed32(&header, kWalSegmentMagic);
  PutFixed32(&header, kWalSegmentVersion);
  PutFixed64(&header, start_lsn);
  SEDNA_RETURN_IF_ERROR(tmp_file->Write(0, header.data(), header.size()));
  SEDNA_RETURN_IF_ERROR(tmp_file->Sync());
  SEDNA_RETURN_IF_ERROR(tmp_file->Close());
  SEDNA_RETURN_IF_ERROR(vfs_->Rename(tmp, final_path));
  auto opened = vfs_->Open(final_path, OpenMode::kAppend);
  if (!opened.ok()) return opened.status();
  file_ = std::shared_ptr<File>(std::move(opened).value());
  segment_start_ = start_lsn;
  return Status::OK();
}

void WalWriter::NoteIoFailureLocked(const Status& st) {
  WalMetrics::Get().io_errors->Add();
  if (sticky_.ok()) sticky_ = st;
  if (io_failure_handler_) io_failure_handler_(st);
}

Status WalWriter::RotateLocked() {
  // Seal the active segment with an fsync BEFORE a newer segment exists:
  // this is the invariant that confines torn tails to the newest segment.
  Status st;
  {
    LatencyTimer timer(WalMetrics::Get().fsync_ns);
    st = file_->Sync();
  }
  WalMetrics::Get().syncs->Add();
  if (!st.ok()) {
    if (st.code() == StatusCode::kIOError) NoteIoFailureLocked(st);
    return st;
  }
  if (end_lsn_ > durable_lsn_) durable_lsn_ = end_lsn_;
  Status created = CreateSegmentLocked(end_lsn_);
  if (!created.ok()) {
    if (created.code() == StatusCode::kIOError) NoteIoFailureLocked(created);
    return created;
  }
  WalMetrics::Get().rotations->Add();
  return Status::OK();
}

StatusOr<uint64_t> WalWriter::AppendLocked(WalRecordType type,
                                           uint64_t txn_id,
                                           std::string_view payload) {
  if (!sticky_.ok()) return sticky_;
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  if (end_lsn_ > segment_start_ &&
      end_lsn_ - segment_start_ >= options_.segment_bytes) {
    SEDNA_RETURN_IF_ERROR(RotateLocked());
  }
  std::string body;
  body.push_back(static_cast<char>(type));
  PutFixed64(&body, txn_id);
  body.append(payload.data(), payload.size());

  std::string record;
  PutFixed32(&record, static_cast<uint32_t>(body.size()));
  PutFixed32(&record, Crc32(body.data(), body.size()));
  record += body;

  uint64_t lsn = end_lsn_;
  Status st = file_->Append(record.data(), record.size());
  if (!st.ok()) {
    if (st.code() == StatusCode::kIOError) NoteIoFailureLocked(st);
    return st;
  }
  end_lsn_ += record.size();
  WalMetrics::Get().records->Add();
  WalMetrics::Get().bytes->Add(record.size());
  return lsn;
}

StatusOr<uint64_t> WalWriter::Append(WalRecordType type, uint64_t txn_id,
                                     std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(type, txn_id, payload);
}

uint64_t WalWriter::end_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_lsn_;
}

uint64_t WalWriter::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

Status WalWriter::SyncLocked(std::unique_lock<std::mutex>& lk) {
  if (!sticky_.ok()) return sticky_;
  if (file_ == nullptr) return Status::OK();
  // fsync outside the log mutex: statements of other transactions keep
  // appending (and followers keep enqueuing commit records for the next
  // group) while the device flushes. The shared_ptr keeps the segment file
  // alive across a concurrent rotation.
  std::shared_ptr<File> file = file_;
  uint64_t target = end_lsn_;
  lk.unlock();
  Status st;
  auto fsync_begin = std::chrono::steady_clock::now();
  {
    LatencyTimer timer(WalMetrics::Get().fsync_ns);
    st = file->Sync();
  }
  auto fsync_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - fsync_begin)
                      .count();
  lk.lock();
  last_fsync_ns_ = static_cast<uint64_t>(fsync_ns);
  WalMetrics::Get().syncs->Add();
  if (st.ok()) {
    if (target > durable_lsn_) durable_lsn_ = target;
  } else if (st.code() == StatusCode::kIOError) {
    NoteIoFailureLocked(st);
  }
  return st;
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> lk(mu_);
  return SyncLocked(lk);
}

StatusOr<uint64_t> WalWriter::AppendCommitAndSync(uint64_t txn_id,
                                                  QueryContext* query) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!sticky_.ok()) return sticky_;
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");

  CommitWaiter me;
  me.txn_id = txn_id;
  commit_queue_.push_back(&me);
  if (gathering_) commit_cv_.notify_all();

  // Follower: wait (in governed slices) until a leader finishes our group
  // or there is no leader and it is our turn to lead.
  while (!me.done && leader_active_) {
    if (query != nullptr && !me.picked) {
      Status st = query->Check();
      if (!st.ok()) {
        // Withdraw: no leader has picked this record yet, so it was never
        // written — the commit is guaranteed absent after recovery.
        for (auto it = commit_queue_.begin(); it != commit_queue_.end();
             ++it) {
          if (*it == &me) {
            commit_queue_.erase(it);
            break;
          }
        }
        Status abort = query->abort_status();
        return abort.ok() ? st : abort;
      }
    }
    commit_cv_.wait_for(lk, kGovernedSlice);
  }
  if (me.done) {
    if (!me.status.ok()) return me.status;
    return me.lsn;
  }

  // Leader: drain the queue (everyone queued so far, ourselves included),
  // append all their commit records, and issue ONE fsync for the batch.
  leader_active_ = true;

  // Gather window: the committers the previous group just acknowledged are
  // busy producing their next transactions right now; without a pause the
  // groups alternate between a batch of one and the pile-up behind it.
  // Only gather when the last group proved writers are concurrent, and
  // never longer than half the device's own fsync — a lone committer or a
  // fast device pays (almost) nothing.
  if (last_group_size_ > 1 && options_.group_commit_gather.count() > 0) {
    auto gather = std::min<std::chrono::nanoseconds>(
        options_.group_commit_gather,
        std::chrono::nanoseconds(last_fsync_ns_ / 2));
    if (gather.count() > 0) {
      auto deadline = std::chrono::steady_clock::now() + gather;
      gathering_ = true;
      // Stop early once the cohort the last group proved exists has shown
      // up; enqueuers notify while gathering_ is set.
      while (commit_queue_.size() < last_group_size_ &&
             std::chrono::steady_clock::now() < deadline) {
        commit_cv_.wait_until(lk, deadline);
      }
      gathering_ = false;
    }
  }

  std::vector<CommitWaiter*> batch;
  batch.reserve(commit_queue_.size());
  for (CommitWaiter* w : commit_queue_) {
    w->picked = true;
    batch.push_back(w);
  }
  commit_queue_.clear();

  bool any_appended = false;
  for (CommitWaiter* w : batch) {
    auto lsn_or = AppendLocked(WalRecordType::kCommit, w->txn_id, {});
    if (lsn_or.ok()) {
      w->lsn = *lsn_or;
      any_appended = true;
    } else {
      w->status = lsn_or.status();
    }
  }

  // SyncLocked drops the mutex during the fsync; committers arriving in
  // that window enqueue behind leader_active_ and form the next group —
  // that pile-up is where sync_batch_size > 1 comes from.
  Status sync_st;
  if (any_appended) sync_st = SyncLocked(lk);

  WalMetrics::Get().group_commits->Add();
  WalMetrics::Get().sync_batch_size->Record(batch.size());
  last_group_size_ = batch.size();
  for (CommitWaiter* w : batch) {
    if (w->status.ok() && !sync_st.ok()) w->status = sync_st;
    w->done = true;
  }
  leader_active_ = false;
  lk.unlock();
  commit_cv_.notify_all();
  if (!me.status.ok()) return me.status;
  return me.lsn;
}

Status WalWriter::RemoveSegmentsBelow(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  SEDNA_ASSIGN_OR_RETURN(std::vector<SegmentFile> segs,
                         ListSegmentFiles(path_, vfs_));
  // A sealed segment covers [start, next.start); it may go once its whole
  // range is below `lsn`. Lowest first, so a crash mid-unlink leaves the
  // remaining segments contiguous. The newest segment never qualifies.
  for (size_t i = 0; i + 1 < segs.size(); ++i) {
    if (segs[i + 1].start > lsn) break;
    if (segs[i].start == segment_start_) break;  // never the active segment
    SEDNA_RETURN_IF_ERROR(vfs_->Remove(segs[i].path));
    WalMetrics::Get().segments_removed->Add();
  }
  return Status::OK();
}

StatusOr<std::vector<WalSegment>> WalWriter::LiveSegments() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  SEDNA_ASSIGN_OR_RETURN(std::vector<SegmentFile> segs,
                         ListSegmentFiles(path_, vfs_));
  std::vector<WalSegment> out;
  out.reserve(segs.size());
  for (size_t i = 0; i < segs.size(); ++i) {
    WalSegment s;
    s.file_path = segs[i].path;
    s.start_lsn = segs[i].start;
    s.end_lsn = i + 1 < segs.size() ? segs[i + 1].start : end_lsn_;
    out.push_back(std::move(s));
  }
  return out;
}

StatusOr<std::vector<WalRecord>> ReadWal(const std::string& base,
                                         uint64_t from_lsn, Vfs* vfs,
                                         uint64_t* valid_end) {
  if (vfs == nullptr) vfs = Vfs::Default();
  std::vector<WalRecord> out;
  if (valid_end != nullptr) *valid_end = from_lsn;
  SEDNA_ASSIGN_OR_RETURN(std::vector<SegmentFile> segs,
                         ListSegmentFiles(base, vfs));
  if (segs.empty()) {
    if (valid_end != nullptr) *valid_end = 0;
    return out;  // no log = nothing to replay
  }
  if (from_lsn < segs.front().start) {
    return Status::Corruption(
        "WAL for " + base + " no longer contains LSN " +
        std::to_string(from_lsn) + ": segments below " +
        std::to_string(segs.front().start) + " were truncated");
  }
  for (size_t i = 0; i < segs.size(); ++i) {
    const bool is_last = i + 1 == segs.size();
    auto opened = vfs->Open(segs[i].path, OpenMode::kReadOnly);
    if (!opened.ok()) return opened.status();
    std::unique_ptr<File> file = std::move(opened).value();
    SEDNA_ASSIGN_OR_RETURN(uint64_t size, file->Size());
    if (size < kWalSegmentHeaderSize) {
      return Status::Corruption("WAL segment " + segs[i].path +
                                " is shorter than its header");
    }
    SEDNA_RETURN_IF_ERROR(CheckSegmentHeader(file.get(), segs[i]));
    uint64_t seg_end = segs[i].start + (size - kWalSegmentHeaderSize);
    if (!is_last && seg_end != segs[i + 1].start) {
      // Rotation seals a segment exactly where the next one starts; any
      // mismatch means a sealed segment lost or grew bytes.
      return Status::Corruption(
          "WAL segment " + segs[i].path + " ends at LSN " +
          std::to_string(seg_end) + " but the next segment starts at " +
          std::to_string(segs[i + 1].start));
    }
    if (seg_end <= from_lsn) continue;  // wholly below the replay point

    uint64_t pos = std::max(from_lsn, segs[i].start);
    while (pos + 8 <= seg_end) {
      uint64_t off = kWalSegmentHeaderSize + (pos - segs[i].start);
      char header[8];
      SEDNA_RETURN_IF_ERROR(file->Read(off, 8, header));
      uint32_t len = DecodeFixed32(header);
      uint32_t crc = DecodeFixed32(header + 4);
      bool parsed = false;
      if (len > 0 && pos + 8 + len <= seg_end) {
        std::string body(len, '\0');
        SEDNA_RETURN_IF_ERROR(file->Read(off + 8, len, body.data()));
        if (Crc32(body.data(), body.size()) == crc) {
          WalRecord record;
          record.type = static_cast<WalRecordType>(body[0]);
          record.txn_id = DecodeFixed64(body.data() + 1);
          record.lsn = pos;
          record.payload = body.substr(9);
          out.push_back(std::move(record));
          parsed = true;
        }
      }
      if (!parsed) break;
      pos += 8 + len;
      if (valid_end != nullptr) *valid_end = pos;
    }
    if (pos != seg_end) {
      if (!is_last) {
        return Status::Corruption(
            "corrupt record at LSN " + std::to_string(pos) +
            " in sealed WAL segment " + segs[i].path +
            " (only the newest segment may have a torn tail)");
      }
      break;  // torn tail in the newest segment: cut here
    }
  }
  return out;
}

Status TruncateWalTail(const std::string& base, uint64_t valid_end,
                       Vfs* vfs) {
  if (vfs == nullptr) vfs = Vfs::Default();
  SEDNA_ASSIGN_OR_RETURN(std::vector<SegmentFile> segs,
                         ListSegmentFiles(base, vfs));
  if (segs.empty()) return Status::OK();  // no log, nothing to cut
  const SegmentFile& last = segs.back();
  uint64_t target = valid_end > last.start
                        ? kWalSegmentHeaderSize + (valid_end - last.start)
                        : kWalSegmentHeaderSize;
  auto opened = vfs->Open(last.path, OpenMode::kReadWrite);
  if (!opened.ok()) return opened.status();
  std::unique_ptr<File> file = std::move(opened).value();
  SEDNA_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size <= target) return Status::OK();
  WalMetrics::Get().truncations->Add();
  SEDNA_LOG(kWarning) << "truncating WAL segment " << last.path << " from "
                      << size << " to " << target << " bytes (torn tail)";
  SEDNA_RETURN_IF_ERROR(file->Truncate(target));
  SEDNA_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

Status RemoveWalLog(const std::string& base, Vfs* vfs) {
  if (vfs == nullptr) vfs = Vfs::Default();
  // The prefix also matches the rotation temp file ".seg-tmp".
  SEDNA_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         vfs->ListFiles(base + ".seg-"));
  for (const std::string& name : names) {
    SEDNA_RETURN_IF_ERROR(vfs->Remove(name));
  }
  // Pre-segment logs lived in a single file at the base path.
  return vfs->Remove(base);
}

}  // namespace sedna
