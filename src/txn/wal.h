// Write-ahead log (paper Section 6.4: "All the main operations ... are
// logged using the WAL protocol").
//
// This reproduction logs updates at the statement level: each committed
// update transaction's statements are replayed in commit order on top of
// the persistent snapshot during the two-step recovery. Statement replay is
// deterministic for the supported language (see DESIGN.md §2). Record
// format: [len][crc][type][txn][lsn-check][payload], append-only; torn
// tails are detected by the CRC and cut off.

#ifndef SEDNA_TXN_WAL_H_
#define SEDNA_TXN_WAL_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace sedna {

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kUpdateStatement = 2,  // payload: statement text
  kCommit = 3,
  kAbort = 4,
  kCheckpoint = 5,       // payload: empty; marks a persistent snapshot
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t txn_id = 0;
  uint64_t lsn = 0;  // byte offset of the record in the log
  std::string payload;
};

class WalWriter {
 public:
  ~WalWriter();

  /// Opens (creating if absent) the log for appending.
  Status Open(const std::string& path);
  Status Close();

  /// Appends one record; returns its LSN. Thread-safe.
  StatusOr<uint64_t> Append(WalRecordType type, uint64_t txn_id,
                            std::string_view payload);

  /// Next LSN to be written (== current log size).
  uint64_t end_lsn() const;

  /// Flushes to the OS (commit durability point).
  Status Sync();

  const std::string& path() const { return path_; }

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t end_lsn_ = 0;
};

/// Reads all valid records from `path` starting at `from_lsn`. Stops
/// cleanly at the first corrupt/torn record.
StatusOr<std::vector<WalRecord>> ReadWal(const std::string& path,
                                         uint64_t from_lsn = 0);

}  // namespace sedna

#endif  // SEDNA_TXN_WAL_H_
