// Write-ahead log (paper Section 6.4: "All the main operations ... are
// logged using the WAL protocol").
//
// This reproduction logs updates at the statement level: each committed
// update transaction's statements are replayed in commit order on top of
// the persistent snapshot during the two-step recovery. Statement replay is
// deterministic for the supported language (see DESIGN.md §2 and §10).
//
// The log is a sequence of numbered segment files:
//
//   <base>.seg-<start_lsn, 20 decimal digits>
//
// Each segment starts with a 16-byte header [magic u32][version u32]
// [start_lsn u64]; record bytes follow. LSNs are logical byte offsets over
// the concatenated record bytes of all segments — headers are excluded, so
// a record at file offset `off` in a segment starting at S has
// lsn = S + off - 16. Record format: [len][crc][type][txn][payload].
//
// Rotation seals the active segment with an fsync BEFORE the next segment
// is created (tmp file + atomic rename), which yields the recovery
// invariant: a torn tail can exist only in the newest segment; any parse
// failure in an older segment is real corruption and recovery refuses it.
// Checkpoints unlink segments wholly below the checkpoint LSN.
//
// Commit durability uses group commit: concurrently committing transactions
// enqueue their commit records and block on a leader/follower handoff. The
// leader drains the queue, appends every commit record, issues ONE fsync
// for the whole group and wakes the followers with the durable LSN — so
// commit throughput scales with writer count instead of flat-lining at the
// device's fsync rate.
//
// All I/O goes through the Vfs seam (common/vfs.h); Sync is a real fsync.
// After the first I/O error the writer latches a sticky failed state (the
// PostgreSQL fsyncgate lesson: a failed fsync may have dropped dirty pages,
// so a later fsync returning OK proves nothing) — only a fresh Open()
// after recovery clears it.

#ifndef SEDNA_TXN_WAL_H_
#define SEDNA_TXN_WAL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "common/vfs.h"

namespace sedna {

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kUpdateStatement = 2,  // payload: statement text
  kCommit = 3,
  kAbort = 4,
  kCheckpoint = 5,       // payload: empty; marks a persistent snapshot
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t txn_id = 0;
  uint64_t lsn = 0;  // logical byte offset of the record in the log
  std::string payload;
};

/// Size of the per-segment header; record bytes start at this file offset.
inline constexpr uint64_t kWalSegmentHeaderSize = 16;

/// Path of the segment whose first record has `start_lsn`:
/// "<base>.seg-<20-digit zero-padded start_lsn>".
std::string WalSegmentFileName(const std::string& base, uint64_t start_lsn);

/// A live segment file, reported for backup.
struct WalSegment {
  std::string file_path;
  uint64_t start_lsn = 0;
  uint64_t end_lsn = 0;  // start_lsn + record bytes in the file
};

struct WalWriterOptions {
  /// Rotation threshold: once the active segment holds at least this many
  /// record bytes, the next append seals it and starts a new segment.
  uint64_t segment_bytes = 8ull * 1024 * 1024;

  /// Upper bound on the group-commit gather window. When the previous
  /// group held more than one commit (writers are arriving concurrently),
  /// a fresh leader waits before its fsync so the committers acknowledged
  /// by the last group can catch the next one — otherwise groups alternate
  /// between a batch of one (the leader that found an empty queue) and the
  /// pile-up behind it. The actual wait adapts to the device: half the
  /// last measured fsync, capped here, so a fast device never waits longer
  /// than its own sync. Zero disables gathering.
  std::chrono::microseconds group_commit_gather{200};
};

class WalWriter {
 public:
  /// Invoked (under the log mutex) when an append or sync fails with an
  /// I/O error — the signal for read-only degradation: a WAL that cannot
  /// persist commit records must stop accepting updates.
  using IoFailureHandler = std::function<void(const Status&)>;

  explicit WalWriter(Vfs* vfs = nullptr);
  ~WalWriter();

  void set_io_failure_handler(IoFailureHandler handler);

  /// Opens the log rooted at `base` for appending: scans existing segments,
  /// removes a stray rotation temp file, opens the newest segment (creating
  /// segment 0 for a fresh log). Clears any sticky failure from a previous
  /// incarnation — Open is the recovery path.
  Status Open(const std::string& base, const WalWriterOptions& options = {});
  Status Close();

  /// Appends one record; returns its LSN. Thread-safe. May rotate to a new
  /// segment first (sealing the old one with an fsync).
  StatusOr<uint64_t> Append(WalRecordType type, uint64_t txn_id,
                            std::string_view payload);

  /// Group commit: appends a kCommit record for `txn_id` and blocks until
  /// it is durable. Concurrent callers form a group — one leader appends
  /// every queued commit record and issues a single fsync for the batch.
  /// Returns the commit record's LSN.
  ///
  /// If `query` is non-null the wait is governed: a follower whose
  /// statement is cancelled or past its deadline withdraws — but only
  /// while its record has not yet been picked by a leader (so withdrawal
  /// guarantees the commit record was never written). Once picked, the
  /// verdict of the in-flight fsync is returned; a commit that became
  /// durable before the cancellation was observed stays committed.
  StatusOr<uint64_t> AppendCommitAndSync(uint64_t txn_id,
                                         QueryContext* query = nullptr);

  /// Next LSN to be written (== logical log size).
  uint64_t end_lsn() const;

  /// Highest LSN known durable (advanced by Sync, group commit and
  /// rotation seals).
  uint64_t durable_lsn() const;

  /// Durably flushes the log (commit durability point: fsync). Once a sync
  /// or append has failed with an I/O error, every later call returns that
  /// sticky failure without touching the file.
  Status Sync();

  /// Unlinks every sealed segment wholly below `lsn` (i.e. whose records
  /// all have lsn < `lsn`), lowest first. Never touches the active segment
  /// or any segment containing records at or above `lsn`. Called after a
  /// checkpoint makes the data below `lsn` recoverable from the snapshot.
  Status RemoveSegmentsBelow(uint64_t lsn);

  /// Snapshot of the current segment files, ordered by start LSN. The last
  /// entry is the active segment. For backup.
  StatusOr<std::vector<WalSegment>> LiveSegments() const;

  /// Base path the log was opened with (segment files derive from it).
  const std::string& path() const { return path_; }

 private:
  struct CommitWaiter {
    uint64_t txn_id = 0;
    bool picked = false;  // a leader has taken ownership of this record
    bool done = false;
    Status status;
    uint64_t lsn = 0;
  };

  StatusOr<uint64_t> AppendLocked(WalRecordType type, uint64_t txn_id,
                                  std::string_view payload);
  Status RotateLocked();
  /// Creates the segment starting at `start_lsn` via tmp + rename and opens
  /// it as the active file.
  Status CreateSegmentLocked(uint64_t start_lsn);
  /// Records an I/O failure: latches the sticky state and fires the
  /// degradation handler.
  void NoteIoFailureLocked(const Status& st);
  Status SyncLocked(std::unique_lock<std::mutex>& lk);

  mutable std::mutex mu_;
  Vfs* vfs_;
  std::shared_ptr<File> file_;  // active segment; shared so a group leader
                                // can fsync outside mu_ across a rotation
  std::string path_;            // base path
  WalWriterOptions options_;
  uint64_t segment_start_ = 0;  // start LSN of the active segment
  uint64_t end_lsn_ = 0;
  uint64_t durable_lsn_ = 0;
  Status sticky_;  // first I/O error; poisons all later appends/syncs
  IoFailureHandler io_failure_handler_;

  // Group-commit state, protected by mu_.
  std::condition_variable commit_cv_;
  std::deque<CommitWaiter*> commit_queue_;
  bool leader_active_ = false;
  bool gathering_ = false;
  size_t last_group_size_ = 0;
  uint64_t last_fsync_ns_ = 0;
};

/// Reads all valid records with lsn >= `from_lsn`, scanning segments in
/// order. A parse failure in the NEWEST segment is a torn tail: the scan
/// stops cleanly and, if `valid_end` is non-null, it receives the LSN one
/// past the last valid record (the size the log should be truncated to). A
/// parse failure in any older segment — or a gap/overlap between segments —
/// is returned as kCorruption: sealed segments were fsynced before a newer
/// one was created, so damage there is not a crash artifact. `from_lsn`
/// below the first retained segment is kCorruption (the log was truncated
/// past the caller's replay point). Uses `vfs` or Vfs::Default().
StatusOr<std::vector<WalRecord>> ReadWal(const std::string& base,
                                         uint64_t from_lsn = 0,
                                         Vfs* vfs = nullptr,
                                         uint64_t* valid_end = nullptr);

/// Truncates the newest segment so the log ends at LSN `valid_end`, if it
/// currently extends past it. Called during recovery so a torn tail cannot
/// corrupt records appended later. Missing log is a no-op.
Status TruncateWalTail(const std::string& base, uint64_t valid_end,
                       Vfs* vfs = nullptr);

/// Removes every segment file (and rotation temp) of the log rooted at
/// `base`. Used when (re)creating a database.
Status RemoveWalLog(const std::string& base, Vfs* vfs = nullptr);

}  // namespace sedna

#endif  // SEDNA_TXN_WAL_H_
