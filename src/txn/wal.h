// Write-ahead log (paper Section 6.4: "All the main operations ... are
// logged using the WAL protocol").
//
// This reproduction logs updates at the statement level: each committed
// update transaction's statements are replayed in commit order on top of
// the persistent snapshot during the two-step recovery. Statement replay is
// deterministic for the supported language (see DESIGN.md §2). Record
// format: [len][crc][type][txn][payload], append-only; torn tails are
// detected by the CRC and cut off, and recovery truncates the log back to
// the valid prefix so post-recovery appends never sit behind garbage.
//
// All I/O goes through the Vfs seam (common/vfs.h); Sync is a real fsync.

#ifndef SEDNA_TXN_WAL_H_
#define SEDNA_TXN_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/vfs.h"

namespace sedna {

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kUpdateStatement = 2,  // payload: statement text
  kCommit = 3,
  kAbort = 4,
  kCheckpoint = 5,       // payload: empty; marks a persistent snapshot
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t txn_id = 0;
  uint64_t lsn = 0;  // byte offset of the record in the log
  std::string payload;
};

class WalWriter {
 public:
  /// Invoked (under the log mutex) when an append or sync fails with an
  /// I/O error — the signal for read-only degradation: a WAL that cannot
  /// persist commit records must stop accepting updates.
  using IoFailureHandler = std::function<void(const Status&)>;

  explicit WalWriter(Vfs* vfs = nullptr);
  ~WalWriter();

  void set_io_failure_handler(IoFailureHandler handler);

  /// Opens (creating if absent) the log for appending.
  Status Open(const std::string& path);
  Status Close();

  /// Appends one record; returns its LSN. Thread-safe.
  StatusOr<uint64_t> Append(WalRecordType type, uint64_t txn_id,
                            std::string_view payload);

  /// Next LSN to be written (== current log size).
  uint64_t end_lsn() const;

  /// Durably flushes the log (commit durability point: fsync).
  Status Sync();

  const std::string& path() const { return path_; }

 private:
  mutable std::mutex mu_;
  Vfs* vfs_;
  std::unique_ptr<File> file_;
  std::string path_;
  uint64_t end_lsn_ = 0;
  IoFailureHandler io_failure_handler_;
};

/// Reads all valid records from `path` starting at `from_lsn`. Stops
/// cleanly at the first corrupt/torn record. If `valid_end` is non-null it
/// receives the byte offset one past the last valid record (== the size the
/// log should be truncated to before further appends). Uses `vfs` or
/// Vfs::Default().
StatusOr<std::vector<WalRecord>> ReadWal(const std::string& path,
                                         uint64_t from_lsn = 0,
                                         Vfs* vfs = nullptr,
                                         uint64_t* valid_end = nullptr);

/// Truncates the log to `valid_end` bytes if it is currently longer. Called
/// during recovery so a torn tail cannot corrupt records appended later.
/// Missing file is a no-op.
Status TruncateWalTail(const std::string& path, uint64_t valid_end,
                       Vfs* vfs = nullptr);

}  // namespace sedna

#endif  // SEDNA_TXN_WAL_H_
