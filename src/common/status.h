// Error-handling primitives used throughout the Sedna reproduction.
//
// Following the convention of production database codebases, fallible
// operations return a `Status` (or `StatusOr<T>` when they produce a value)
// rather than throwing: exceptions are disabled-by-convention in the storage
// and transaction layers, where failure is a normal control path (page miss,
// lock timeout, parse error).

#ifndef SEDNA_COMMON_STATUS_H_
#define SEDNA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sedna {

// Broad error taxonomy. Codes are stable; messages are free-form detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller error: bad query text, bad config, bad xptr
  kNotFound,          // document/node/key absent
  kAlreadyExists,     // create-document collision etc.
  kCorruption,        // on-disk structure failed validation
  kIOError,           // underlying file operation failed
  kResourceExhausted, // out of pages/frames/label space
  kFailedPrecondition,// call sequencing error (e.g. commit without begin)
  kAborted,           // transaction aborted (deadlock victim, conflict)
  kTimedOut,          // lock wait exceeded its budget
  kUnimplemented,     // feature outside the reproduced subset
  kInternal,          // invariant violation; indicates a bug
  kReadOnlyDegraded,  // database is read-only after an unrecoverable write error
  kCancelled,         // statement cancelled cooperatively by its owner
  kDeadlineExceeded,  // statement ran past its governance deadline
  kUnavailable,       // server draining/shut down; retry against a live one
  kProtocolError,     // malformed wire-protocol traffic from a client
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional detail message.
/// `Status::OK()` is cheap (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status IOError(std::string m) {
    return Status(StatusCode::kIOError, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status TimedOut(std::string m) {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status ReadOnlyDegraded(std::string m) {
    return Status(StatusCode::kReadOnlyDegraded, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status ProtocolError(std::string m) {
    return Status(StatusCode::kProtocolError, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A `Status` or a value of type `T`. Access to `value()` requires `ok()`.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit: allows `return Status::NotFound(...)` and
  // `return value` from functions declared `StatusOr<T>`.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sedna

/// Propagates a non-OK Status from an expression to the caller.
#define SEDNA_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::sedna::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Evaluates a StatusOr expression; on error propagates the Status,
/// otherwise moves the value into `lhs`.
#define SEDNA_ASSIGN_OR_RETURN(lhs, expr)            \
  SEDNA_ASSIGN_OR_RETURN_IMPL_(                      \
      SEDNA_STATUS_CONCAT_(_status_or_, __LINE__), lhs, expr)
#define SEDNA_STATUS_CONCAT_INNER_(a, b) a##b
#define SEDNA_STATUS_CONCAT_(a, b) SEDNA_STATUS_CONCAT_INNER_(a, b)
#define SEDNA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // SEDNA_COMMON_STATUS_H_
