// Deterministic pseudo-random generator for workload generation and tests.
//
// xoshiro256** — fast, high quality, and reproducible across platforms
// (std::mt19937 distributions are not guaranteed bit-stable across library
// implementations, which matters for regenerating benchmark workloads).

#ifndef SEDNA_COMMON_RANDOM_H_
#define SEDNA_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace sedna {

class Random {
 public:
  explicit Random(uint64_t seed = 0x5eda2010ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipfian-distributed value in [0, n) with skew `theta` in (0,1).
  /// Used by benchmark workload generators for skewed access patterns.
  uint64_t Zipf(uint64_t n, double theta);

  /// Random lowercase ASCII string of length `len`.
  std::string NextString(size_t len);

 private:
  uint64_t state_[4];
};

}  // namespace sedna

#endif  // SEDNA_COMMON_RANDOM_H_
