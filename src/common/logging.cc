#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace sedna {
namespace internal_logging {

std::atomic<int>& MinLevel() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarning)};
  return level;
}

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

std::mutex& EmitMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}
}  // namespace

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  if (static_cast<int>(level) < MinLevel().load(std::memory_order_relaxed)) {
    return;
  }
  // Strip directories for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

}  // namespace internal_logging

LogLevel SetLogLevel(LogLevel level) {
  int prev = internal_logging::MinLevel().exchange(static_cast<int>(level));
  return static_cast<LogLevel>(prev);
}

}  // namespace sedna
