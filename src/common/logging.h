// Minimal leveled logging and assertion macros.
//
// The logger writes to stderr; tests can raise the threshold to silence it.
// SEDNA_CHECK is an always-on invariant check (storage code must not corrupt
// data silently even in release builds).

#ifndef SEDNA_COMMON_LOGGING_H_
#define SEDNA_COMMON_LOGGING_H_

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sedna {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

namespace internal_logging {

/// Process-wide minimum level that is actually emitted.
std::atomic<int>& MinLevel();

/// Emits one formatted line to stderr (thread-safe at the line level).
void Emit(LogLevel level, const char* file, int line, const std::string& msg);

/// Accumulates a message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Emits the message and aborts the process. Used by SEDNA_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) : file_(file), line_(line) {}
  [[noreturn]] ~FatalLogMessage() {
    Emit(LogLevel::kError, file_, line_, stream_.str());
    std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the global minimum emitted level; returns the previous level.
LogLevel SetLogLevel(LogLevel level);

}  // namespace sedna

#define SEDNA_LOG_ENABLED(level)                                   \
  (static_cast<int>(level) >=                                      \
   ::sedna::internal_logging::MinLevel().load(std::memory_order_relaxed))

#define SEDNA_LOG(level)                                           \
  if (!SEDNA_LOG_ENABLED(::sedna::LogLevel::level)) {              \
  } else                                                           \
    ::sedna::internal_logging::LogMessage(::sedna::LogLevel::level,\
                                          __FILE__, __LINE__)      \
        .stream()

#define SEDNA_CHECK(cond)                                                 \
  if (cond) {                                                             \
  } else                                                                  \
    ::sedna::internal_logging::FatalLogMessage(__FILE__, __LINE__)        \
            .stream()                                                     \
        << "Check failed: " #cond " "

#define SEDNA_DCHECK(cond) assert(cond)

#endif  // SEDNA_COMMON_LOGGING_H_
