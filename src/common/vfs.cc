#include "common/vfs.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace sedna {

namespace {

class StdioFile : public File {
 public:
  StdioFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}

  ~StdioFile() override {
    Status st = Close();
    (void)st;  // a destructor has no one to report to
  }

  Status Read(uint64_t offset, size_t n, void* buf) override {
    if (file_ == nullptr) return Status::FailedPrecondition("file closed");
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError("seek failed in " + path_);
    }
    if (std::fread(buf, 1, n, file_) != n) {
      return Status::IOError("short read in " + path_);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const void* data, size_t n) override {
    if (file_ == nullptr) return Status::FailedPrecondition("file closed");
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError("seek failed in " + path_);
    }
    if (std::fwrite(data, 1, n, file_) != n) {
      return Status::IOError("short write in " + path_);
    }
    return Status::OK();
  }

  Status Append(const void* data, size_t n) override {
    if (file_ == nullptr) return Status::FailedPrecondition("file closed");
    if (std::fseek(file_, 0, SEEK_END) != 0) {
      return Status::IOError("seek-to-end failed in " + path_);
    }
    if (std::fwrite(data, 1, n, file_) != n) {
      return Status::IOError("short append in " + path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (file_ == nullptr) return Status::FailedPrecondition("file closed");
    if (std::fflush(file_) != 0) {
      return Status::IOError("fflush failed for " + path_);
    }
    // fflush only reaches the OS page cache; fsync makes the durability
    // claim real (commit records and master pages must survive a crash).
    if (::fsync(::fileno(file_)) != 0) {
      return Status::IOError("fsync failed for " + path_);
    }
    return Status::OK();
  }

  StatusOr<uint64_t> Size() override {
    if (file_ == nullptr) return Status::FailedPrecondition("file closed");
    if (std::fseek(file_, 0, SEEK_END) != 0) {
      return Status::IOError("seek-to-end failed in " + path_);
    }
    long pos = std::ftell(file_);
    if (pos < 0) return Status::IOError("ftell failed for " + path_);
    return static_cast<uint64_t>(pos);
  }

  Status Truncate(uint64_t size) override {
    if (file_ == nullptr) return Status::FailedPrecondition("file closed");
    if (std::fflush(file_) != 0) {
      return Status::IOError("fflush failed for " + path_);
    }
    if (::ftruncate(::fileno(file_), static_cast<off_t>(size)) != 0) {
      return Status::IOError("ftruncate failed for " + path_);
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return Status::IOError("fclose failed for " + path_);
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class StdioVfs : public Vfs {
 public:
  StatusOr<std::unique_ptr<File>> Open(const std::string& path,
                                       OpenMode mode) override {
    const char* flags = nullptr;
    switch (mode) {
      case OpenMode::kCreate:
        flags = "wb+";
        break;
      case OpenMode::kReadWrite:
        flags = "rb+";
        break;
      case OpenMode::kReadOnly:
        flags = "rb";
        break;
      case OpenMode::kAppend:
        flags = "ab+";
        break;
    }
    std::FILE* f = std::fopen(path.c_str(), flags);
    if (f == nullptr) {
      return Status::IOError("cannot open " + path + ": " +
                             std::strerror(errno));
    }
    return std::unique_ptr<File>(new StdioFile(f, path));
  }

  Status Remove(const std::string& path) override {
    if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError("cannot remove " + path + ": " +
                             std::strerror(errno));
    }
    return Status::OK();
  }
};

}  // namespace

Vfs* Vfs::Default() {
  static StdioVfs* vfs = new StdioVfs();
  return vfs;
}

}  // namespace sedna
