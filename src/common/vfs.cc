#include "common/vfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace sedna {

namespace {

// POSIX fd-backed file. Read/Write use positioned pread/pwrite so concurrent
// callers (the sharded buffer manager faulting pages on several threads)
// overlap their I/O with no user-space serialization; the fd's file offset
// is only used by Append, which the contract keeps caller-serialized.
class PosixFile : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixFile() override {
    Status st = Close();
    (void)st;  // a destructor has no one to report to
  }

  Status Read(uint64_t offset, size_t n, void* buf) override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed");
    uint8_t* out = static_cast<uint8_t*>(buf);
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, out + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("pread failed in " + path_ + ": " +
                               std::strerror(errno));
      }
      if (r == 0) return Status::IOError("short read in " + path_);
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const void* data, size_t n) override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed");
    const uint8_t* in = static_cast<const uint8_t*>(data);
    size_t done = 0;
    while (done < n) {
      ssize_t w = ::pwrite(fd_, in + done, n - done,
                           static_cast<off_t>(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("pwrite failed in " + path_ + ": " +
                               std::strerror(errno));
      }
      if (w == 0) return Status::IOError("short write in " + path_);
      done += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Append(const void* data, size_t n) override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed");
    off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      return Status::IOError("seek-to-end failed in " + path_);
    }
    return Write(static_cast<uint64_t>(end), data, n);
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed");
    if (::fsync(fd_) != 0) {
      return Status::IOError("fsync failed for " + path_);
    }
    return Status::OK();
  }

  StatusOr<uint64_t> Size() override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed");
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError("fstat failed for " + path_);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(uint64_t size) override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed");
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IOError("ftruncate failed for " + path_);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Status::IOError("close failed for " + path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixVfs : public Vfs {
 public:
  StatusOr<std::unique_ptr<File>> Open(const std::string& path,
                                       OpenMode mode) override {
    int flags = 0;
    switch (mode) {
      case OpenMode::kCreate:
        flags = O_RDWR | O_CREAT | O_TRUNC;
        break;
      case OpenMode::kReadWrite:
        flags = O_RDWR;
        break;
      case OpenMode::kReadOnly:
        flags = O_RDONLY;
        break;
      case OpenMode::kAppend:
        flags = O_RDWR | O_CREAT;
        break;
    }
    int fd = ::open(path.c_str(), flags | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::IOError("cannot open " + path + ": " +
                             std::strerror(errno));
    }
    return std::unique_ptr<File>(new PosixFile(fd, path));
  }

  Status Remove(const std::string& path) override {
    if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError("cannot remove " + path + ": " +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("cannot rename " + from + " -> " + to + ": " +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  StatusOr<std::vector<std::string>> ListFiles(
      const std::string& prefix) override {
    // Split the prefix into the directory to scan and the basename prefix
    // to match. "wal" (no slash) scans the working directory.
    size_t slash = prefix.find_last_of('/');
    std::string dir = slash == std::string::npos ? "." : prefix.substr(0, slash);
    if (dir.empty()) dir = "/";
    std::string base =
        slash == std::string::npos ? prefix : prefix.substr(slash + 1);

    std::vector<std::string> out;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      if (errno == ENOENT) return out;
      return Status::IOError("cannot list " + dir + ": " +
                             std::strerror(errno));
    }
    while (struct dirent* ent = ::readdir(d)) {
      std::string name = ent->d_name;
      if (name == "." || name == "..") continue;
      if (name.compare(0, base.size(), base) != 0) continue;
      out.push_back(slash == std::string::npos
                        ? name
                        : prefix.substr(0, slash + 1) + name);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
  }
};

}  // namespace

Vfs* Vfs::Default() {
  static PosixVfs* vfs = new PosixVfs();
  return vfs;
}

}  // namespace sedna
