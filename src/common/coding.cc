#include "common/coding.h"

namespace sedna {

void PutVarint32(std::string* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

const char* GetVarint32(const char* p, const char* limit, uint32_t* value) {
  uint32_t result = 0;
  for (int shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = static_cast<uint8_t>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint64(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<uint8_t>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

const char* GetLengthPrefixed(const char* p, const char* limit,
                              std::string_view* result) {
  uint64_t len = 0;
  p = GetVarint64(p, limit, &len);
  if (p == nullptr || static_cast<uint64_t>(limit - p) < len) return nullptr;
  *result = std::string_view(p, len);
  return p + len;
}

namespace {
struct Crc32Table {
  uint32_t table[256];
  Crc32Table() {
    // Castagnoli polynomial (reflected).
    const uint32_t poly = 0x82f63b78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
      }
      table[i] = crc;
    }
  }
};
}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const Crc32Table* t = new Crc32Table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = t->table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

bool Decoder::GetFixed32(uint32_t* v) {
  if (!ok_ || remaining() < 4) return Fail();
  *v = DecodeFixed32(p_);
  p_ += 4;
  return true;
}

bool Decoder::GetFixed64(uint64_t* v) {
  if (!ok_ || remaining() < 8) return Fail();
  *v = DecodeFixed64(p_);
  p_ += 8;
  return true;
}

bool Decoder::GetVarint32(uint32_t* v) {
  if (!ok_) return false;
  const char* next = sedna::GetVarint32(p_, limit_, v);
  if (next == nullptr) return Fail();
  p_ = next;
  return true;
}

bool Decoder::GetVarint64(uint64_t* v) {
  if (!ok_) return false;
  const char* next = sedna::GetVarint64(p_, limit_, v);
  if (next == nullptr) return Fail();
  p_ = next;
  return true;
}

bool Decoder::GetLengthPrefixed(std::string_view* v) {
  if (!ok_) return false;
  const char* next = sedna::GetLengthPrefixed(p_, limit_, v);
  if (next == nullptr) return Fail();
  p_ = next;
  return true;
}

bool Decoder::GetRaw(void* dst, size_t n) {
  if (!ok_ || remaining() < n) return Fail();
  std::memcpy(dst, p_, n);
  p_ += n;
  return true;
}

}  // namespace sedna
