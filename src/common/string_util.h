// Small string helpers shared by the XML and XQuery front ends.

#ifndef SEDNA_COMMON_STRING_UTIL_H_
#define SEDNA_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sedna {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Removes leading and trailing XML whitespace (space, tab, CR, LF).
std::string_view Trim(std::string_view s);

/// True if `s` consists only of XML whitespace (or is empty).
bool IsXmlWhitespace(std::string_view s);

/// Parses a decimal integer; returns false on any non-numeric content.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a floating-point number; returns false on any non-numeric content.
bool ParseDouble(std::string_view s, double* out);

/// Formats a double the way XQuery serialization does: integral values
/// without a trailing ".0", otherwise shortest round-trip form.
std::string FormatDouble(double v);

/// Escapes '&', '<', '>', '"' for inclusion in serialized XML.
std::string XmlEscape(std::string_view s, bool escape_quotes = false);

}  // namespace sedna

#endif  // SEDNA_COMMON_STRING_UTIL_H_
