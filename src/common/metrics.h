// Process-wide observability layer: named counters, gauges and fixed-bucket
// latency histograms with a lock-free update path.
//
// Design (DESIGN.md §8):
//  - Components look up their instruments ONCE (at construction) through
//    MetricsRegistry::Global().counter("buffer.hits") and keep the raw
//    pointer; instruments are never destroyed while the process lives, so
//    the hot path is a single relaxed fetch_add with no hashing or locking.
//  - The registry mutex is taken only to register a new name or to walk the
//    table for a snapshot; Snapshot/Reset never block updaters.
//  - Histograms use power-of-two buckets (bucket i counts values in
//    [2^(i-1), 2^i), bucket 0 counts 0..1), which bounds any quantile
//    estimate's relative error at 2x — plenty for latency triage — while
//    keeping Record() at one bit-scan plus one fetch_add.
//
// Naming scheme: dot-separated, "<subsystem>.<metric>[_<unit>]", e.g.
// "buffer.hits", "wal.fsync_ns" (histograms carry their unit suffix).
// Per-shard counters append ".shardN" — they are registered by the owning
// component, not synthesized by the registry.

#ifndef SEDNA_COMMON_METRICS_H_
#define SEDNA_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sedna {

/// Monotonic counter. Updates are relaxed-atomic: totals are exact once the
/// writing threads are joined, which is the only time tests read them.
class Counter {
 public:
  void Add(uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time signed value (e.g. pages currently pinned).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed power-of-two-bucket histogram for latency-style values (ns).
/// Bucket i counts values < 2^i (exclusive upper bound), so bucket 0 is
/// {0}, bucket 1 is {1}, bucket 2 is {2,3}, ... bucket 40 covers up to
/// ~1100 s; larger values land in the overflow top bucket.
class Histogram {
 public:
  static constexpr int kBuckets = 41;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper-bound estimate of the q-quantile (q in [0,1]): the exclusive
  /// upper edge of the bucket holding the q*count-th sample. Exact to
  /// within the 2x bucket width; 0 when empty.
  uint64_t ApproxQuantile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Name → instrument table. Lookup-or-create is mutex-guarded; returned
/// pointers stay valid for the registry's lifetime (the global one never
/// dies), so callers cache them and update lock-free.
class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Serializes every registered instrument to a JSON object:
  /// {"counters":{name:value,...}, "gauges":{...},
  ///  "histograms":{name:{"count":c,"sum":s,"max":m,"p50":..,"p99":..},...}}
  /// Keys are sorted (std::map), so snapshots diff cleanly.
  std::string SnapshotJson() const;

  /// Zeroes every instrument (names stay registered — cached pointers
  /// remain valid). Tests use this to scope assertions to one phase.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII latency probe: records elapsed nanoseconds into `h` on destruction.
/// A null histogram disables the probe (and the clock reads) entirely.
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram* h) : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~LatencyTimer() {
    if (h_ != nullptr) {
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
      h_->Record(static_cast<uint64_t>(ns));
    }
  }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sedna

#endif  // SEDNA_COMMON_METRICS_H_
