#include "common/status.h"

namespace sedna {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kReadOnlyDegraded:
      return "ReadOnlyDegraded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kProtocolError:
      return "ProtocolError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace sedna
