#include "common/string_util.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sedna {

namespace {
inline bool IsWs(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}
}  // namespace

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsWs(s[b])) ++b;
  while (e > b && IsWs(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool IsXmlWhitespace(std::string_view s) {
  for (char c : s) {
    if (!IsWs(c)) return false;
  }
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is not universally available; strtod needs a
  // NUL-terminated buffer.
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "INF" : "-INF";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back = std::strtod(shorter, nullptr);
    if (back == v) return shorter;
  }
  return buf;
}

std::string XmlEscape(std::string_view s, bool escape_quotes) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        if (escape_quotes) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace sedna
