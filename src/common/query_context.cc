#include "common/query_context.h"

#include "common/metrics.h"

namespace sedna {

namespace {

// splitmix64 finalizer: the same cheap mixer the lock manager uses for
// jitter; here it derives a per-charge uniform variate from (seed, index).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct GovernorMetrics {
  Counter* cancelled;
  Counter* deadline_aborts;
  Counter* oom_aborts;
  Gauge* peak_statement_bytes;
};

const GovernorMetrics& Metrics() {
  static const GovernorMetrics m = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return GovernorMetrics{reg.counter("governor.cancelled"),
                           reg.counter("governor.deadline_aborts"),
                           reg.counter("governor.oom_aborts"),
                           reg.gauge("governor.peak_statement_bytes")};
  }();
  return m;
}

}  // namespace

Status AllocFaultInjector::OnCharge(uint64_t bytes) {
  (void)bytes;
  uint64_t idx = charge_counter_.fetch_add(1, std::memory_order_relaxed);
  if (fail_at_.has_value() && idx == *fail_at_) {
    return Status::ResourceExhausted(
        "injected allocation failure at charge " + std::to_string(idx));
  }
  if (random_rate_ > 0.0) {
    double unit = static_cast<double>(Mix64(seed_ ^ idx)) /
                  static_cast<double>(UINT64_MAX);
    if (unit < random_rate_) {
      return Status::ResourceExhausted(
          "injected random allocation failure at charge " +
          std::to_string(idx));
    }
  }
  return Status::OK();
}

QueryContext::QueryContext()
    : cancel_(std::make_shared<CancellationToken>()) {}

Status QueryContext::Fail(Status st) {
  // Two-phase publish: the claim elects exactly one writer; `failed_` is
  // only set (release) after the code/message are written, so a concurrent
  // abort_status() reader never observes them half-initialized. Exchange
  // workers fail a shared context from several threads at once.
  bool expected = false;
  if (fail_claim_.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
    abort_code_ = st.code();
    abort_message_ = st.message();
    failed_.store(true, std::memory_order_release);
  }
  return st;
}

Status QueryContext::Check() {
  if (cancel_at_tick_ != 0 &&
      ticks_.load(std::memory_order_relaxed) >= cancel_at_tick_) {
    cancel_->Cancel();
  }
  if (cancel_->cancelled()) {
    return Fail(Status::Cancelled("statement cancelled"));
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Fail(Status::DeadlineExceeded("statement deadline exceeded"));
  }
  return Status::OK();
}

Status QueryContext::ChargeBytes(uint64_t bytes) {
  if (alloc_faults_ != nullptr) {
    Status injected = alloc_faults_->OnCharge(bytes);
    if (!injected.ok()) return Fail(std::move(injected));
  }
  uint64_t now =
      bytes_in_use_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (memory_budget_ != 0 && now > memory_budget_) {
    bytes_in_use_.fetch_sub(bytes, std::memory_order_relaxed);
    return Fail(Status::ResourceExhausted(
        "statement memory budget exceeded (" + std::to_string(now) + " > " +
        std::to_string(memory_budget_) + " bytes)"));
  }
  // Racy max is fine: charges from one statement are near-sequential, and
  // the gauge is diagnostic.
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_bytes_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void QueryContext::ReleaseBytes(uint64_t bytes) {
  bytes_in_use_.fetch_sub(bytes, std::memory_order_relaxed);
}

Status QueryContext::abort_status() const {
  if (!failed_.load(std::memory_order_acquire)) return Status::OK();
  return Status(abort_code_, abort_message_);
}

void QueryContext::PublishMetrics() {
  if (metrics_published_) return;
  metrics_published_ = true;
  const GovernorMetrics& m = Metrics();
  switch (abort_status().code()) {
    case StatusCode::kCancelled:
      m.cancelled->Add();
      break;
    case StatusCode::kDeadlineExceeded:
      m.deadline_aborts->Add();
      break;
    case StatusCode::kResourceExhausted:
      m.oom_aborts->Add();
      break;
    default:
      break;
  }
  int64_t peak = static_cast<int64_t>(peak_bytes());
  if (peak > m.peak_statement_bytes->value()) {
    m.peak_statement_bytes->Set(peak);
  }
}

}  // namespace sedna
