#include "common/metrics.h"

#include <bit>
#include <sstream>

namespace sedna {

namespace {

int BucketIndex(uint64_t value) {
  // Exclusive upper bounds: bucket i holds values < 2^i, i.e. the index is
  // the bit width of the value (0 for 0), clamped to the overflow bucket.
  int idx = std::bit_width(value);
  if (idx >= Histogram::kBuckets) idx = Histogram::kBuckets - 1;
  return idx;
}

void AtomicMax(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < value &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMax(max_, value);
}

uint64_t Histogram::ApproxQuantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) {
      // Exclusive upper edge of bucket i (bucket 0 holds only 0).
      return i == 0 ? 0 : (uint64_t{1} << i) - 1;
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrument pointers cached by components must stay
  // valid through static destruction order.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << g->value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    uint64_t count = h->count();
    out << "\"" << name << "\":{\"count\":" << count << ",\"sum\":"
        << h->sum() << ",\"max\":" << h->max()
        << ",\"mean\":" << (count == 0 ? 0 : h->sum() / count)
        << ",\"p50\":" << h->ApproxQuantile(0.50)
        << ",\"p95\":" << h->ApproxQuantile(0.95)
        << ",\"p99\":" << h->ApproxQuantile(0.99) << "}";
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace sedna
