#include "common/fault_vfs.h"

#include <cstring>

namespace sedna {

namespace {

// Places `data` at `offset` in `img`, zero-filling any gap. Out-of-order
// survival of torn writes can leave holes; zero bytes model unwritten
// sectors.
void ApplyWrite(std::string& img, uint64_t offset, const std::string& data) {
  if (img.size() < offset) img.resize(offset, '\0');
  if (img.size() < offset + data.size()) img.resize(offset + data.size());
  std::memcpy(img.data() + offset, data.data(), data.size());
}

}  // namespace

/// File handle over a shared in-memory FileState. All logic lives in the
/// owning vfs so the fault gate and the file model share one mutex.
class FaultFile : public File {
 public:
  FaultFile(FaultInjectingVfs* vfs, std::string path,
            std::shared_ptr<FaultInjectingVfs::FileState> state,
            bool read_only)
      : vfs_(vfs),
        path_(std::move(path)),
        state_(std::move(state)),
        read_only_(read_only) {}

  Status Read(uint64_t offset, size_t n, void* buf) override {
    if (!state_) return Status::FailedPrecondition("file closed");
    return vfs_->DoRead(path_, *state_, offset, n, buf);
  }

  Status Write(uint64_t offset, const void* data, size_t n) override {
    if (!state_) return Status::FailedPrecondition("file closed");
    if (read_only_) {
      return Status::FailedPrecondition("write to read-only file " + path_);
    }
    return vfs_->DoWrite(path_, *state_, offset, data, n, /*append=*/false);
  }

  Status Append(const void* data, size_t n) override {
    if (!state_) return Status::FailedPrecondition("file closed");
    if (read_only_) {
      return Status::FailedPrecondition("append to read-only file " + path_);
    }
    return vfs_->DoWrite(path_, *state_, 0, data, n, /*append=*/true);
  }

  Status Sync() override {
    if (!state_) return Status::FailedPrecondition("file closed");
    return vfs_->DoSync(path_, *state_);
  }

  StatusOr<uint64_t> Size() override {
    if (!state_) return Status::FailedPrecondition("file closed");
    return vfs_->DoSize(*state_);
  }

  Status Truncate(uint64_t size) override {
    if (!state_) return Status::FailedPrecondition("file closed");
    if (read_only_) {
      return Status::FailedPrecondition("truncate of read-only file " + path_);
    }
    return vfs_->DoTruncate(path_, *state_, size);
  }

  Status Close() override {
    state_.reset();
    return Status::OK();
  }

 private:
  FaultInjectingVfs* vfs_;
  std::string path_;
  std::shared_ptr<FaultInjectingVfs::FileState> state_;
  bool read_only_;
};

FaultInjectingVfs::FaultInjectingVfs(uint64_t seed) : rng_(seed) {}

FaultInjectingVfs::~FaultInjectingVfs() = default;

StatusOr<std::unique_ptr<File>> FaultInjectingVfs::Open(
    const std::string& path, OpenMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IOError("injected crash: vfs is down");
  auto it = files_.find(path);
  std::shared_ptr<FileState> state;
  switch (mode) {
    case OpenMode::kCreate: {
      // Creation (and truncation of an existing file) is immediately
      // durable: directory-entry durability is not part of the fault
      // model, only data written afterwards is at risk.
      state = std::make_shared<FileState>();
      files_[path] = state;
      break;
    }
    case OpenMode::kReadWrite:
    case OpenMode::kReadOnly: {
      if (it == files_.end()) {
        return Status::IOError("cannot open " + path + ": no such file");
      }
      state = it->second;
      break;
    }
    case OpenMode::kAppend: {
      if (it == files_.end()) {
        state = std::make_shared<FileState>();
        files_[path] = state;
      } else {
        state = it->second;
      }
      break;
    }
  }
  return std::unique_ptr<File>(
      new FaultFile(this, path, state, mode == OpenMode::kReadOnly));
}

Status FaultInjectingVfs::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  SEDNA_RETURN_IF_ERROR(GateLocked(path, "remove", 0, 0, true));
  files_.erase(path);  // absent is fine: Remove is idempotent
  return Status::OK();
}

Status FaultInjectingVfs::Rename(const std::string& from,
                                 const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  SEDNA_RETURN_IF_ERROR(GateLocked(from, "rename", 0, 0, true));
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::IOError("cannot rename " + from + ": no such file");
  }
  files_[to] = it->second;
  files_.erase(it);
  return Status::OK();
}

StatusOr<std::vector<std::string>> FaultInjectingVfs::ListFiles(
    const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IOError("injected crash: vfs is down");
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;  // files_ is an ordered map, so `out` is already sorted
}

void FaultInjectingVfs::ScheduleCrashAtOp(uint64_t op_index,
                                          CrashStyle style) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_op_ = op_index;
  crash_style_ = style;
}

void FaultInjectingVfs::ScheduleTransientFailureAtOp(uint64_t op_index) {
  std::lock_guard<std::mutex> lock(mu_);
  transient_fail_ops_.insert(op_index);
}

void FaultInjectingVfs::SetStickyErrorRates(const std::string& path_substring,
                                            double read_rate,
                                            double write_rate) {
  std::lock_guard<std::mutex> lock(mu_);
  sticky_rules_.push_back({path_substring, read_rate, write_rate});
}

void FaultInjectingVfs::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_op_.reset();
  transient_fail_ops_.clear();
  sticky_rules_.clear();
}

void FaultInjectingVfs::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, state] : files_) {
    if (!crashed_ || crash_style_ == CrashStyle::kLoseUnsynced) {
      if (crashed_) state->live = state->durable;
    } else {
      // kTornWrites: rebuild from the durable image, letting each pending
      // operation survive fully, as a torn prefix, or not at all.
      std::string img = state->durable;
      for (const PendingOp& op : state->pending) {
        if (op.is_truncate) {
          if (rng_.Bernoulli(0.5)) img.resize(op.offset, '\0');
          continue;
        }
        double draw = rng_.NextDouble();
        if (draw < 0.5) {
          ApplyWrite(img, op.offset, op.data);
        } else if (draw < 0.75 && !op.data.empty()) {
          uint64_t torn = rng_.Uniform(op.data.size());
          ApplyWrite(img, op.offset, op.data.substr(0, torn));
        }
        // else: the write vanished entirely.
      }
      state->live = img;
      state->durable = img;
    }
    state->pending.clear();
    state->durable = state->live;
  }
  crashed_ = false;
  crash_at_op_.reset();
}

bool FaultInjectingVfs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultInjectingVfs::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_counter_;
}

void FaultInjectingVfs::EnableOpLog(bool enable) {
  std::lock_guard<std::mutex> lock(mu_);
  log_ops_ = enable;
  op_log_.clear();
}

std::vector<VfsOpRecord> FaultInjectingVfs::TakeOpLog() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<VfsOpRecord> out;
  out.swap(op_log_);
  return out;
}

bool FaultInjectingVfs::FileExists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

StatusOr<uint64_t> FaultInjectingVfs::FileSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return static_cast<uint64_t>(it->second->live.size());
}

Status FaultInjectingVfs::CorruptByte(const std::string& path,
                                      uint64_t offset, uint8_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  FileState& f = *it->second;
  if (offset >= f.live.size()) {
    return Status::InvalidArgument("corrupt offset beyond end of " + path);
  }
  f.live[offset] = static_cast<char>(f.live[offset] ^ mask);
  if (offset < f.durable.size()) {
    f.durable[offset] = static_cast<char>(f.durable[offset] ^ mask);
  }
  return Status::OK();
}

Status FaultInjectingVfs::GateLocked(const std::string& path,
                                     const char* kind, uint64_t offset,
                                     uint64_t len, bool is_write) {
  if (crashed_) return Status::IOError("injected crash: vfs is down");
  uint64_t idx = op_counter_++;
  if (log_ops_) op_log_.push_back({idx, path, kind, offset, len});
  if (crash_at_op_ && idx >= *crash_at_op_) {
    crashed_ = true;
    return Status::IOError("injected crash at op " + std::to_string(idx));
  }
  if (transient_fail_ops_.erase(idx) > 0) {
    return Status::IOError("injected transient failure at op " +
                           std::to_string(idx));
  }
  for (const StickyRule& rule : sticky_rules_) {
    if (path.find(rule.substring) == std::string::npos) continue;
    double rate = is_write ? rule.write_rate : rule.read_rate;
    if (rate > 0.0 && rng_.Bernoulli(rate)) {
      return Status::IOError(std::string("injected sticky ") +
                             (is_write ? "write" : "read") + " error on " +
                             path);
    }
  }
  return Status::OK();
}

Status FaultInjectingVfs::DoRead(const std::string& path, FileState& f,
                                 uint64_t offset, size_t n, void* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  SEDNA_RETURN_IF_ERROR(GateLocked(path, "read", offset, n, false));
  if (offset + n > f.live.size()) {
    return Status::IOError("short read in " + path);
  }
  std::memcpy(buf, f.live.data() + offset, n);
  return Status::OK();
}

Status FaultInjectingVfs::DoWrite(const std::string& path, FileState& f,
                                  uint64_t offset, const void* data, size_t n,
                                  bool append) {
  std::lock_guard<std::mutex> lock(mu_);
  if (append) offset = f.live.size();
  SEDNA_RETURN_IF_ERROR(
      GateLocked(path, append ? "append" : "write", offset, n, true));
  std::string bytes(static_cast<const char*>(data), n);
  ApplyWrite(f.live, offset, bytes);
  f.pending.push_back({false, offset, std::move(bytes)});
  return Status::OK();
}

Status FaultInjectingVfs::DoSync(const std::string& path, FileState& f) {
  std::lock_guard<std::mutex> lock(mu_);
  SEDNA_RETURN_IF_ERROR(GateLocked(path, "sync", 0, 0, true));
  f.durable = f.live;
  f.pending.clear();
  return Status::OK();
}

StatusOr<uint64_t> FaultInjectingVfs::DoSize(FileState& f) {
  std::lock_guard<std::mutex> lock(mu_);
  // Size is metadata, not I/O: not counted and never fails, so callers can
  // probe state while scheduling faults.
  return static_cast<uint64_t>(f.live.size());
}

Status FaultInjectingVfs::DoTruncate(const std::string& path, FileState& f,
                                     uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  SEDNA_RETURN_IF_ERROR(GateLocked(path, "truncate", size, 0, true));
  f.live.resize(size, '\0');
  f.pending.push_back({true, size, std::string()});
  return Status::OK();
}

}  // namespace sedna
