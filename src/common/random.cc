#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace sedna {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: used only to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Random::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : state_) s = SplitMix64(x);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  SEDNA_DCHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  SEDNA_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

uint64_t Random::Zipf(uint64_t n, double theta) {
  SEDNA_DCHECK(n > 0);
  // Approximate skewed sampling: with probability `theta` draw log-uniform
  // (heavily favouring small values), otherwise uniform. Matches the shape
  // benchmarks need without the cost of exact Zipf inversion.
  if (NextDouble() < theta) {
    double x = std::pow(static_cast<double>(n), NextDouble());
    uint64_t v = static_cast<uint64_t>(x) - (x >= 1.0 ? 1 : 0);
    return v >= n ? n - 1 : v;
  }
  return Uniform(n);
}

std::string Random::NextString(size_t len) {
  std::string s(len, 'a');
  for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
  return s;
}

}  // namespace sedna
