// Deterministic fault-injecting Vfs for crash-recovery testing.
//
// Files live entirely in memory as two images plus a journal:
//
//   durable  — bytes guaranteed to survive a crash (updated by Sync)
//   live     — bytes the process observes (updated by every write)
//   pending  — ordered writes/truncates issued since the last Sync
//
// A scheduled "crash" makes every subsequent operation fail, freezing the
// file set in its crashed state. `Recover()` then simulates the reboot:
// with `CrashStyle::kLoseUnsynced` every file reverts to its durable image
// (an OS crash that drops the page cache); with `CrashStyle::kTornWrites`
// each pending write independently survives in full (p=0.5), survives as a
// torn prefix (p=0.25) or vanishes (p=0.25), modelling a disk that
// persisted an arbitrary subset of in-flight sectors. All randomness comes
// from a caller-provided seed, so every crash scenario is reproducible.
//
// Fault classes:
//   - ScheduleCrashAtOp(n, style): the n-th counted operation (0-based;
//     reads, writes, appends, syncs, truncates) and everything after it
//     fail with kIOError until Recover() is called.
//   - ScheduleTransientFailureAtOp(n): the n-th operation alone fails; a
//     retry of the same logical I/O succeeds. Exercises bounded backoff.
//   - SetStickyErrorRates(substr, r, w): operations on files whose path
//     contains `substr` fail with probability r (reads) / w (writes,
//     syncs, truncates). Failures are injected before any state changes,
//     so they never corrupt the file model.
//
// Simplification (documented contract): Open(kCreate) makes the created
// empty file immediately durable — directory-entry durability is not
// modelled, only data durability.

#ifndef SEDNA_COMMON_FAULT_VFS_H_
#define SEDNA_COMMON_FAULT_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/vfs.h"

namespace sedna {

enum class CrashStyle {
  kLoseUnsynced,  // revert every file to its last-synced image
  kTornWrites,    // each unsynced write persists fully / partially / not
};

/// One counted operation, recorded when the op log is enabled. Torture
/// tests use this to aim crashes at specific I/O (e.g. master-record
/// writes, identified by path + offset).
struct VfsOpRecord {
  uint64_t op_index;
  std::string path;
  std::string kind;  // "read" | "write" | "append" | "sync" | "truncate"
                     // | "remove" | "rename"
  uint64_t offset;   // 0 for sync/remove/rename
  uint64_t len;      // 0 for sync/truncate/remove/rename
};

class FaultInjectingVfs : public Vfs {
 public:
  explicit FaultInjectingVfs(uint64_t seed = 0x5eda2010ULL);
  ~FaultInjectingVfs() override;

  StatusOr<std::unique_ptr<File>> Open(const std::string& path,
                                       OpenMode mode) override;
  /// Counted fault point ("remove"): a scheduled crash can fire mid-unlink,
  /// leaving later unlinks of the same cleanup pass undone. A remove that
  /// passes the gate is atomic and immediately durable (directory-entry
  /// durability is not modelled).
  Status Remove(const std::string& path) override;
  /// Counted fault point ("rename"); atomic and immediately durable once it
  /// passes the gate — after a crash either the old or the new name exists.
  Status Rename(const std::string& from, const std::string& to) override;
  /// Metadata probe: not counted, but fails once a crash has fired.
  StatusOr<std::vector<std::string>> ListFiles(
      const std::string& prefix) override;

  /// Crash just before the operation with 0-based index `op_index`
  /// executes; it and all later operations fail until Recover().
  void ScheduleCrashAtOp(uint64_t op_index, CrashStyle style);

  /// Fail only the operation with index `op_index`; later ops succeed.
  void ScheduleTransientFailureAtOp(uint64_t op_index);

  /// Sticky per-file error rates, matched by substring of the path.
  void SetStickyErrorRates(const std::string& path_substring,
                           double read_rate, double write_rate);

  /// Drops all scheduled crashes, transient failures and sticky rates.
  void ClearFaults();

  /// Simulates the post-crash reboot: applies the crash style to every
  /// file, clears the crashed flag and the crash schedule. Safe to call
  /// when no crash fired (files keep their live contents).
  void Recover();

  bool crashed() const;

  /// Number of counted operations performed so far (== the index the next
  /// operation will get).
  uint64_t op_count() const;

  void EnableOpLog(bool enable);
  /// Returns and clears the recorded operations.
  std::vector<VfsOpRecord> TakeOpLog();

  bool FileExists(const std::string& path) const;
  StatusOr<uint64_t> FileSize(const std::string& path) const;

  /// XORs `mask` into the byte at `offset` in both the live and durable
  /// images, bypassing fault gates. For corruption tests.
  Status CorruptByte(const std::string& path, uint64_t offset, uint8_t mask);

 private:
  friend class FaultFile;

  struct PendingOp {
    bool is_truncate;
    uint64_t offset;   // write position, or new size for truncate
    std::string data;  // empty for truncate
  };

  struct FileState {
    std::string durable;
    std::string live;
    std::vector<PendingOp> pending;
  };

  struct StickyRule {
    std::string substring;
    double read_rate;
    double write_rate;
  };

  // All Do* helpers lock mu_ and run the fault gate before touching state.
  Status DoRead(const std::string& path, FileState& f, uint64_t offset,
                size_t n, void* buf);
  Status DoWrite(const std::string& path, FileState& f, uint64_t offset,
                 const void* data, size_t n, bool append);
  Status DoSync(const std::string& path, FileState& f);
  StatusOr<uint64_t> DoSize(FileState& f);
  Status DoTruncate(const std::string& path, FileState& f, uint64_t size);

  /// Counts the operation, logs it, and returns the injected failure, if
  /// any. Caller must hold mu_.
  Status GateLocked(const std::string& path, const char* kind,
                    uint64_t offset, uint64_t len, bool is_write);

  mutable std::mutex mu_;
  Random rng_;
  std::map<std::string, std::shared_ptr<FileState>> files_;

  uint64_t op_counter_ = 0;
  bool crashed_ = false;
  CrashStyle crash_style_ = CrashStyle::kLoseUnsynced;
  std::optional<uint64_t> crash_at_op_;
  std::set<uint64_t> transient_fail_ops_;
  std::vector<StickyRule> sticky_rules_;

  bool log_ops_ = false;
  std::vector<VfsOpRecord> op_log_;
};

}  // namespace sedna

#endif  // SEDNA_COMMON_FAULT_VFS_H_
