// Virtual file system seam (LevelDB-Env-style) for every low-level file
// operation in the storage and transaction layers.
//
// FileManager and WalWriter do all their I/O through a `Vfs`, so tests can
// interpose a fault-injecting implementation (see common/fault_vfs.h) and
// adversarially exercise the WAL protocol, the double-slot master record and
// the two-step recovery with torn writes, elided syncs and sticky I/O
// errors. The process-global default is backed by POSIX fds with positioned
// pread/pwrite and fsync: `Sync` is a real durability point, not just a
// user-space flush, and `Read`/`Write` carry their own offsets so concurrent
// page faults from the sharded buffer manager overlap their I/O.

#ifndef SEDNA_COMMON_VFS_H_
#define SEDNA_COMMON_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace sedna {

/// How Vfs::Open positions and creates a file.
enum class OpenMode {
  kCreate,     // read/write; truncates an existing file, creates if absent
  kReadWrite,  // read/write; the file must exist
  kReadOnly,   // read only; the file must exist
  kAppend,     // writes go to the end; creates if absent
};

/// An open file handle. Thread-safety contract: `Read`, `Write` and `Sync`
/// MUST tolerate concurrent callers (they are positioned operations; the
/// default implementation maps them to pread/pwrite/fsync, and the
/// fault-injecting implementation carries its own mutex). The stateful
/// operations — `Append`, `Truncate`, `Size`, `Close` — remain serialized
/// by their callers (WalWriter's mutex, FileManager's mutex); readers
/// (ReadWal, backup) open separate handles.
class File {
 public:
  virtual ~File() = default;

  /// Reads exactly `n` bytes at `offset` into `buf`; a short read fails.
  virtual Status Read(uint64_t offset, size_t n, void* buf) = 0;

  /// Writes `n` bytes at `offset`, extending the file if needed.
  virtual Status Write(uint64_t offset, const void* data, size_t n) = 0;

  /// Writes `n` bytes at the current end of the file.
  virtual Status Append(const void* data, size_t n) = 0;

  /// Flushes user-space buffers AND asks the OS to persist to stable
  /// storage (fsync). This is the durability point for WAL commit records
  /// and master-record writes; until Sync returns OK nothing written since
  /// the previous Sync may be assumed to survive a crash.
  virtual Status Sync() = 0;

  virtual StatusOr<uint64_t> Size() = 0;

  virtual Status Truncate(uint64_t size) = 0;

  /// Idempotent; invoked by the destructor if not called explicitly.
  virtual Status Close() = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  virtual StatusOr<std::unique_ptr<File>> Open(const std::string& path,
                                               OpenMode mode) = 0;

  /// Removes the file; removing a missing file is OK (idempotent cleanup).
  virtual Status Remove(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics). The WAL
  /// segment-rotation protocol relies on this being all-or-nothing: after a
  /// crash either the old name or the new name exists, never a half state.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Full paths of existing files whose path starts with `prefix`, sorted
  /// lexicographically. A prefix matching nothing (including a missing
  /// directory) yields an empty list, not an error.
  virtual StatusOr<std::vector<std::string>> ListFiles(
      const std::string& prefix) = 0;

  /// Process-global default implementation (stdio + fsync). Never null.
  static Vfs* Default();
};

}  // namespace sedna

#endif  // SEDNA_COMMON_VFS_H_
