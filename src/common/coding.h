// Binary encoding helpers for the WAL, catalog and backup file formats:
// little-endian fixed-width integers, LEB128 varints, length-prefixed
// strings, and a CRC32 used to validate on-disk records.

#ifndef SEDNA_COMMON_CODING_H_
#define SEDNA_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace sedna {

// --- fixed-width little-endian ---------------------------------------------

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

// --- varints (LEB128) -------------------------------------------------------

void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

/// Decodes a varint from [p, limit). Returns the position after the varint,
/// or nullptr on malformed/truncated input.
const char* GetVarint32(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64(const char* p, const char* limit, uint64_t* value);

// --- length-prefixed strings ------------------------------------------------

void PutLengthPrefixed(std::string* dst, std::string_view value);
const char* GetLengthPrefixed(const char* p, const char* limit,
                              std::string_view* result);

// --- checksums ---------------------------------------------------------------

/// CRC32 (Castagnoli polynomial, table-driven software implementation).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

// --- cursor-style decoder ----------------------------------------------------

/// Sequential decoder over a byte buffer; each Get* returns false once the
/// input is exhausted or malformed, after which the decoder stays failed.
class Decoder {
 public:
  explicit Decoder(std::string_view data)
      : p_(data.data()), limit_(data.data() + data.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(limit_ - p_); }

  bool GetFixed32(uint32_t* v);
  bool GetFixed64(uint64_t* v);
  bool GetVarint32(uint32_t* v);
  bool GetVarint64(uint64_t* v);
  bool GetLengthPrefixed(std::string_view* v);
  bool GetRaw(void* dst, size_t n);

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  const char* p_;
  const char* limit_;
  bool ok_ = true;
};

}  // namespace sedna

#endif  // SEDNA_COMMON_CODING_H_
