// Per-statement resource governance (paper Figure 1: the Governor is the
// control center of the process architecture).
//
// A QueryContext travels with one executing statement and carries the three
// controls the governor enforces:
//
//   * a deadline     — a steady-clock point after which every governance
//                      check returns kDeadlineExceeded;
//   * a cancellation — a shared token another thread (the session owner,
//     token            an admin console) can trip at any time; the running
//                      statement observes it at the next check and aborts
//                      with kCancelled;
//   * a memory       — a byte-accounted budget every materialization buffer
//     budget           (DDO sort, order-by tuples, last() predicates, lazy
//                      FLWOR domain caches, client result accumulation)
//                      charges before it grows; exceeding it aborts the
//                      statement with kResourceExhausted instead of growing
//                      without bound.
//
// The pull pipeline consults CheckTick() once per delivered item; the real
// clock read and flag load happen only every check_interval ticks, so the
// per-pull cost is a decrement and a predictable branch. Materialization
// barriers charge through MemoryReservation, an RAII grant that releases
// its bytes when the owning buffer dies, so `bytes_in_use` tracks live
// buffers and `peak_bytes` the statement's high-water mark.
//
// For fault injection, an AllocFaultInjector — the in-memory sibling of
// FaultInjectingVfs — can be attached: every budget charge is a counted
// "allocation point" and the injector fails the N-th one (or a seeded
// random subset) with kResourceExhausted, deterministically, so OOM
// torture tests can sweep hundreds of distinct failure points.
//
// Thread-safety: Cancel() may be called from any thread at any time; the
// accounting members are atomics, so a statement's own pipeline (single
// threaded today, possibly parallel later) and a monitoring thread can
// touch one QueryContext concurrently. The governor metrics for a terminal
// status (cancelled / deadline / oom) are counted exactly once per context.

#ifndef SEDNA_COMMON_QUERY_CONTEXT_H_
#define SEDNA_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/status.h"

namespace sedna {

/// Cooperative cancellation flag, shared between the statement's executing
/// thread and whoever may cancel it. Cancel() is sticky.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Deterministic allocation-fault injector: every budget charge is one
/// counted allocation point; the injector decides whether it fails. The
/// in-memory sibling of FaultInjectingVfs — all randomness comes from the
/// seed, so any observed failure replays exactly.
class AllocFaultInjector {
 public:
  explicit AllocFaultInjector(uint64_t seed = 0x0a110cULL) : seed_(seed) {}

  /// The charge with 0-based index `n` (and only it) fails.
  void FailAtCharge(uint64_t n) { fail_at_ = n; }

  /// Every charge independently fails with probability `rate`, derived
  /// deterministically from the seed and the charge index.
  void FailRandomly(double rate) { random_rate_ = rate; }

  void Clear() {
    fail_at_.reset();
    random_rate_ = 0.0;
  }

  /// Charges observed so far (== the index the next charge will get).
  uint64_t charges() const {
    return charge_counter_.load(std::memory_order_relaxed);
  }

  /// Counts one allocation point and returns the injected failure, if any.
  Status OnCharge(uint64_t bytes);

 private:
  uint64_t seed_;
  std::atomic<uint64_t> charge_counter_{0};
  std::optional<uint64_t> fail_at_;
  double random_rate_ = 0.0;
};

/// Per-statement governance state. Created by the session layer for each
/// statement (or by tests directly) and threaded through the executor.
class QueryContext {
 public:
  QueryContext();

  /// Wall-clock budget for the whole statement, measured from now.
  void set_deadline_after(std::chrono::nanoseconds budget) {
    deadline_ = std::chrono::steady_clock::now() + budget;
    has_deadline_ = true;
  }
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// Memory budget in bytes charged by materialization buffers. 0 (the
  /// default) means unlimited — accounting still runs so peak_bytes and
  /// EXPLAIN output stay meaningful.
  void set_memory_budget(uint64_t bytes) { memory_budget_ = bytes; }
  uint64_t memory_budget() const { return memory_budget_; }

  /// Cancellation token; never null. Share it with the thread that may
  /// cancel the statement.
  const std::shared_ptr<CancellationToken>& cancellation() const {
    return cancel_;
  }
  void Cancel() { cancel_->Cancel(); }

  /// Attaches the allocation-fault injector (not owned; test scope).
  void set_alloc_faults(AllocFaultInjector* inj) { alloc_faults_ = inj; }

  /// Ticks between full governance checks on the pull hot path. 1 checks
  /// every pull (torture tests, maximum kill granularity); the default 64
  /// keeps the hot-path cost to a decrement + branch.
  void set_check_interval(uint32_t n) {
    check_interval_ = n == 0 ? 1 : n;
    check_countdown_.store(check_interval_, std::memory_order_relaxed);
  }
  uint32_t check_interval() const { return check_interval_; }

  /// Test hook: trip the cancellation token automatically at the N-th
  /// governance tick (1-based), so torture suites can kill a statement at
  /// an exact, reproducible pull count without a second thread.
  void set_cancel_at_tick(uint64_t n) { cancel_at_tick_ = n; }

  /// Cheap per-batch check: one atomic decrement and a predictable branch
  /// until the interval expires, then a full Check(). Called once per
  /// delivered batch; exchange workers share the countdown, so it is
  /// atomic (an occasional double-reset between racing workers only makes
  /// checks more frequent, never skipped unboundedly).
  Status CheckTick() {
    ticks_.fetch_add(1, std::memory_order_relaxed);
    if (check_countdown_.fetch_sub(1, std::memory_order_relaxed) > 1 &&
        cancel_at_tick_ == 0) {
      return Status::OK();
    }
    check_countdown_.store(check_interval_, std::memory_order_relaxed);
    return Check();
  }

  /// Full governance check: cancellation flag, then deadline. Used directly
  /// by wait loops (lock manager) and statement boundaries.
  Status Check();

  /// Charges `bytes` against the memory budget (one allocation point for
  /// the fault injector). On failure nothing is charged.
  Status ChargeBytes(uint64_t bytes);

  /// Releases a previous charge.
  void ReleaseBytes(uint64_t bytes);

  uint64_t bytes_in_use() const {
    return bytes_in_use_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  /// The terminal governance status (kCancelled / kDeadlineExceeded /
  /// kResourceExhausted), sticky after the first failed check or charge.
  /// Lets the session classify an abort even when an operator wrapped the
  /// original status. OK while the statement is healthy.
  Status abort_status() const;

  /// Folds this statement's terminal accounting into the process-wide
  /// governor metrics (cancelled / deadline_aborts / oom_aborts counters,
  /// peak_statement_bytes gauge). Idempotent; the session layer calls it
  /// once when the statement finishes.
  void PublishMetrics();

 private:
  Status Fail(Status st);

  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  uint64_t memory_budget_ = 0;
  std::shared_ptr<CancellationToken> cancel_;
  AllocFaultInjector* alloc_faults_ = nullptr;

  uint32_t check_interval_ = 64;
  std::atomic<uint32_t> check_countdown_{64};
  uint64_t cancel_at_tick_ = 0;
  std::atomic<uint64_t> ticks_{0};

  std::atomic<uint64_t> bytes_in_use_{0};
  std::atomic<uint64_t> peak_bytes_{0};

  // First terminal status, kept for classification. `fail_claim_` elects
  // the single writer; `failed_` publishes the written status with release
  // ordering, so concurrent failures record exactly one and readers never
  // see a torn status.
  std::atomic<bool> fail_claim_{false};
  std::atomic<bool> failed_{false};
  StatusCode abort_code_ = StatusCode::kOk;
  std::string abort_message_;
  bool metrics_published_ = false;
};

/// RAII grant against a statement's memory budget. A materialization buffer
/// owns one reservation and grows it as it appends; destruction (or the
/// owning stream's destruction) releases every byte, so a statement killed
/// mid-materialization cannot leak budget. Null context = no-op, so
/// ungoverned callers pay nothing.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  explicit MemoryReservation(QueryContext* query) : query_(query) {}
  MemoryReservation(MemoryReservation&& other) noexcept {
    *this = std::move(other);
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      Release();
      query_ = other.query_;
      bytes_ = other.bytes_;
      other.query_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ~MemoryReservation() { Release(); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  /// Charges `bytes` more; on failure the reservation keeps its prior size.
  Status Grow(uint64_t bytes) {
    if (query_ == nullptr || bytes == 0) return Status::OK();
    SEDNA_RETURN_IF_ERROR(query_->ChargeBytes(bytes));
    bytes_ += bytes;
    return Status::OK();
  }

  void Release() {
    if (query_ != nullptr && bytes_ > 0) query_->ReleaseBytes(bytes_);
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }

 private:
  QueryContext* query_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace sedna

#endif  // SEDNA_COMMON_QUERY_CONTEXT_H_
